//! Proactive share refresh (Herzberg et al. [21], cited in Section 5.1).
//!
//! "If an adversary learns some of the shares, proactive sharing
//! techniques can be used to prevent the adversary from getting k
//! shares. With this technique, the shares are updated so that those
//! she already knows become useless."
//!
//! A refresh round samples a random polynomial `δ(x)` of the scheme
//! degree with `δ(0) = 0` and sends `δ(x_i)` to server `i`, which adds
//! it to every stored y-share. The shared secret (the constant term) is
//! unchanged, but any pre-refresh share becomes statistically
//! independent of the post-refresh sharing, so old leaked shares cannot
//! be combined with new ones.

use rand::Rng;

use zerber_field::{Fp, Polynomial};

use crate::scheme::{ServerId, Share, SharingScheme};

/// One proactive refresh round: per-server additive deltas.
#[derive(Debug, Clone)]
pub struct RefreshRound {
    deltas: Vec<Fp>,
}

impl RefreshRound {
    /// Samples a refresh round for the given scheme.
    pub fn generate<R: Rng + ?Sized>(scheme: &SharingScheme, rng: &mut R) -> Self {
        let delta_polynomial = Polynomial::random_zero_constant(scheme.threshold() - 1, rng);
        let deltas = scheme
            .coordinates()
            .iter()
            .map(|&x| delta_polynomial.evaluate(x))
            .collect();
        Self { deltas }
    }

    /// The additive delta for one server, or `None` for an unknown id.
    pub fn delta_for(&self, server: ServerId) -> Option<Fp> {
        self.deltas.get(server.index()).copied()
    }

    /// Applies the round to one share held by `server`.
    pub fn apply(&self, server: ServerId, share: Share) -> Share {
        let delta = self
            .delta_for(server)
            .expect("refresh round covers every server");
        Share {
            x: share.x,
            y: share.y + delta,
        }
    }

    /// Applies the round in place to a server's whole share column.
    pub fn apply_all(&self, server: ServerId, ys: &mut [Fp]) {
        let delta = self
            .delta_for(server)
            .expect("refresh round covers every server");
        for y in ys {
            *y += delta;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn scheme() -> SharingScheme {
        SharingScheme::with_coordinates(
            2,
            vec![Fp::new(3), Fp::new(5), Fp::new(8)],
        )
        .unwrap()
    }

    #[test]
    fn refresh_preserves_secret() {
        let mut rng = StdRng::seed_from_u64(31);
        let scheme = scheme();
        let secret = Fp::new(600_613);
        let shares = scheme.split(secret, &mut rng);
        let round = RefreshRound::generate(&scheme, &mut rng);
        let refreshed: Vec<Share> = shares
            .iter()
            .enumerate()
            .map(|(i, &s)| round.apply(ServerId(i as u32), s))
            .collect();
        assert_eq!(scheme.reconstruct(&refreshed[..2]).unwrap(), secret);
        assert_eq!(scheme.reconstruct(&refreshed[1..]).unwrap(), secret);
    }

    #[test]
    fn refresh_changes_shares() {
        let mut rng = StdRng::seed_from_u64(32);
        let scheme = scheme();
        let shares = scheme.split(Fp::new(1), &mut rng);
        let round = RefreshRound::generate(&scheme, &mut rng);
        let changed = (0..shares.len())
            .filter(|&i| round.apply(ServerId(i as u32), shares[i]).y != shares[i].y)
            .count();
        // With overwhelming probability all shares move; require most.
        assert!(changed >= 2, "refresh should re-randomize shares");
    }

    #[test]
    fn stale_share_mixed_with_fresh_shares_is_useless() {
        let mut rng = StdRng::seed_from_u64(33);
        let scheme = scheme();
        let secret = Fp::new(424_242);
        let shares = scheme.split(secret, &mut rng);
        let round = RefreshRound::generate(&scheme, &mut rng);
        let fresh_1 = round.apply(ServerId(1), shares[1]);
        // Adversary leaked shares[0] *before* the refresh; combining it
        // with a post-refresh share yields garbage, not the secret.
        let mixed = [shares[0], fresh_1];
        let wrong = scheme.reconstruct(&mixed).unwrap();
        assert_ne!(wrong, secret);
    }

    #[test]
    fn apply_all_shifts_whole_column() {
        let mut rng = StdRng::seed_from_u64(34);
        let scheme = scheme();
        let round = RefreshRound::generate(&scheme, &mut rng);
        let mut column = vec![Fp::new(1), Fp::new(2), Fp::new(3)];
        let before = column.clone();
        round.apply_all(ServerId(0), &mut column);
        let delta = round.delta_for(ServerId(0)).unwrap();
        for (b, a) in before.iter().zip(&column) {
            assert_eq!(*b + delta, *a);
        }
    }
}
