//! The k-out-of-n sharing scheme: public parameters and Algorithms 1a/1b.
//!
//! The scheme's public data is the prime `p` (fixed by `zerber-field`),
//! the threshold `k`, and one non-zero x-coordinate per index server.
//! "These numbers p and x_i are made public, so all users know them"
//! (Section 5.1) — secrecy rests entirely on the random polynomial
//! coefficients chosen per element.

use rand::Rng;

use zerber_field::{
    interpolate_at, lagrange_weights_at_zero, solve_vandermonde_gaussian, Fp, Polynomial,
};

use crate::error::ShamirError;

/// Identifies an index server within a scheme (position in the public
/// x-coordinate list).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ServerId(pub u32);

impl ServerId {
    /// The position of this server in the scheme's coordinate list.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One secret share: the evaluation point of the element polynomial at a
/// server's public x-coordinate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Share {
    /// The server's public x-coordinate.
    pub x: Fp,
    /// The polynomial evaluation `f(x)` — the confidential part.
    pub y: Fp,
}

/// Public parameters of a k-out-of-n sharing scheme.
#[derive(Debug, Clone)]
pub struct SharingScheme {
    k: usize,
    coordinates: Vec<Fp>,
}

impl SharingScheme {
    /// Creates a scheme with `n` servers whose x-coordinates are drawn
    /// uniformly at random ("each server i is assigned a unique random
    /// value x_i in Z_p").
    pub fn random<R: Rng + ?Sized>(k: usize, n: usize, rng: &mut R) -> Result<Self, ShamirError> {
        if k == 0 || k > n {
            return Err(ShamirError::InvalidThreshold { k, n });
        }
        let mut coordinates = Vec::with_capacity(n);
        while coordinates.len() < n {
            let candidate = Fp::random_nonzero(rng);
            if !coordinates.contains(&candidate) {
                coordinates.push(candidate);
            }
        }
        Ok(Self { k, coordinates })
    }

    /// Creates a scheme from explicit server coordinates.
    pub fn with_coordinates(k: usize, coordinates: Vec<Fp>) -> Result<Self, ShamirError> {
        if k == 0 || k > coordinates.len() {
            return Err(ShamirError::InvalidThreshold {
                k,
                n: coordinates.len(),
            });
        }
        for (i, x) in coordinates.iter().enumerate() {
            if x.is_zero() || coordinates[..i].contains(x) {
                return Err(ShamirError::InvalidCoordinates);
            }
        }
        Ok(Self { k, coordinates })
    }

    /// The reconstruction threshold `k`.
    pub fn threshold(&self) -> usize {
        self.k
    }

    /// The number of servers `n`.
    pub fn server_count(&self) -> usize {
        self.coordinates.len()
    }

    /// The public x-coordinates, indexed by [`ServerId`].
    pub fn coordinates(&self) -> &[Fp] {
        &self.coordinates
    }

    /// The x-coordinate of one server.
    pub fn coordinate(&self, server: ServerId) -> Option<Fp> {
        self.coordinates.get(server.index()).copied()
    }

    /// Algorithm 1a: splits `secret` into one share per server.
    ///
    /// Samples a fresh degree-(k-1) polynomial with constant term
    /// `secret` and evaluates it at every server coordinate. Complexity
    /// O(n·k) field operations per element.
    pub fn split<R: Rng + ?Sized>(&self, secret: Fp, rng: &mut R) -> Vec<Share> {
        let polynomial = Polynomial::random_with_constant(secret, self.k - 1, rng);
        self.coordinates
            .iter()
            .map(|&x| Share {
                x,
                y: polynomial.evaluate(x),
            })
            .collect()
    }

    /// Like [`split`](Self::split) but writes the per-server y-values
    /// into `out` (cleared first), avoiding a `Share` allocation per
    /// element on the document-indexing hot path.
    pub fn split_into<R: Rng + ?Sized>(&self, secret: Fp, rng: &mut R, out: &mut Vec<Fp>) {
        out.clear();
        let polynomial = Polynomial::random_with_constant(secret, self.k - 1, rng);
        out.extend(self.coordinates.iter().map(|&x| polynomial.evaluate(x)));
    }

    /// Algorithm 1a over a whole batch: splits every secret, returning
    /// `n` rows where row `i` holds the y-shares destined for server
    /// `i`, aligned with `secrets`.
    ///
    /// The per-element cost drops to pure field arithmetic: each
    /// server's coordinate powers `x_i^0 … x_i^{k-1}` are precomputed
    /// once per call, and the fresh random coefficients live in one
    /// scratch buffer reused across elements — no `Polynomial` (or any
    /// other) allocation per element, unlike
    /// [`split`](Self::split)/[`split_into`](Self::split_into). Each
    /// share is the dot product `Σ_j c_j · x_i^j`, exactly the value
    /// Horner evaluation produces (field arithmetic is exact), and the
    /// coefficients are drawn in the same order — so the output is
    /// identical to calling [`split`](Self::split) per element with
    /// the same RNG.
    pub fn split_batch<R: Rng + ?Sized>(&self, secrets: &[Fp], rng: &mut R) -> Vec<Vec<Fp>> {
        let k = self.k;
        // Per-server power tables, server-major: powers[i·k + j] = x_i^j.
        let mut powers: Vec<Fp> = Vec::with_capacity(self.coordinates.len() * k);
        for &x in &self.coordinates {
            let mut power = Fp::ONE;
            for _ in 0..k {
                powers.push(power);
                power *= x;
            }
        }
        let mut rows: Vec<Vec<Fp>> = self
            .coordinates
            .iter()
            .map(|_| Vec::with_capacity(secrets.len()))
            .collect();
        let mut coefficients: Vec<Fp> = Vec::with_capacity(k);
        for &secret in secrets {
            coefficients.clear();
            coefficients.push(secret);
            for _ in 1..k {
                coefficients.push(Fp::random(rng));
            }
            for (row, table) in rows.iter_mut().zip(powers.chunks_exact(k)) {
                let mut y = Fp::ZERO;
                for (&c, &p) in coefficients.iter().zip(table) {
                    y += c * p;
                }
                row.push(y);
            }
        }
        rows
    }

    /// Algorithm 1b (fast path): recovers the secret from at least `k`
    /// shares via Lagrange interpolation at zero — O(k^2).
    pub fn reconstruct(&self, shares: &[Share]) -> Result<Fp, ShamirError> {
        let shares = self.validated(shares)?;
        let points: Vec<(Fp, Fp)> = shares.iter().map(|s| (s.x, s.y)).collect();
        Ok(zerber_field::interpolate_at_zero(&points))
    }

    /// Algorithm 1b exactly as printed: recovers the secret by solving
    /// the k linear equations with Gaussian elimination — O(k^3). Kept
    /// for fidelity and as an ablation baseline; produces identical
    /// results to [`reconstruct`](Self::reconstruct).
    pub fn reconstruct_gaussian(&self, shares: &[Share]) -> Result<Fp, ShamirError> {
        let shares = self.validated(shares)?;
        let xs: Vec<Fp> = shares.iter().map(|s| s.x).collect();
        let ys: Vec<Fp> = shares.iter().map(|s| s.y).collect();
        let coefficients =
            solve_vandermonde_gaussian(&xs, &ys).map_err(|_| ShamirError::DuplicateShare)?;
        Ok(coefficients[0])
    }

    /// Dynamic extension (Section 5.1): derives the share for a *new*
    /// server at `new_x` from any `k` existing shares, "by just
    /// selecting additional points on the polynomial curve" — no
    /// recalculation of existing shares.
    pub fn derive_share_for(&self, shares: &[Share], new_x: Fp) -> Result<Share, ShamirError> {
        if new_x.is_zero() {
            return Err(ShamirError::InvalidCoordinates);
        }
        let shares = self.validated(shares)?;
        let points: Vec<(Fp, Fp)> = shares.iter().map(|s| (s.x, s.y)).collect();
        Ok(Share {
            x: new_x,
            y: interpolate_at(&points, new_x),
        })
    }

    /// Adds a new server with the given coordinate to the public
    /// parameters. Existing stored shares remain valid.
    pub fn add_server(&mut self, x: Fp) -> Result<ServerId, ShamirError> {
        if x.is_zero() || self.coordinates.contains(&x) {
            return Err(ShamirError::InvalidCoordinates);
        }
        self.coordinates.push(x);
        Ok(ServerId(self.coordinates.len() as u32 - 1))
    }

    /// Precomputes Lagrange weights at zero for a fixed subset of
    /// servers, enabling O(k) per-element reconstruction.
    pub fn weights_for(&self, servers: &[ServerId]) -> Result<Vec<Fp>, ShamirError> {
        if servers.len() < self.k {
            return Err(ShamirError::NotEnoughShares {
                needed: self.k,
                got: servers.len(),
            });
        }
        let mut xs = Vec::with_capacity(servers.len());
        for &server in servers {
            let x = self
                .coordinate(server)
                .ok_or(ShamirError::UnknownCoordinate)?;
            if xs.contains(&x) {
                return Err(ShamirError::DuplicateShare);
            }
            xs.push(x);
        }
        Ok(lagrange_weights_at_zero(&xs))
    }

    /// Validates a share set: at least `k` shares with distinct
    /// x-coordinates. Returns the first `k` (extra shares are redundant
    /// for a correct sharing).
    fn validated<'a>(&self, shares: &'a [Share]) -> Result<&'a [Share], ShamirError> {
        if shares.len() < self.k {
            return Err(ShamirError::NotEnoughShares {
                needed: self.k,
                got: shares.len(),
            });
        }
        let head = &shares[..self.k];
        for (i, share) in head.iter().enumerate() {
            if share.x.is_zero() {
                return Err(ShamirError::InvalidCoordinates);
            }
            if head[..i].iter().any(|other| other.x == share.x) {
                return Err(ShamirError::DuplicateShare);
            }
        }
        Ok(head)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn scheme_2_of_3() -> SharingScheme {
        SharingScheme::with_coordinates(2, vec![Fp::new(11), Fp::new(22), Fp::new(33)]).unwrap()
    }

    #[test]
    fn split_then_reconstruct_round_trips() {
        let mut rng = StdRng::seed_from_u64(1);
        let scheme = scheme_2_of_3();
        let secret = Fp::new(123_456_789);
        let shares = scheme.split(secret, &mut rng);
        assert_eq!(shares.len(), 3);
        // Any 2 of 3 shares suffice.
        for pair in [[0, 1], [0, 2], [1, 2]] {
            let subset = [shares[pair[0]], shares[pair[1]]];
            assert_eq!(scheme.reconstruct(&subset).unwrap(), secret);
            assert_eq!(scheme.reconstruct_gaussian(&subset).unwrap(), secret);
        }
    }

    #[test]
    fn one_share_reveals_nothing_computable() {
        let scheme = scheme_2_of_3();
        let mut rng = StdRng::seed_from_u64(2);
        let shares = scheme.split(Fp::new(42), &mut rng);
        let err = scheme.reconstruct(&shares[..1]).unwrap_err();
        assert_eq!(err, ShamirError::NotEnoughShares { needed: 2, got: 1 });
    }

    #[test]
    fn duplicate_shares_rejected() {
        let scheme = scheme_2_of_3();
        let mut rng = StdRng::seed_from_u64(3);
        let shares = scheme.split(Fp::new(42), &mut rng);
        let err = scheme.reconstruct(&[shares[0], shares[0]]).unwrap_err();
        assert_eq!(err, ShamirError::DuplicateShare);
    }

    #[test]
    fn invalid_thresholds_rejected() {
        let mut rng = StdRng::seed_from_u64(4);
        assert!(matches!(
            SharingScheme::random(0, 3, &mut rng),
            Err(ShamirError::InvalidThreshold { .. })
        ));
        assert!(matches!(
            SharingScheme::random(4, 3, &mut rng),
            Err(ShamirError::InvalidThreshold { .. })
        ));
    }

    #[test]
    fn explicit_coordinates_must_be_distinct_nonzero() {
        assert_eq!(
            SharingScheme::with_coordinates(1, vec![Fp::ZERO]).unwrap_err(),
            ShamirError::InvalidCoordinates
        );
        assert_eq!(
            SharingScheme::with_coordinates(1, vec![Fp::new(5), Fp::new(5)]).unwrap_err(),
            ShamirError::InvalidCoordinates
        );
    }

    #[test]
    fn k_equals_one_broadcasts_the_secret() {
        // Degenerate but legal: every share *is* the secret.
        let scheme = SharingScheme::with_coordinates(1, vec![Fp::new(7), Fp::new(9)]).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let shares = scheme.split(Fp::new(101), &mut rng);
        assert!(shares.iter().all(|s| s.y.value() == 101));
    }

    #[test]
    fn k_equals_n_requires_all_shares() {
        let scheme =
            SharingScheme::with_coordinates(3, vec![Fp::new(1), Fp::new(2), Fp::new(3)]).unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        let secret = Fp::new(2_000_000_000);
        let shares = scheme.split(secret, &mut rng);
        assert_eq!(scheme.reconstruct(&shares).unwrap(), secret);
        assert!(scheme.reconstruct(&shares[..2]).is_err());
    }

    #[test]
    fn dynamic_extension_preserves_existing_shares() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut scheme = scheme_2_of_3();
        let secret = Fp::new(987_654);
        let shares = scheme.split(secret, &mut rng);

        let new_x = Fp::new(44);
        let new_share = scheme.derive_share_for(&shares[..2], new_x).unwrap();
        scheme.add_server(new_x).unwrap();

        // Old share + brand-new share reconstruct the same secret.
        let mixed = [shares[2], new_share];
        assert_eq!(scheme.reconstruct(&mixed).unwrap(), secret);
    }

    #[test]
    fn add_server_rejects_existing_coordinate() {
        let mut scheme = scheme_2_of_3();
        assert_eq!(
            scheme.add_server(Fp::new(11)).unwrap_err(),
            ShamirError::InvalidCoordinates
        );
        assert_eq!(
            scheme.add_server(Fp::ZERO).unwrap_err(),
            ShamirError::InvalidCoordinates
        );
    }

    #[test]
    fn weights_reconstruct_in_constant_time_per_element() {
        let mut rng = StdRng::seed_from_u64(8);
        let scheme = scheme_2_of_3();
        let servers = [ServerId(0), ServerId(2)];
        let weights = scheme.weights_for(&servers).unwrap();
        for _ in 0..10 {
            let secret = Fp::random(&mut rng);
            let shares = scheme.split(secret, &mut rng);
            let recovered = shares[0].y * weights[0] + shares[2].y * weights[1];
            assert_eq!(recovered, secret);
        }
    }

    #[test]
    fn weights_for_unknown_server_errors() {
        let scheme = scheme_2_of_3();
        assert_eq!(
            scheme.weights_for(&[ServerId(0), ServerId(9)]).unwrap_err(),
            ShamirError::UnknownCoordinate
        );
    }

    #[test]
    fn random_scheme_has_distinct_nonzero_coordinates() {
        let mut rng = StdRng::seed_from_u64(9);
        let scheme = SharingScheme::random(3, 10, &mut rng).unwrap();
        let coordinates = scheme.coordinates();
        assert_eq!(coordinates.len(), 10);
        for (i, x) in coordinates.iter().enumerate() {
            assert!(!x.is_zero());
            assert!(!coordinates[..i].contains(x));
        }
    }

    #[test]
    fn split_batch_matches_per_element_split() {
        // Same RNG stream, same coefficients, exact field arithmetic:
        // the power-table dot product must equal Horner evaluation
        // share for share.
        let scheme = SharingScheme::with_coordinates(
            3,
            vec![Fp::new(11), Fp::new(22), Fp::new(33), Fp::new(44)],
        )
        .unwrap();
        let secrets: Vec<Fp> = (0..50u64).map(|v| Fp::new(v * 31 + 5)).collect();
        let mut rng_a = StdRng::seed_from_u64(77);
        let mut rng_b = StdRng::seed_from_u64(77);
        let rows = scheme.split_batch(&secrets, &mut rng_a);
        assert_eq!(rows.len(), 4);
        for (e, &secret) in secrets.iter().enumerate() {
            let shares = scheme.split(secret, &mut rng_b);
            for (i, share) in shares.iter().enumerate() {
                assert_eq!(rows[i][e], share.y, "element {e}, server {i}");
            }
        }
        // And the rows reconstruct.
        let subset = [
            Share {
                x: Fp::new(22),
                y: rows[1][7],
            },
            Share {
                x: Fp::new(33),
                y: rows[2][7],
            },
            Share {
                x: Fp::new(44),
                y: rows[3][7],
            },
        ];
        assert_eq!(scheme.reconstruct(&subset).unwrap(), secrets[7]);
    }

    #[test]
    fn split_batch_of_nothing_is_empty_rows() {
        let scheme = scheme_2_of_3();
        let mut rng = StdRng::seed_from_u64(1);
        let rows = scheme.split_batch(&[], &mut rng);
        assert_eq!(rows.len(), 3);
        assert!(rows.iter().all(Vec::is_empty));
    }

    #[test]
    fn split_into_matches_split() {
        let mut rng_a = StdRng::seed_from_u64(10);
        let mut rng_b = StdRng::seed_from_u64(10);
        let scheme = scheme_2_of_3();
        let secret = Fp::new(31_415);
        let shares = scheme.split(secret, &mut rng_a);
        let mut ys = Vec::new();
        scheme.split_into(secret, &mut rng_b, &mut ys);
        assert_eq!(shares.iter().map(|s| s.y).collect::<Vec<_>>(), ys);
    }
}
