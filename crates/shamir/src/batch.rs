//! Batch splitting and reconstruction.
//!
//! Section 7.3 of the paper reports that creating the secret shares for
//! one server for a 5,000-distinct-term document takes 33 ms and that
//! 700 elements are decrypted per millisecond. Both numbers rely on
//! amortization: the polynomial buffer is reused across elements when
//! splitting, and the Lagrange weights are computed once per *server
//! subset* and reused for every element when reconstructing.

use rand::Rng;

use zerber_field::Fp;

use crate::error::ShamirError;
use crate::scheme::{ServerId, SharingScheme};

/// Splits many secrets under one scheme, producing a share matrix laid
/// out per server (the shape in which shares are shipped to the index
/// servers).
#[derive(Debug)]
pub struct BatchSplitter<'a> {
    scheme: &'a SharingScheme,
}

impl<'a> BatchSplitter<'a> {
    /// Creates a splitter bound to a scheme.
    pub fn new(scheme: &'a SharingScheme) -> Self {
        Self { scheme }
    }

    /// Splits `secrets`, returning `n` rows where row `i` holds the
    /// y-shares destined for server `i`, aligned with `secrets` —
    /// delegates to [`SharingScheme::split_batch`], the allocation-free
    /// per-element fast path (precomputed coordinate power tables, one
    /// reused coefficient scratch).
    pub fn split_all<R: Rng + ?Sized>(&self, secrets: &[Fp], rng: &mut R) -> Vec<Vec<Fp>> {
        self.scheme.split_batch(secrets, rng)
    }
}

/// Reconstructs many secrets from per-server share rows with
/// precomputed Lagrange weights — O(k) per element.
#[derive(Debug, Clone)]
pub struct BatchReconstructor {
    weights: Vec<Fp>,
    servers: Vec<ServerId>,
}

impl BatchReconstructor {
    /// Prepares reconstruction for a fixed subset of at least `k`
    /// servers. Only the first `k` of `servers` are used.
    pub fn new(scheme: &SharingScheme, servers: &[ServerId]) -> Result<Self, ShamirError> {
        let k = scheme.threshold();
        if servers.len() < k {
            return Err(ShamirError::NotEnoughShares {
                needed: k,
                got: servers.len(),
            });
        }
        let chosen = &servers[..k];
        let weights = scheme.weights_for(chosen)?;
        Ok(Self {
            weights,
            servers: chosen.to_vec(),
        })
    }

    /// The servers whose share rows this reconstructor expects, in
    /// order.
    pub fn servers(&self) -> &[ServerId] {
        &self.servers
    }

    /// Reconstructs one secret from one y-share per expected server
    /// (aligned with [`servers`](Self::servers)).
    ///
    /// # Panics
    /// Panics if `ys.len()` differs from the number of expected servers.
    #[inline]
    pub fn reconstruct_one(&self, ys: &[Fp]) -> Fp {
        assert_eq!(ys.len(), self.weights.len(), "one share per chosen server");
        ys.iter().zip(&self.weights).map(|(&y, &w)| y * w).sum()
    }

    /// Reconstructs a whole batch. `rows[i]` must hold the shares from
    /// `self.servers()[i]`, all rows equally long and aligned by
    /// element.
    ///
    /// # Panics
    /// Panics if rows are missing or misaligned.
    pub fn reconstruct_all(&self, rows: &[Vec<Fp>]) -> Vec<Fp> {
        assert_eq!(rows.len(), self.weights.len(), "one row per chosen server");
        let len = rows.first().map_or(0, Vec::len);
        assert!(
            rows.iter().all(|row| row.len() == len),
            "share rows must be aligned"
        );
        let mut out = Vec::with_capacity(len);
        for element in 0..len {
            let mut acc = Fp::ZERO;
            for (row, &w) in rows.iter().zip(&self.weights) {
                acc += row[element] * w;
            }
            out.push(acc);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn scheme() -> SharingScheme {
        SharingScheme::with_coordinates(2, vec![Fp::new(101), Fp::new(202), Fp::new(303)]).unwrap()
    }

    #[test]
    fn batch_round_trip() {
        let mut rng = StdRng::seed_from_u64(21);
        let scheme = scheme();
        let secrets: Vec<Fp> = (0..100u64).map(|v| Fp::new(v * v + 7)).collect();
        let rows = BatchSplitter::new(&scheme).split_all(&secrets, &mut rng);
        assert_eq!(rows.len(), 3);
        assert!(rows.iter().all(|r| r.len() == secrets.len()));

        let reconstructor = BatchReconstructor::new(&scheme, &[ServerId(0), ServerId(2)]).unwrap();
        let selected = vec![rows[0].clone(), rows[2].clone()];
        let recovered = reconstructor.reconstruct_all(&selected);
        assert_eq!(recovered, secrets);
    }

    #[test]
    fn reconstruct_one_matches_scheme_reconstruct() {
        let mut rng = StdRng::seed_from_u64(22);
        let scheme = scheme();
        let secret = Fp::new(5_000_000);
        let shares = scheme.split(secret, &mut rng);
        let reconstructor = BatchReconstructor::new(&scheme, &[ServerId(1), ServerId(2)]).unwrap();
        let recovered = reconstructor.reconstruct_one(&[shares[1].y, shares[2].y]);
        assert_eq!(recovered, secret);
    }

    #[test]
    fn too_few_servers_rejected() {
        let scheme = scheme();
        assert!(matches!(
            BatchReconstructor::new(&scheme, &[ServerId(0)]),
            Err(ShamirError::NotEnoughShares { needed: 2, got: 1 })
        ));
    }

    #[test]
    fn extra_servers_are_ignored_beyond_k() {
        let mut rng = StdRng::seed_from_u64(23);
        let scheme = scheme();
        let reconstructor =
            BatchReconstructor::new(&scheme, &[ServerId(0), ServerId(1), ServerId(2)]).unwrap();
        assert_eq!(reconstructor.servers().len(), 2);
        let secret = Fp::new(77);
        let shares = scheme.split(secret, &mut rng);
        assert_eq!(
            reconstructor.reconstruct_one(&[shares[0].y, shares[1].y]),
            secret
        );
    }

    #[test]
    fn empty_batch_is_fine() {
        let scheme = scheme();
        let reconstructor = BatchReconstructor::new(&scheme, &[ServerId(0), ServerId(1)]).unwrap();
        let rows = vec![vec![], vec![]];
        assert!(reconstructor.reconstruct_all(&rows).is_empty());
    }

    #[test]
    #[should_panic(expected = "aligned")]
    fn misaligned_rows_panic() {
        let scheme = scheme();
        let reconstructor = BatchReconstructor::new(&scheme, &[ServerId(0), ServerId(1)]).unwrap();
        let rows = vec![vec![Fp::ONE], vec![]];
        let _ = reconstructor.reconstruct_all(&rows);
    }
}
