//! Shamir *k-out-of-n* secret sharing, the cryptographic core of Zerber
//! (paper Section 5.1, Algorithms 1a and 1b).
//!
//! Every posting-list element is encoded as a field element and split
//! into `n` shares such that any `k` reconstruct it while `k - 1` reveal
//! *nothing* (information-theoretic secrecy). Each of the `n` index
//! servers holds exactly one share per element, so an adversary must
//! compromise at least `k` servers — owned by different factions of the
//! enterprise — to decrypt a single element.
//!
//! The module layout mirrors the paper:
//!
//! * [`scheme`] — the public parameters `(p, k, x_1..x_n)` and the
//!   split/reconstruct operations (Algorithms 1a/1b), including the
//!   O(k^3) Gaussian variant the paper describes and the O(k^2)
//!   Lagrange variant used on the hot path.
//! * [`batch`] — amortized splitting/reconstruction for whole documents
//!   and query responses ("700 elements per msec", Section 7.3).
//! * [`proactive`] — share refresh à la Herzberg et al. \[21\], which the
//!   paper cites for recovering from partial share exposure.

//! # Example
//!
//! ```
//! use zerber_field::Fp;
//! use zerber_shamir::SharingScheme;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let scheme = SharingScheme::random(2, 3, &mut rng).unwrap(); // 2-out-of-3
//! let shares = scheme.split(Fp::new(123_456), &mut rng);
//! // Any two servers' shares reconstruct; one alone is useless.
//! assert_eq!(scheme.reconstruct(&shares[1..]).unwrap(), Fp::new(123_456));
//! assert!(scheme.reconstruct(&shares[..1]).is_err());
//! ```

pub mod batch;
pub mod error;
pub mod proactive;
pub mod scheme;

pub use batch::{BatchReconstructor, BatchSplitter};
pub use error::ShamirError;
pub use proactive::RefreshRound;
pub use scheme::{ServerId, Share, SharingScheme};
