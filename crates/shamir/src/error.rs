//! Error type for secret-sharing operations.

use std::fmt;

/// Errors surfaced by splitting, reconstruction and refresh.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShamirError {
    /// `k` must satisfy `1 <= k <= n`.
    InvalidThreshold {
        /// Requested threshold.
        k: usize,
        /// Number of servers.
        n: usize,
    },
    /// Reconstruction was attempted with fewer than `k` shares.
    NotEnoughShares {
        /// Threshold `k`.
        needed: usize,
        /// Shares supplied.
        got: usize,
    },
    /// Two supplied shares carry the same x-coordinate.
    DuplicateShare,
    /// A share's x-coordinate does not belong to the scheme's server set.
    UnknownCoordinate,
    /// Server x-coordinates must be distinct and non-zero (a zero
    /// coordinate would hand that server the raw secret).
    InvalidCoordinates,
    /// The secret does not fit in the field (must be `< p`).
    SecretOutOfRange,
}

impl fmt::Display for ShamirError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShamirError::InvalidThreshold { k, n } => {
                write!(f, "invalid threshold: k = {k} must be in 1..={n}")
            }
            ShamirError::NotEnoughShares { needed, got } => {
                write!(f, "not enough shares: need {needed}, got {got}")
            }
            ShamirError::DuplicateShare => write!(f, "duplicate share x-coordinate"),
            ShamirError::UnknownCoordinate => {
                write!(f, "share x-coordinate not in the scheme's server set")
            }
            ShamirError::InvalidCoordinates => {
                write!(f, "server x-coordinates must be distinct and non-zero")
            }
            ShamirError::SecretOutOfRange => write!(f, "secret does not fit in Z_p"),
        }
    }
}

impl std::error::Error for ShamirError {}
