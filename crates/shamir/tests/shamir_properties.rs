//! Property tests for the secret-sharing invariants Zerber's security
//! argument depends on (Section 5.1 and Section 7.1).

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use zerber_field::{Fp, MODULUS};
use zerber_shamir::{BatchReconstructor, BatchSplitter, RefreshRound, ServerId, SharingScheme};

fn arb_secret() -> impl Strategy<Value = Fp> {
    (0..MODULUS).prop_map(Fp::from_canonical)
}

proptest! {
    /// Any k of n shares reconstruct the secret, for all (k, n) pairs in
    /// a practical range.
    #[test]
    fn any_k_of_n_shares_reconstruct(
        secret in arb_secret(),
        k in 1usize..5,
        extra in 0usize..4,
        seed in any::<u64>(),
    ) {
        let n = k + extra;
        let mut rng = StdRng::seed_from_u64(seed);
        let scheme = SharingScheme::random(k, n, &mut rng).unwrap();
        let shares = scheme.split(secret, &mut rng);
        // Sliding windows of size k over the share vector.
        for window in shares.windows(k) {
            prop_assert_eq!(scheme.reconstruct(window).unwrap(), secret);
        }
    }

    /// Gaussian elimination (paper's Algorithm 1b) and Lagrange agree.
    #[test]
    fn gaussian_equals_lagrange(
        secret in arb_secret(),
        k in 1usize..6,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let scheme = SharingScheme::random(k, k + 1, &mut rng).unwrap();
        let shares = scheme.split(secret, &mut rng);
        prop_assert_eq!(
            scheme.reconstruct(&shares).unwrap(),
            scheme.reconstruct_gaussian(&shares).unwrap()
        );
    }

    /// With fixed coefficient randomness, the k-1 shares observed by an
    /// adversary are a *bijection* of the secret-independent randomness:
    /// for k = 2, fixing the random coefficient a1 and varying the
    /// secret produces share values that differ by exactly the secret
    /// difference — i.e. for ANY candidate secret there exists equally
    /// likely randomness explaining the observed share. We verify the
    /// consistency property computationally: given one share, every
    /// candidate secret admits a polynomial passing through it.
    #[test]
    fn single_share_is_consistent_with_every_secret(
        secret_a in arb_secret(),
        secret_b in arb_secret(),
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let scheme = SharingScheme::random(2, 3, &mut rng).unwrap();
        let shares = scheme.split(secret_a, &mut rng);
        let observed = shares[0];
        // Construct the unique degree-1 polynomial through (0, secret_b)
        // and (x0, observed.y): it exists and is a valid sharing of
        // secret_b producing the very same observed share.
        let x0 = observed.x;
        let slope = (observed.y - secret_b) * x0.inverse().unwrap();
        let reconstructed_share = secret_b + slope * x0;
        prop_assert_eq!(reconstructed_share, observed.y);
    }

    /// Batch splitting is equivalent to element-wise splitting in terms
    /// of reconstructability.
    #[test]
    fn batch_operations_round_trip(
        secrets in prop::collection::vec(arb_secret(), 0..40),
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let scheme = SharingScheme::random(2, 3, &mut rng).unwrap();
        let rows = BatchSplitter::new(&scheme).split_all(&secrets, &mut rng);
        let reconstructor =
            BatchReconstructor::new(&scheme, &[ServerId(2), ServerId(0)]).unwrap();
        let selected = vec![rows[2].clone(), rows[0].clone()];
        prop_assert_eq!(reconstructor.reconstruct_all(&selected), secrets);
    }

    /// Proactive refresh never changes the secret and always invalidates
    /// mixed old/new share sets (up to the negligible chance of a zero
    /// delta difference).
    #[test]
    fn refresh_preserves_secret_for_all_subsets(
        secret in arb_secret(),
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let scheme = SharingScheme::random(3, 5, &mut rng).unwrap();
        let shares = scheme.split(secret, &mut rng);
        let round = RefreshRound::generate(&scheme, &mut rng);
        let refreshed: Vec<_> = shares
            .iter()
            .enumerate()
            .map(|(i, &s)| round.apply(ServerId(i as u32), 7, s))
            .collect();
        for window in refreshed.windows(3) {
            prop_assert_eq!(scheme.reconstruct(window).unwrap(), secret);
        }
    }

    /// A new server derived from k shares is indistinguishable from one
    /// provisioned at split time.
    #[test]
    fn derived_share_reconstructs_with_any_partner(
        secret in arb_secret(),
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let scheme = SharingScheme::random(2, 3, &mut rng).unwrap();
        let shares = scheme.split(secret, &mut rng);
        let new_x = Fp::new(1_234_567_890_123);
        prop_assume!(!scheme.coordinates().contains(&new_x));
        let derived = scheme.derive_share_for(&shares[..2], new_x).unwrap();
        for &old in &shares {
            prop_assert_eq!(scheme.reconstruct(&[old, derived]).unwrap(), secret);
        }
    }
}
