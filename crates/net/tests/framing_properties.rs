//! Property tests for the length-framed socket codec: arbitrary
//! `zerber_net` messages survive encode → split-at-every-byte-boundary
//! reassembly → decode, and damaged frames fail closed — an error,
//! never a panic and never a silently different message.

use proptest::prelude::*;
use zerber_core::{ElementId, PlId};
use zerber_field::Fp;
use zerber_index::{DocId, GroupId, TermId};
use zerber_net::framing::{Frame, FrameDecoder};
use zerber_net::{AuthToken, Message, NodeId, StoredShare, WireDocument};

fn arb_share() -> impl Strategy<Value = StoredShare> {
    (any::<u64>(), any::<u32>(), 0..zerber_field::MODULUS).prop_map(|(e, g, y)| StoredShare {
        element: ElementId(e),
        group: GroupId(g),
        share: Fp::from_canonical(y),
    })
}

fn arb_wire_doc() -> impl Strategy<Value = WireDocument> {
    (
        any::<u32>(),
        any::<u32>(),
        any::<u32>(),
        prop::collection::vec((any::<u32>().prop_map(TermId), any::<u32>()), 0..10),
    )
        .prop_map(|(doc, group, length, terms)| WireDocument {
            doc: DocId(doc),
            group: GroupId(group),
            length,
            terms,
        })
}

/// Arbitrary non-NaN float (NaN would defeat the equality assertions
/// without exercising anything extra in a bit-exact codec).
fn arb_f64() -> impl Strategy<Value = f64> {
    any::<u64>().prop_map(|bits| {
        let value = f64::from_bits(bits);
        if value.is_nan() {
            0.5
        } else {
            value
        }
    })
}

/// Every message family, including the shard-addressed serving frames
/// the socket transport actually carries.
fn arb_message() -> impl Strategy<Value = Message> {
    prop_oneof![
        prop::collection::vec((any::<u32>().prop_map(PlId), arb_share()), 0..20)
            .prop_map(|entries| Message::InsertBatch { entries }),
        (
            any::<u32>(),
            any::<u32>(),
            prop::collection::vec((any::<u32>().prop_map(TermId), arb_f64()), 0..8)
        )
            .prop_map(|(shard, k, terms)| Message::TopKQuery { shard, terms, k }),
        (
            any::<u64>(),
            any::<u32>(),
            any::<u32>(),
            prop::collection::vec((any::<u32>().prop_map(DocId), arb_f64()), 0..12)
        )
            .prop_map(|(decode_ns, blocks_decoded, blocks_total, candidates)| {
                Message::TopKResponse {
                    decode_ns,
                    blocks_decoded,
                    blocks_total,
                    candidates,
                }
            }),
        (any::<u32>(), prop::collection::vec(arb_wire_doc(), 0..6))
            .prop_map(|(shard, docs)| Message::IndexDocs { shard, docs }),
        (any::<u32>(), any::<u32>()).prop_map(|(shard, doc)| Message::RemoveDoc {
            shard,
            doc: DocId(doc),
        }),
        any::<u64>().prop_map(|removed| Message::DeleteOk { removed }),
        Just(Message::InsertOk),
    ]
}

fn arb_node() -> impl Strategy<Value = NodeId> {
    prop_oneof![
        any::<u32>().prop_map(NodeId::User),
        any::<u32>().prop_map(NodeId::Owner),
        any::<u32>().prop_map(NodeId::IndexServer),
    ]
}

fn arb_frame() -> impl Strategy<Value = Frame> {
    prop_oneof![
        (any::<u64>(), arb_node(), any::<u64>(), arb_message()).prop_map(
            |(id, from, auth, message)| Frame::Request {
                id,
                from,
                auth: AuthToken(auth),
                trace: auth.rotate_left(13),
                payload: message.encode().to_vec(),
            }
        ),
        (any::<u64>(), arb_message()).prop_map(|(id, message)| Frame::Response {
            id,
            payload: message.encode().to_vec(),
        }),
    ]
}

proptest! {
    /// Split the encoded frame at *every* byte boundary: each prefix /
    /// suffix pair must reassemble to the identical frame, and the
    /// carried message must decode to the original.
    #[test]
    fn split_at_every_boundary_reassembles(message in arb_message(), id in any::<u64>()) {
        let frame = Frame::Request {
            id,
            from: NodeId::User(1),
            auth: AuthToken(id ^ 0xA5A5),
            trace: id.wrapping_mul(31),
            payload: message.encode().to_vec(),
        };
        let encoded = frame.encode();
        for cut in 0..=encoded.len() {
            let mut decoder = FrameDecoder::new();
            decoder.push(&encoded[..cut]);
            if cut < encoded.len() {
                prop_assert_eq!(decoder.next_frame().unwrap(), None, "premature at {}", cut);
            }
            decoder.push(&encoded[cut..]);
            let got = decoder.next_frame().unwrap().expect("complete frame");
            prop_assert_eq!(&got, &frame);
            prop_assert_eq!(Message::decode(got.payload()).unwrap(), message.clone());
            prop_assert_eq!(decoder.next_frame().unwrap(), None);
        }
    }

    /// A run of frames pushed as one arbitrary-chunked stream comes
    /// back in order, regardless of chunk sizes.
    #[test]
    fn chunked_stream_preserves_frame_order(
        frames in prop::collection::vec(arb_frame(), 1..6),
        chunk in 1usize..64,
    ) {
        let mut stream = Vec::new();
        for frame in &frames {
            stream.extend_from_slice(&frame.encode());
        }
        let mut decoder = FrameDecoder::new();
        let mut got = Vec::new();
        for piece in stream.chunks(chunk) {
            decoder.push(piece);
            while let Some(frame) = decoder.next_frame().unwrap() {
                got.push(frame);
            }
        }
        prop_assert_eq!(got, frames);
        prop_assert_eq!(decoder.pending_bytes(), 0);
    }

    /// Truncating a frame anywhere never yields a frame: the decoder
    /// either waits for more bytes or reports an error — fail closed.
    #[test]
    fn truncation_fails_closed(frame in arb_frame(), cut_seed in any::<u64>()) {
        let encoded = frame.encode();
        let cut = (cut_seed as usize) % encoded.len();
        let mut decoder = FrameDecoder::new();
        decoder.push(&encoded[..cut]);
        match decoder.next_frame() {
            Ok(None) | Err(_) => {}
            Ok(Some(frame)) => prop_assert!(false, "truncated decode produced {frame:?}"),
        }
    }

    /// Flipping any single byte is detected: no silently different
    /// frame ever comes out, and nothing panics.
    #[test]
    fn corruption_fails_closed(frame in arb_frame(), position in any::<u64>(), xor in 1u8..=255) {
        let mut encoded = frame.encode();
        let position = (position as usize) % encoded.len();
        encoded[position] ^= xor;
        let mut decoder = FrameDecoder::new();
        decoder.push(&encoded);
        match decoder.next_frame() {
            Ok(None) | Err(_) => {}
            Ok(Some(decoded)) => prop_assert!(
                false,
                "corrupt byte {position} decoded as {decoded:?}"
            ),
        }
    }

    /// Arbitrary garbage never panics the decoder.
    #[test]
    fn garbage_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let mut decoder = FrameDecoder::new();
        decoder.push(&bytes);
        while let Ok(Some(_)) = decoder.next_frame() {}
    }
}
