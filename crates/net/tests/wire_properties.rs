//! Property tests for the wire protocol: every message round-trips
//! and `wire_size` is exact for arbitrary payloads.

use proptest::prelude::*;
use zerber_core::{ElementId, PlId};
use zerber_field::Fp;
use zerber_index::{DocId, GroupId};
use zerber_net::{AuthToken, Message, StoredShare};

fn arb_share() -> impl Strategy<Value = StoredShare> {
    (any::<u64>(), any::<u32>(), 0..zerber_field::MODULUS).prop_map(|(e, g, y)| StoredShare {
        element: ElementId(e),
        group: GroupId(g),
        share: Fp::from_canonical(y),
    })
}

fn arb_message() -> impl Strategy<Value = Message> {
    prop_oneof![
        prop::collection::vec((any::<u32>().prop_map(PlId), arb_share()), 0..40)
            .prop_map(|entries| Message::InsertBatch { entries }),
        prop::collection::vec(
            (
                any::<u32>().prop_map(PlId),
                any::<u64>().prop_map(ElementId)
            ),
            0..40
        )
        .prop_map(|elements| Message::Delete { elements }),
        (
            any::<u64>(),
            prop::collection::vec(any::<u32>().prop_map(PlId), 0..40)
        )
            .prop_map(|(auth, pl_ids)| Message::Query {
                auth: AuthToken(auth),
                pl_ids,
            }),
        prop::collection::vec(
            (
                any::<u32>().prop_map(PlId),
                prop::collection::vec(arb_share(), 0..10)
            ),
            0..8
        )
        .prop_map(|lists| Message::QueryResponse { lists }),
        any::<u32>().prop_map(|d| Message::SnippetRequest { doc: DocId(d) }),
        prop::collection::vec(any::<u8>(), 0..300).prop_map(|bytes| {
            Message::SnippetResponse {
                payload: bytes::Bytes::from(bytes),
            }
        }),
    ]
}

proptest! {
    #[test]
    fn encode_decode_round_trips(message in arb_message()) {
        let encoded = message.encode();
        prop_assert_eq!(Message::decode(&encoded).unwrap(), message);
    }

    #[test]
    fn wire_size_is_exact(message in arb_message()) {
        prop_assert_eq!(message.encode().len(), message.wire_size());
    }

    #[test]
    fn truncation_never_decodes_to_the_same_message(message in arb_message()) {
        let encoded = message.encode();
        prop_assume!(encoded.len() > 1);
        // Cutting the last byte must not silently yield the original.
        match Message::decode(&encoded[..encoded.len() - 1]) {
            Err(_) => {}
            Ok(decoded) => prop_assert_ne!(decoded, message),
        }
    }

    #[test]
    fn garbage_input_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..200)) {
        let _ = Message::decode(&bytes); // must not panic
    }
}
