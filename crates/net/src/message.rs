//! Binary wire formats for the Zerber RPCs.
//!
//! The server interface is deliberately narrow (Section 5): "providing
//! only a narrow interface to the outside world (i.e., only insert,
//! delete, and look up posting list elements)". Each message encodes to
//! a length-exact byte buffer so the bandwidth experiments of Section
//! 7.3 measure real serialized sizes rather than estimates.
//!
//! # Wire formats
//!
//! Two posting payload encodings exist in the stack:
//!
//! * **Share columns (this module).** Zerber responses carry
//!   [`StoredShare`]s verbatim — element id (8 B) + group id (4 B) +
//!   y-share (8 B). Shares are near-uniform field elements
//!   (`crate::entropy` measures ≈ 8 bits/byte), so no compressed
//!   variant exists: re-coding them buys nothing, which is exactly the
//!   paper's Section 7.3 claim and what the `compression` experiment
//!   demonstrates empirically.
//!
//! * **Block-compressed plaintext postings (`zerber-postings`).**
//!   Baseline engines ship plaintext posting lists, which do
//!   compress. Their payload format, defined by
//!   `zerber_postings::block` and reused here for baseline wire-size
//!   accounting (`crate::sizes::SizeModel::compressed_response_bytes`),
//!   is a sequence of ≤ 128-posting blocks:
//!
//!   ```text
//!   block index entry: first_doc varint | (last_doc − first_doc) varint
//!                      | max_tf u16 (ceil-quantized) | len u8
//!   block payload:     count_bits u8 | length_bits u8
//!                      | LEB128 doc-key gaps (len-1 varints)
//!                      | counts, bit-packed at count_bits
//!                      | doc lengths, bit-packed at length_bits
//!   ```
//!
//!   The `(first_doc, last_doc, max_tf)` triple doubles as skip
//!   metadata: readers seek (`advance_to`) and prune (block-max
//!   top-k) from the block index without decoding payloads.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use zerber_core::{ElementId, PlId};
use zerber_field::Fp;
use zerber_index::{DocId, GroupId, TermId};

/// An opaque authentication token (the enterprise authentication
/// service of Section 5.4.2 is a black box to Zerber).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AuthToken(pub u64);

/// One stored/transported share of a posting element: the clear-text
/// routing fields plus the confidential y-share.
///
/// This is the `{g_id, e(doc, term, tf)}` pair of the query-response
/// format in Section 5.4.2, with `g_id` the global element ID and the
/// group id attached for ACL enforcement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoredShare {
    /// Global element id, identical across all n servers for one
    /// element — "tell users which shares to merge together".
    pub element: ElementId,
    /// Group that may read this element.
    pub group: GroupId,
    /// The Shamir y-share of the encoded `[doc, term, tf]` triple.
    pub share: Fp,
}

/// One plaintext document as shipped to a shard peer by
/// [`Message::IndexDocs`]: exactly the fields of
/// `zerber_index::Document`, kept as a separate wire struct so the
/// protocol layer owns its own layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireDocument {
    /// Global document id.
    pub doc: DocId,
    /// Owning collaboration group.
    pub group: GroupId,
    /// Token length (term-frequency denominator).
    pub length: u32,
    /// Distinct terms with raw occurrence counts, sorted by term id.
    pub terms: Vec<(TermId, u32)>,
}

impl WireDocument {
    /// Serialized size: id + group + length + count prefix + 8 B per
    /// term pair.
    pub fn wire_size(&self) -> usize {
        4 + 4 + 4 + 4 + self.terms.len() * 8
    }
}

/// Every message of the Zerber wire protocol.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Owner → server: insert a batch of element shares (Section 5.4.1
    /// batching).
    InsertBatch {
        /// Target posting list per entry.
        entries: Vec<(PlId, StoredShare)>,
    },
    /// Owner → server: delete elements by id. Element-wise because the
    /// server cannot see document ids: "To delete a document, its
    /// owner must delete each element separately" (Section 7.3).
    Delete {
        /// `(list, element)` pairs to remove.
        elements: Vec<(PlId, ElementId)>,
    },
    /// User → server: fetch the accessible parts of these posting
    /// lists. The user "does not divulge which terms she is querying",
    /// only list ids.
    Query {
        /// Authentication token.
        auth: AuthToken,
        /// Requested merged posting lists.
        pl_ids: Vec<PlId>,
    },
    /// Server → user: per-list share sets, ACL-filtered.
    QueryResponse {
        /// One entry per requested list.
        lists: Vec<(PlId, Vec<StoredShare>)>,
    },
    /// User → document host: fetch a result snippet (Section 5.4.2).
    SnippetRequest {
        /// The document to excerpt.
        doc: DocId,
    },
    /// Document host → user: the snippet bytes (~250 B of XML in the
    /// paper's measurement).
    SnippetResponse {
        /// Raw snippet payload.
        payload: Bytes,
    },
    /// User → shard peer: rank the top `k` documents for a weighted
    /// term query (the sharded plaintext serving path of the peer
    /// runtime). Weights are the per-term IDF factors computed from
    /// *global* collection statistics, shipped as exact `f64` bit
    /// patterns so every shard scores with bit-identical floats.
    TopKQuery {
        /// Which logical shard this peer should answer from. Under
        /// replication a peer hosts several shard stores; the id
        /// routes the query to the right one and lets any replica of
        /// a shard serve the identical request.
        shard: u32,
        /// Query terms with their global IDF weights.
        terms: Vec<(TermId, f64)>,
        /// How many ranked results to return.
        k: u32,
    },
    /// User → shard peer: a *planned* query — like
    /// [`Message::TopKQuery`] but carrying the query shape and an
    /// evaluator override, so one frame serves disjunctive,
    /// conjunctive, and phrase evaluation. The shape and override are
    /// raw bytes here (this crate stays independent of the query
    /// crate); the serving layer converts them. The peer answers with
    /// a plain [`Message::TopKResponse`].
    PlanQuery {
        /// Which logical shard this peer should answer from.
        shard: u32,
        /// Query shape: 0 = disjunctive terms, 1 = conjunctive AND,
        /// 2 = exact phrase. Anything else is malformed.
        shape: u8,
        /// Disjunctive evaluator override: 0 = planner default,
        /// 1 = force block-max TA, 2 = force MaxScore. Anything else
        /// is malformed.
        forced: u8,
        /// Query slots with their global IDF weights — phrase order
        /// (duplicates allowed) for the phrase shape.
        terms: Vec<(TermId, f64)>,
        /// How many ranked results to return.
        k: u32,
    },
    /// Shard peer → user: the shard-local top-k, sorted by score
    /// descending then document id ascending — the sorted-access order
    /// the gather stage's threshold bound relies on. The response also
    /// carries the peer-side execution stats (decode wall clock and
    /// block accounting), so the client can assemble a complete
    /// per-query span tree even when the peer is a separate process
    /// behind the socket transport.
    TopKResponse {
        /// Peer-side wall clock of the top-k evaluation, nanoseconds
        /// (measured on the peer's own clock; meaningful as a
        /// duration, not as an offset).
        decode_ns: u64,
        /// Posting blocks the peer actually decompressed.
        blocks_decoded: u32,
        /// Posting blocks present across the query's lists (what an
        /// eager evaluation would decode).
        blocks_total: u32,
        /// Ranked `(doc, score)` candidates, at most `k` of them.
        candidates: Vec<(DocId, f64)>,
    },
    /// Owner → shard peer: index a batch of plaintext documents (the
    /// mutable-shard ingest path of the peer runtime). Unlike share
    /// inserts, the peer sees the documents in the clear — this frame
    /// belongs to the *plaintext baseline* serving engine only.
    IndexDocs {
        /// The logical shard these documents belong to (writes fan to
        /// every replica of the shard; each applies them to its copy).
        shard: u32,
        /// Documents to index; re-sent document ids replace the
        /// previous version ("only the most recent copy").
        docs: Vec<WireDocument>,
    },
    /// Owner → shard peer: bulk-load a batch of plaintext documents
    /// through the offline SPIMI path — same payload as
    /// [`Message::IndexDocs`], but the peer indexes it WAL-free
    /// (parallel sorted runs, k-way merge, one atomic manifest swap)
    /// instead of journaling it. Replicas each build their own copy;
    /// like every write, the frame fans to all replicas of the shard.
    BulkLoad {
        /// The logical shard these documents belong to.
        shard: u32,
        /// Documents to load; re-sent document ids replace the
        /// previous version ("only the most recent copy").
        docs: Vec<WireDocument>,
    },
    /// Owner → shard peer: remove one document and all its postings.
    RemoveDoc {
        /// The logical shard the document lives on.
        shard: u32,
        /// The document to drop.
        doc: DocId,
    },
    /// Server → owner: a share batch was accepted.
    InsertOk,
    /// Server → owner: deletion outcome.
    DeleteOk {
        /// Elements actually removed.
        removed: u64,
    },
    /// Server → client: an RPC fault (failed authentication, missing
    /// group membership, or an unsupported request for this peer
    /// role). `code` is one of the `fault` constants; `group`
    /// identifies the offending group for membership faults and is
    /// zero otherwise.
    Fault {
        /// Fault discriminant (see [`fault`]).
        code: u8,
        /// Offending group for [`fault::NOT_GROUP_MEMBER`].
        group: GroupId,
    },
    /// Repair controller → live replica: freeze a consistent snapshot
    /// of this shard's on-disk state and describe it. The peer answers
    /// with a [`Message::SnapshotManifest`].
    PrepareSnapshot {
        /// The shard to snapshot.
        shard: u32,
    },
    /// Live replica → repair controller: the frozen snapshot's file
    /// inventory. Each entry names one immutable file (segment or
    /// manifest) with its byte length and CRC32, so the controller can
    /// fetch files one by one and verify every frame independently.
    SnapshotManifest {
        /// The snapshotted shard.
        shard: u32,
        /// The shard store's durable epoch at snapshot time.
        epoch: u64,
        /// `(file name, byte length, crc32)` per snapshot file.
        files: Vec<(String, u64, u32)>,
    },
    /// Repair controller → live replica: stream one named snapshot
    /// file. The peer answers with a [`Message::SegmentData`].
    FetchSegment {
        /// The snapshotted shard the file belongs to.
        shard: u32,
        /// File name from the [`Message::SnapshotManifest`].
        name: String,
    },
    /// Live replica → repair controller: the bytes of one snapshot
    /// file, CRC-framed so a corrupt hop is detected before the file
    /// is ever installed.
    SegmentData {
        /// CRC32 of `payload`.
        crc: u32,
        /// The file bytes.
        payload: Bytes,
    },
    /// Repair controller → rebuilding replica: install one snapshot
    /// file into the shard's staging directory (tmp + fsync + rename,
    /// same protocol as the segment store's own commits). An empty
    /// `name` with `commit = false` *begins* a rebuild (the replica
    /// starts buffering live writes); `commit = true` atomically cuts
    /// the staged files over to serving and replays the buffer.
    InstallShard {
        /// The shard being rebuilt.
        shard: u32,
        /// The snapshot epoch the staged files belong to.
        epoch: u64,
        /// Staged file name; empty for begin/commit control frames.
        name: String,
        /// CRC32 of `payload`.
        crc: u32,
        /// True on the final frame: cut over and start serving.
        commit: bool,
        /// The file bytes (empty for control frames).
        payload: Bytes,
    },
    /// Membership prober → peer: liveness probe. Any reachable peer
    /// answers [`Message::Pong`] regardless of role.
    Ping,
    /// Peer → membership prober: liveness acknowledgement.
    Pong,
}

/// Fault codes carried by [`Message::Fault`].
pub mod fault {
    /// The authentication token was rejected.
    pub const AUTH_FAILED: u8 = 1;
    /// The authenticated user is not a member of the required group.
    pub const NOT_GROUP_MEMBER: u8 = 2;
    /// The peer does not serve this request type (e.g. a plaintext
    /// shard peer receiving a share insert).
    pub const UNSUPPORTED: u8 = 3;
    /// The request bytes did not decode to a message.
    pub const MALFORMED: u8 = 4;
    /// The peer's storage engine rejected the operation (e.g. a WAL
    /// write failed on a durable shard).
    pub const STORAGE: u8 = 5;
    /// The shard is mid-rebuild on this replica and cannot serve
    /// queries yet (writes are buffered, reads must fail over).
    pub const REBUILDING: u8 = 6;
    /// A repair frame failed verification (CRC mismatch, unknown
    /// snapshot file, or a commit without a staged snapshot).
    pub const REPAIR: u8 = 7;
}

/// Wire decoding errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the message was complete.
    Truncated,
    /// Unknown message tag.
    UnknownTag(u8),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "truncated message"),
            WireError::UnknownTag(tag) => write!(f, "unknown message tag {tag}"),
        }
    }
}

impl std::error::Error for WireError {}

const TAG_INSERT: u8 = 1;
const TAG_DELETE: u8 = 2;
const TAG_QUERY: u8 = 3;
const TAG_RESPONSE: u8 = 4;
const TAG_SNIPPET_REQ: u8 = 5;
const TAG_SNIPPET_RESP: u8 = 6;
const TAG_TOPK_QUERY: u8 = 7;
const TAG_TOPK_RESPONSE: u8 = 8;
const TAG_INSERT_OK: u8 = 9;
const TAG_DELETE_OK: u8 = 10;
const TAG_FAULT: u8 = 11;
const TAG_INDEX_DOCS: u8 = 12;
const TAG_REMOVE_DOC: u8 = 13;
const TAG_BULK_LOAD: u8 = 14;
const TAG_PLAN_QUERY: u8 = 15;
const TAG_PREPARE_SNAPSHOT: u8 = 16;
const TAG_SNAPSHOT_MANIFEST: u8 = 17;
const TAG_FETCH_SEGMENT: u8 = 18;
const TAG_SEGMENT_DATA: u8 = 19;
const TAG_INSTALL_SHARD: u8 = 20;
const TAG_PING: u8 = 21;
const TAG_PONG: u8 = 22;

impl Message {
    /// Serializes the message.
    pub fn encode(&self) -> Bytes {
        let mut buffer = BytesMut::with_capacity(self.wire_size());
        match self {
            Message::InsertBatch { entries } => {
                buffer.put_u8(TAG_INSERT);
                buffer.put_u32(entries.len() as u32);
                for (pl, share) in entries {
                    buffer.put_u32(pl.0);
                    put_share(&mut buffer, share);
                }
            }
            Message::Delete { elements } => {
                buffer.put_u8(TAG_DELETE);
                buffer.put_u32(elements.len() as u32);
                for (pl, element) in elements {
                    buffer.put_u32(pl.0);
                    buffer.put_u64(element.0);
                }
            }
            Message::Query { auth, pl_ids } => {
                buffer.put_u8(TAG_QUERY);
                buffer.put_u64(auth.0);
                buffer.put_u32(pl_ids.len() as u32);
                for pl in pl_ids {
                    buffer.put_u32(pl.0);
                }
            }
            Message::QueryResponse { lists } => {
                buffer.put_u8(TAG_RESPONSE);
                buffer.put_u32(lists.len() as u32);
                for (pl, shares) in lists {
                    buffer.put_u32(pl.0);
                    buffer.put_u32(shares.len() as u32);
                    for share in shares {
                        put_share(&mut buffer, share);
                    }
                }
            }
            Message::SnippetRequest { doc } => {
                buffer.put_u8(TAG_SNIPPET_REQ);
                buffer.put_u32(doc.0);
            }
            Message::SnippetResponse { payload } => {
                buffer.put_u8(TAG_SNIPPET_RESP);
                buffer.put_u32(payload.len() as u32);
                buffer.put_slice(payload);
            }
            Message::TopKQuery { shard, terms, k } => {
                buffer.put_u8(TAG_TOPK_QUERY);
                buffer.put_u32(*shard);
                buffer.put_u32(*k);
                buffer.put_u32(terms.len() as u32);
                for (term, weight) in terms {
                    buffer.put_u32(term.0);
                    buffer.put_u64(weight.to_bits());
                }
            }
            Message::PlanQuery {
                shard,
                shape,
                forced,
                terms,
                k,
            } => {
                buffer.put_u8(TAG_PLAN_QUERY);
                buffer.put_u32(*shard);
                buffer.put_u8(*shape);
                buffer.put_u8(*forced);
                buffer.put_u32(*k);
                buffer.put_u32(terms.len() as u32);
                for (term, weight) in terms {
                    buffer.put_u32(term.0);
                    buffer.put_u64(weight.to_bits());
                }
            }
            Message::TopKResponse {
                decode_ns,
                blocks_decoded,
                blocks_total,
                candidates,
            } => {
                buffer.put_u8(TAG_TOPK_RESPONSE);
                buffer.put_u64(*decode_ns);
                buffer.put_u32(*blocks_decoded);
                buffer.put_u32(*blocks_total);
                buffer.put_u32(candidates.len() as u32);
                for (doc, score) in candidates {
                    buffer.put_u32(doc.0);
                    buffer.put_u64(score.to_bits());
                }
            }
            Message::IndexDocs { shard, docs } => {
                buffer.put_u8(TAG_INDEX_DOCS);
                buffer.put_u32(*shard);
                buffer.put_u32(docs.len() as u32);
                for doc in docs {
                    put_wire_document(&mut buffer, doc);
                }
            }
            Message::BulkLoad { shard, docs } => {
                buffer.put_u8(TAG_BULK_LOAD);
                buffer.put_u32(*shard);
                buffer.put_u32(docs.len() as u32);
                for doc in docs {
                    put_wire_document(&mut buffer, doc);
                }
            }
            Message::RemoveDoc { shard, doc } => {
                buffer.put_u8(TAG_REMOVE_DOC);
                buffer.put_u32(*shard);
                buffer.put_u32(doc.0);
            }
            Message::InsertOk => {
                buffer.put_u8(TAG_INSERT_OK);
            }
            Message::DeleteOk { removed } => {
                buffer.put_u8(TAG_DELETE_OK);
                buffer.put_u64(*removed);
            }
            Message::Fault { code, group } => {
                buffer.put_u8(TAG_FAULT);
                buffer.put_u8(*code);
                buffer.put_u32(group.0);
            }
            Message::PrepareSnapshot { shard } => {
                buffer.put_u8(TAG_PREPARE_SNAPSHOT);
                buffer.put_u32(*shard);
            }
            Message::SnapshotManifest {
                shard,
                epoch,
                files,
            } => {
                buffer.put_u8(TAG_SNAPSHOT_MANIFEST);
                buffer.put_u32(*shard);
                buffer.put_u64(*epoch);
                buffer.put_u32(files.len() as u32);
                for (name, len, crc) in files {
                    put_string(&mut buffer, name);
                    buffer.put_u64(*len);
                    buffer.put_u32(*crc);
                }
            }
            Message::FetchSegment { shard, name } => {
                buffer.put_u8(TAG_FETCH_SEGMENT);
                buffer.put_u32(*shard);
                put_string(&mut buffer, name);
            }
            Message::SegmentData { crc, payload } => {
                buffer.put_u8(TAG_SEGMENT_DATA);
                buffer.put_u32(*crc);
                buffer.put_u32(payload.len() as u32);
                buffer.put_slice(payload);
            }
            Message::InstallShard {
                shard,
                epoch,
                name,
                crc,
                commit,
                payload,
            } => {
                buffer.put_u8(TAG_INSTALL_SHARD);
                buffer.put_u32(*shard);
                buffer.put_u64(*epoch);
                put_string(&mut buffer, name);
                buffer.put_u32(*crc);
                buffer.put_u8(u8::from(*commit));
                buffer.put_u32(payload.len() as u32);
                buffer.put_slice(payload);
            }
            Message::Ping => {
                buffer.put_u8(TAG_PING);
            }
            Message::Pong => {
                buffer.put_u8(TAG_PONG);
            }
        }
        buffer.freeze()
    }

    /// Deserializes a message.
    pub fn decode(mut buffer: &[u8]) -> Result<Self, WireError> {
        if buffer.is_empty() {
            return Err(WireError::Truncated);
        }
        let tag = buffer.get_u8();
        match tag {
            TAG_INSERT => {
                let count = read_u32(&mut buffer)? as usize;
                let mut entries = Vec::with_capacity(count.min(1 << 20));
                for _ in 0..count {
                    let pl = PlId(read_u32(&mut buffer)?);
                    entries.push((pl, read_share(&mut buffer)?));
                }
                Ok(Message::InsertBatch { entries })
            }
            TAG_DELETE => {
                let count = read_u32(&mut buffer)? as usize;
                let mut elements = Vec::with_capacity(count.min(1 << 20));
                for _ in 0..count {
                    let pl = PlId(read_u32(&mut buffer)?);
                    let element = ElementId(read_u64(&mut buffer)?);
                    elements.push((pl, element));
                }
                Ok(Message::Delete { elements })
            }
            TAG_QUERY => {
                let auth = AuthToken(read_u64(&mut buffer)?);
                let count = read_u32(&mut buffer)? as usize;
                let mut pl_ids = Vec::with_capacity(count.min(1 << 20));
                for _ in 0..count {
                    pl_ids.push(PlId(read_u32(&mut buffer)?));
                }
                Ok(Message::Query { auth, pl_ids })
            }
            TAG_RESPONSE => {
                let list_count = read_u32(&mut buffer)? as usize;
                let mut lists = Vec::with_capacity(list_count.min(1 << 20));
                for _ in 0..list_count {
                    let pl = PlId(read_u32(&mut buffer)?);
                    let share_count = read_u32(&mut buffer)? as usize;
                    let mut shares = Vec::with_capacity(share_count.min(1 << 20));
                    for _ in 0..share_count {
                        shares.push(read_share(&mut buffer)?);
                    }
                    lists.push((pl, shares));
                }
                Ok(Message::QueryResponse { lists })
            }
            TAG_SNIPPET_REQ => Ok(Message::SnippetRequest {
                doc: DocId(read_u32(&mut buffer)?),
            }),
            TAG_SNIPPET_RESP => {
                let len = read_u32(&mut buffer)? as usize;
                if buffer.remaining() < len {
                    return Err(WireError::Truncated);
                }
                Ok(Message::SnippetResponse {
                    payload: Bytes::copy_from_slice(&buffer[..len]),
                })
            }
            TAG_TOPK_QUERY => {
                let shard = read_u32(&mut buffer)?;
                let k = read_u32(&mut buffer)?;
                let count = read_u32(&mut buffer)? as usize;
                let mut terms = Vec::with_capacity(count.min(1 << 20));
                for _ in 0..count {
                    let term = TermId(read_u32(&mut buffer)?);
                    let weight = f64::from_bits(read_u64(&mut buffer)?);
                    terms.push((term, weight));
                }
                Ok(Message::TopKQuery { shard, terms, k })
            }
            TAG_PLAN_QUERY => {
                let shard = read_u32(&mut buffer)?;
                if buffer.remaining() < 2 {
                    return Err(WireError::Truncated);
                }
                let shape = buffer.get_u8();
                let forced = buffer.get_u8();
                let k = read_u32(&mut buffer)?;
                let count = read_u32(&mut buffer)? as usize;
                let mut terms = Vec::with_capacity(count.min(1 << 20));
                for _ in 0..count {
                    let term = TermId(read_u32(&mut buffer)?);
                    let weight = f64::from_bits(read_u64(&mut buffer)?);
                    terms.push((term, weight));
                }
                Ok(Message::PlanQuery {
                    shard,
                    shape,
                    forced,
                    terms,
                    k,
                })
            }
            TAG_TOPK_RESPONSE => {
                let decode_ns = read_u64(&mut buffer)?;
                let blocks_decoded = read_u32(&mut buffer)?;
                let blocks_total = read_u32(&mut buffer)?;
                let count = read_u32(&mut buffer)? as usize;
                let mut candidates = Vec::with_capacity(count.min(1 << 20));
                for _ in 0..count {
                    let doc = DocId(read_u32(&mut buffer)?);
                    let score = f64::from_bits(read_u64(&mut buffer)?);
                    candidates.push((doc, score));
                }
                Ok(Message::TopKResponse {
                    decode_ns,
                    blocks_decoded,
                    blocks_total,
                    candidates,
                })
            }
            TAG_INDEX_DOCS => {
                let (shard, docs) = read_document_batch(&mut buffer)?;
                Ok(Message::IndexDocs { shard, docs })
            }
            TAG_BULK_LOAD => {
                let (shard, docs) = read_document_batch(&mut buffer)?;
                Ok(Message::BulkLoad { shard, docs })
            }
            TAG_REMOVE_DOC => Ok(Message::RemoveDoc {
                shard: read_u32(&mut buffer)?,
                doc: DocId(read_u32(&mut buffer)?),
            }),
            TAG_INSERT_OK => Ok(Message::InsertOk),
            TAG_DELETE_OK => Ok(Message::DeleteOk {
                removed: read_u64(&mut buffer)?,
            }),
            TAG_FAULT => {
                if buffer.remaining() < 1 {
                    return Err(WireError::Truncated);
                }
                let code = buffer.get_u8();
                let group = GroupId(read_u32(&mut buffer)?);
                Ok(Message::Fault { code, group })
            }
            TAG_PREPARE_SNAPSHOT => Ok(Message::PrepareSnapshot {
                shard: read_u32(&mut buffer)?,
            }),
            TAG_SNAPSHOT_MANIFEST => {
                let shard = read_u32(&mut buffer)?;
                let epoch = read_u64(&mut buffer)?;
                let count = read_u32(&mut buffer)? as usize;
                let mut files = Vec::with_capacity(count.min(1 << 20));
                for _ in 0..count {
                    let name = read_string(&mut buffer)?;
                    let len = read_u64(&mut buffer)?;
                    let crc = read_u32(&mut buffer)?;
                    files.push((name, len, crc));
                }
                Ok(Message::SnapshotManifest {
                    shard,
                    epoch,
                    files,
                })
            }
            TAG_FETCH_SEGMENT => {
                let shard = read_u32(&mut buffer)?;
                let name = read_string(&mut buffer)?;
                Ok(Message::FetchSegment { shard, name })
            }
            TAG_SEGMENT_DATA => {
                let crc = read_u32(&mut buffer)?;
                let payload = read_bytes(&mut buffer)?;
                Ok(Message::SegmentData { crc, payload })
            }
            TAG_INSTALL_SHARD => {
                let shard = read_u32(&mut buffer)?;
                let epoch = read_u64(&mut buffer)?;
                let name = read_string(&mut buffer)?;
                let crc = read_u32(&mut buffer)?;
                if buffer.remaining() < 1 {
                    return Err(WireError::Truncated);
                }
                let commit = buffer.get_u8() != 0;
                let payload = read_bytes(&mut buffer)?;
                Ok(Message::InstallShard {
                    shard,
                    epoch,
                    name,
                    crc,
                    commit,
                    payload,
                })
            }
            TAG_PING => Ok(Message::Ping),
            TAG_PONG => Ok(Message::Pong),
            other => Err(WireError::UnknownTag(other)),
        }
    }

    /// Exact serialized size in bytes, without materializing the
    /// buffer.
    pub fn wire_size(&self) -> usize {
        const SHARE: usize = 8 + 4 + 8; // element id + group + y-share
        match self {
            Message::InsertBatch { entries } => 1 + 4 + entries.len() * (4 + SHARE),
            Message::Delete { elements } => 1 + 4 + elements.len() * (4 + 8),
            Message::Query { pl_ids, .. } => 1 + 8 + 4 + pl_ids.len() * 4,
            Message::QueryResponse { lists } => {
                1 + 4
                    + lists
                        .iter()
                        .map(|(_, shares)| 4 + 4 + shares.len() * SHARE)
                        .sum::<usize>()
            }
            Message::SnippetRequest { .. } => 1 + 4,
            Message::SnippetResponse { payload } => 1 + 4 + payload.len(),
            Message::TopKQuery { terms, .. } => 1 + 4 + 4 + 4 + terms.len() * (4 + 8),
            Message::PlanQuery { terms, .. } => 1 + 4 + 1 + 1 + 4 + 4 + terms.len() * (4 + 8),
            Message::TopKResponse { candidates, .. } => {
                1 + 8 + 4 + 4 + 4 + candidates.len() * (4 + 8)
            }
            Message::IndexDocs { docs, .. } | Message::BulkLoad { docs, .. } => {
                1 + 4 + 4 + docs.iter().map(WireDocument::wire_size).sum::<usize>()
            }
            Message::RemoveDoc { .. } => 1 + 4 + 4,
            Message::InsertOk => 1,
            Message::DeleteOk { .. } => 1 + 8,
            Message::Fault { .. } => 1 + 1 + 4,
            Message::PrepareSnapshot { .. } => 1 + 4,
            Message::SnapshotManifest { files, .. } => {
                1 + 4
                    + 8
                    + 4
                    + files
                        .iter()
                        .map(|(name, _, _)| 4 + name.len() + 8 + 4)
                        .sum::<usize>()
            }
            Message::FetchSegment { name, .. } => 1 + 4 + 4 + name.len(),
            Message::SegmentData { payload, .. } => 1 + 4 + 4 + payload.len(),
            Message::InstallShard { name, payload, .. } => {
                1 + 4 + 8 + 4 + name.len() + 4 + 1 + 4 + payload.len()
            }
            Message::Ping | Message::Pong => 1,
        }
    }
}

fn put_wire_document(buffer: &mut BytesMut, doc: &WireDocument) {
    buffer.put_u32(doc.doc.0);
    buffer.put_u32(doc.group.0);
    buffer.put_u32(doc.length);
    buffer.put_u32(doc.terms.len() as u32);
    for (term, count) in &doc.terms {
        buffer.put_u32(term.0);
        buffer.put_u32(*count);
    }
}

/// The shared `shard + document batch` payload of
/// [`Message::IndexDocs`] and [`Message::BulkLoad`].
fn read_document_batch(buffer: &mut &[u8]) -> Result<(u32, Vec<WireDocument>), WireError> {
    let shard = read_u32(buffer)?;
    let doc_count = read_u32(buffer)? as usize;
    let mut docs = Vec::with_capacity(doc_count.min(1 << 20));
    for _ in 0..doc_count {
        let doc = DocId(read_u32(buffer)?);
        let group = GroupId(read_u32(buffer)?);
        let length = read_u32(buffer)?;
        let term_count = read_u32(buffer)? as usize;
        let mut terms = Vec::with_capacity(term_count.min(1 << 20));
        for _ in 0..term_count {
            let term = TermId(read_u32(buffer)?);
            let count = read_u32(buffer)?;
            terms.push((term, count));
        }
        docs.push(WireDocument {
            doc,
            group,
            length,
            terms,
        });
    }
    Ok((shard, docs))
}

fn put_share(buffer: &mut BytesMut, share: &StoredShare) {
    buffer.put_u64(share.element.0);
    buffer.put_u32(share.group.0);
    buffer.put_u64(share.share.value());
}

fn read_u32(buffer: &mut &[u8]) -> Result<u32, WireError> {
    if buffer.remaining() < 4 {
        return Err(WireError::Truncated);
    }
    Ok(buffer.get_u32())
}

fn read_u64(buffer: &mut &[u8]) -> Result<u64, WireError> {
    if buffer.remaining() < 8 {
        return Err(WireError::Truncated);
    }
    Ok(buffer.get_u64())
}

fn put_string(buffer: &mut BytesMut, value: &str) {
    buffer.put_u32(value.len() as u32);
    buffer.put_slice(value.as_bytes());
}

fn read_string(buffer: &mut &[u8]) -> Result<String, WireError> {
    let len = read_u32(buffer)? as usize;
    if buffer.remaining() < len {
        return Err(WireError::Truncated);
    }
    let value = String::from_utf8_lossy(&buffer[..len]).into_owned();
    buffer.advance(len);
    Ok(value)
}

fn read_bytes(buffer: &mut &[u8]) -> Result<Bytes, WireError> {
    let len = read_u32(buffer)? as usize;
    if buffer.remaining() < len {
        return Err(WireError::Truncated);
    }
    let value = Bytes::copy_from_slice(&buffer[..len]);
    buffer.advance(len);
    Ok(value)
}

fn read_share(buffer: &mut &[u8]) -> Result<StoredShare, WireError> {
    let element = ElementId(read_u64(buffer)?);
    let group = GroupId(read_u32(buffer)?);
    let share = Fp::new(read_u64(buffer)?);
    Ok(StoredShare {
        element,
        group,
        share,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn share(e: u64, g: u32, y: u64) -> StoredShare {
        StoredShare {
            element: ElementId(e),
            group: GroupId(g),
            share: Fp::new(y),
        }
    }

    #[test]
    fn insert_batch_round_trips() {
        let message = Message::InsertBatch {
            entries: vec![
                (PlId(1), share(100, 2, 12345)),
                (PlId(9), share(101, 3, 99999)),
            ],
        };
        let encoded = message.encode();
        assert_eq!(encoded.len(), message.wire_size());
        assert_eq!(Message::decode(&encoded).unwrap(), message);
    }

    #[test]
    fn delete_round_trips() {
        let message = Message::Delete {
            elements: vec![(PlId(4), ElementId(77)), (PlId(4), ElementId(78))],
        };
        let encoded = message.encode();
        assert_eq!(encoded.len(), message.wire_size());
        assert_eq!(Message::decode(&encoded).unwrap(), message);
    }

    #[test]
    fn query_round_trips() {
        let message = Message::Query {
            auth: AuthToken(0xdead_beef),
            pl_ids: vec![PlId(0), PlId(31_999)],
        };
        let encoded = message.encode();
        assert_eq!(encoded.len(), message.wire_size());
        assert_eq!(Message::decode(&encoded).unwrap(), message);
    }

    #[test]
    fn response_round_trips() {
        let message = Message::QueryResponse {
            lists: vec![
                (PlId(5), vec![share(1, 1, 1), share(2, 1, 2)]),
                (PlId(6), vec![]),
            ],
        };
        let encoded = message.encode();
        assert_eq!(encoded.len(), message.wire_size());
        assert_eq!(Message::decode(&encoded).unwrap(), message);
    }

    #[test]
    fn snippets_round_trip() {
        let request = Message::SnippetRequest {
            doc: DocId::from_parts(3, 17),
        };
        assert_eq!(Message::decode(&request.encode()).unwrap(), request);
        let response = Message::SnippetResponse {
            payload: Bytes::from_static(b"<snippet>Martha ... ImClone</snippet>"),
        };
        let encoded = response.encode();
        assert_eq!(encoded.len(), response.wire_size());
        assert_eq!(Message::decode(&encoded).unwrap(), response);
    }

    #[test]
    fn topk_messages_round_trip_exact_floats() {
        // 0.1 has no finite binary expansion; bit-level transport must
        // still reproduce it exactly.
        let query = Message::TopKQuery {
            shard: 2,
            terms: vec![(TermId(7), 0.1), (TermId(9), 3.75)],
            k: 10,
        };
        let encoded = query.encode();
        assert_eq!(encoded.len(), query.wire_size());
        assert_eq!(Message::decode(&encoded).unwrap(), query);

        let response = Message::TopKResponse {
            decode_ns: 123_456,
            blocks_decoded: 3,
            blocks_total: 11,
            candidates: vec![(DocId(3), 1.0 / 3.0), (DocId(1), 0.0)],
        };
        let encoded = response.encode();
        assert_eq!(encoded.len(), response.wire_size());
        assert_eq!(Message::decode(&encoded).unwrap(), response);
    }

    #[test]
    fn plan_query_round_trips_and_rejects_every_cut() {
        for (shape, forced) in [(0u8, 0u8), (1, 0), (2, 0), (0, 1), (0, 2)] {
            let message = Message::PlanQuery {
                shard: 3,
                shape,
                forced,
                terms: vec![(TermId(7), 0.1), (TermId(7), 0.1), (TermId(2), 3.75)],
                k: 10,
            };
            let encoded = message.encode();
            assert_eq!(encoded.len(), message.wire_size());
            assert_eq!(Message::decode(&encoded).unwrap(), message);
            for cut in 0..encoded.len() {
                assert!(
                    Message::decode(&encoded[..cut]).is_err(),
                    "cut at {cut} should fail"
                );
            }
        }
    }

    #[test]
    fn index_docs_round_trips() {
        let message = Message::IndexDocs {
            shard: 5,
            docs: vec![
                WireDocument {
                    doc: DocId(7),
                    group: GroupId(1),
                    length: 12,
                    terms: vec![(TermId(3), 2), (TermId(9), 10)],
                },
                WireDocument {
                    doc: DocId(8),
                    group: GroupId(0),
                    length: 0,
                    terms: vec![],
                },
            ],
        };
        let encoded = message.encode();
        assert_eq!(encoded.len(), message.wire_size());
        assert_eq!(Message::decode(&encoded).unwrap(), message);
        for cut in 0..encoded.len() {
            assert!(
                Message::decode(&encoded[..cut]).is_err(),
                "cut at {cut} should fail"
            );
        }
    }

    #[test]
    fn bulk_load_round_trips() {
        let message = Message::BulkLoad {
            shard: 2,
            docs: vec![
                WireDocument {
                    doc: DocId(41),
                    group: GroupId(3),
                    length: 6,
                    terms: vec![(TermId(0), 1), (TermId(5), 4)],
                },
                WireDocument {
                    doc: DocId(42),
                    group: GroupId(3),
                    length: 0,
                    terms: vec![],
                },
            ],
        };
        let encoded = message.encode();
        assert_eq!(encoded.len(), message.wire_size());
        assert_eq!(Message::decode(&encoded).unwrap(), message);
        for cut in 0..encoded.len() {
            assert!(
                Message::decode(&encoded[..cut]).is_err(),
                "cut at {cut} should fail"
            );
        }
    }

    #[test]
    fn remove_doc_round_trips() {
        let message = Message::RemoveDoc {
            shard: 1,
            doc: DocId::from_parts(3, 99),
        };
        let encoded = message.encode();
        assert_eq!(encoded.len(), message.wire_size());
        assert_eq!(Message::decode(&encoded).unwrap(), message);
    }

    #[test]
    fn control_messages_round_trip() {
        for message in [
            Message::InsertOk,
            Message::DeleteOk { removed: 42 },
            Message::Fault {
                code: crate::message::fault::NOT_GROUP_MEMBER,
                group: GroupId(9),
            },
        ] {
            let encoded = message.encode();
            assert_eq!(encoded.len(), message.wire_size());
            assert_eq!(Message::decode(&encoded).unwrap(), message);
        }
    }

    #[test]
    fn repair_frames_round_trip_and_reject_every_cut() {
        let messages = [
            Message::PrepareSnapshot { shard: 3 },
            Message::SnapshotManifest {
                shard: 3,
                epoch: 17,
                files: vec![
                    ("MANIFEST".to_string(), 96, 0xdead_beef),
                    ("seg-000001.zseg".to_string(), 4096, 0x1234_5678),
                ],
            },
            Message::SnapshotManifest {
                shard: 0,
                epoch: 0,
                files: vec![],
            },
            Message::FetchSegment {
                shard: 3,
                name: "seg-000001.zseg".to_string(),
            },
            Message::SegmentData {
                crc: 0xcafe_f00d,
                payload: Bytes::from_static(b"segment bytes"),
            },
            Message::InstallShard {
                shard: 3,
                epoch: 17,
                name: "seg-000001.zseg".to_string(),
                crc: 0xcafe_f00d,
                commit: false,
                payload: Bytes::from_static(b"segment bytes"),
            },
            Message::InstallShard {
                shard: 3,
                epoch: 17,
                name: String::new(),
                crc: 0,
                commit: true,
                payload: Bytes::new(),
            },
            Message::Ping,
            Message::Pong,
        ];
        for message in messages {
            let encoded = message.encode();
            assert_eq!(encoded.len(), message.wire_size(), "{message:?}");
            assert_eq!(Message::decode(&encoded).unwrap(), message);
            for cut in 0..encoded.len() {
                assert!(
                    Message::decode(&encoded[..cut]).is_err(),
                    "{message:?}: cut at {cut} should fail"
                );
            }
        }
    }

    #[test]
    fn truncated_topk_errors() {
        let message = Message::TopKQuery {
            shard: 0,
            terms: vec![(TermId(1), 2.0)],
            k: 3,
        };
        let encoded = message.encode();
        for cut in 0..encoded.len() {
            assert!(
                Message::decode(&encoded[..cut]).is_err(),
                "cut at {cut} should fail"
            );
        }
    }

    #[test]
    fn truncated_buffers_error() {
        let message = Message::Query {
            auth: AuthToken(1),
            pl_ids: vec![PlId(1)],
        };
        let encoded = message.encode();
        for cut in 0..encoded.len() {
            assert!(
                Message::decode(&encoded[..cut]).is_err(),
                "cut at {cut} should fail"
            );
        }
    }

    #[test]
    fn unknown_tag_errors() {
        assert_eq!(
            Message::decode(&[42]).unwrap_err(),
            WireError::UnknownTag(42)
        );
    }

    #[test]
    fn per_element_response_overhead_is_20_bytes() {
        // 8 B element id + 4 B group + 8 B share: the response share of
        // one element. The paper's accounting (21.5 KB for ~2700
        // elements) uses 8 B/element; our richer wire format is
        // reported side by side in the experiments.
        let empty = Message::QueryResponse {
            lists: vec![(PlId(0), vec![])],
        };
        let one = Message::QueryResponse {
            lists: vec![(PlId(0), vec![share(1, 1, 1)])],
        };
        assert_eq!(one.wire_size() - empty.wire_size(), 20);
    }
}
