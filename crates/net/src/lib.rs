//! Simulated enterprise network for the Zerber deployment.
//!
//! Section 7.3 evaluates Zerber's network behaviour analytically: "we
//! assume the following intranet setup: users connect over a 55 Mb/s
//! wireless LAN, while servers use 100 Mb/s LAN connections", posting
//! elements are "encoded using 64 bits", snippets are "about 250 B
//! including XML formatting", and — crucially — "Zerber's element
//! shares are almost random, so standard HTML compression is
//! ineffective". This crate provides:
//!
//! * [`message`] — binary wire formats for every Zerber RPC (insert
//!   batches, deletes, posting-list queries and responses, snippet
//!   fetches) with exact byte sizes,
//! * [`framing`] — length-prefixed, CRC-protected frames that carry
//!   those messages over real byte streams (TCP / Unix sockets),
//! * [`bandwidth`] — per-link traffic accounting and transfer-time
//!   models for the paper's link speeds,
//! * [`sizes`] — the storage/overhead arithmetic of Section 7.2
//!   (Zerber elements ≈ 1.5× ordinary elements, n-fold replication),
//! * [`entropy`] — a Shannon-entropy estimator used to demonstrate the
//!   incompressibility of secret shares.

pub mod bandwidth;
pub mod entropy;
pub mod framing;
pub mod message;
pub mod sizes;

pub use bandwidth::{LinkSpec, NodeId, TrafficMeter};
/// Re-exported so message constructors (e.g. the repair frames'
/// payloads) can be built without a direct `bytes` dependency.
pub use bytes::Bytes;
pub use entropy::entropy_bits_per_byte;
pub use framing::{Frame, FrameDecoder, FrameError};
pub use message::{AuthToken, Message, StoredShare, WireDocument, WireError};
pub use sizes::SizeModel;
