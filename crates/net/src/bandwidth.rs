//! Traffic accounting and link models.
//!
//! All Zerber traffic flows through a [`TrafficMeter`]; the experiments
//! read per-link byte totals from it and convert them to transfer
//! times with the paper's link speeds (55 Mb/s WLAN for users, 100
//! Mb/s LAN for servers — Section 7.3).

use std::collections::HashMap;

use parking_lot::Mutex;

/// A participant in the simulated deployment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum NodeId {
    /// A querying user's machine.
    User(u32),
    /// A document owner's machine (also serves snippets).
    Owner(u32),
    /// One of the n index servers.
    IndexServer(u32),
}

/// A network link's nominal capacity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkSpec {
    /// Capacity in megabits per second.
    pub megabits_per_second: f64,
}

impl LinkSpec {
    /// The paper's user link: 55 Mb/s wireless LAN.
    pub const WLAN_55: LinkSpec = LinkSpec {
        megabits_per_second: 55.0,
    };
    /// The paper's server link: 100 Mb/s LAN.
    pub const LAN_100: LinkSpec = LinkSpec {
        megabits_per_second: 100.0,
    };

    /// Time to move `bytes` over this link, in milliseconds.
    pub fn transfer_ms(&self, bytes: usize) -> f64 {
        let bits = bytes as f64 * 8.0;
        bits / (self.megabits_per_second * 1_000_000.0) * 1_000.0
    }
}

/// Thread-safe per-link byte accounting.
#[derive(Debug, Default)]
pub struct TrafficMeter {
    links: Mutex<HashMap<(NodeId, NodeId), u64>>,
}

impl TrafficMeter {
    /// An empty meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `bytes` sent `from → to`.
    pub fn record(&self, from: NodeId, to: NodeId, bytes: usize) {
        *self.links.lock().entry((from, to)).or_insert(0) += bytes as u64;
    }

    /// Total bytes sent over one directed link.
    pub fn link_bytes(&self, from: NodeId, to: NodeId) -> u64 {
        self.links.lock().get(&(from, to)).copied().unwrap_or(0)
    }

    /// Total bytes sent by a node.
    pub fn sent_by(&self, node: NodeId) -> u64 {
        self.links
            .lock()
            .iter()
            .filter(|((from, _), _)| *from == node)
            .map(|(_, &bytes)| bytes)
            .sum()
    }

    /// Total bytes received by a node.
    pub fn received_by(&self, node: NodeId) -> u64 {
        self.links
            .lock()
            .iter()
            .filter(|((_, to), _)| *to == node)
            .map(|(_, &bytes)| bytes)
            .sum()
    }

    /// Grand total across every link.
    pub fn total(&self) -> u64 {
        self.links.lock().values().sum()
    }

    /// Total bytes that crossed links matching a predicate (e.g. all
    /// traffic into index servers).
    pub fn total_matching<F>(&self, mut predicate: F) -> u64
    where
        F: FnMut(NodeId, NodeId) -> bool,
    {
        self.links
            .lock()
            .iter()
            .filter(|((from, to), _)| predicate(*from, *to))
            .map(|(_, &bytes)| bytes)
            .sum()
    }

    /// Clears all counters.
    pub fn reset(&self) {
        self.links.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_accumulate_per_link() {
        let meter = TrafficMeter::new();
        let user = NodeId::User(1);
        let server = NodeId::IndexServer(0);
        meter.record(user, server, 100);
        meter.record(user, server, 50);
        meter.record(server, user, 2_000);
        assert_eq!(meter.link_bytes(user, server), 150);
        assert_eq!(meter.link_bytes(server, user), 2_000);
        assert_eq!(meter.total(), 2_150);
    }

    #[test]
    fn per_node_aggregates() {
        let meter = TrafficMeter::new();
        let user = NodeId::User(1);
        meter.record(user, NodeId::IndexServer(0), 10);
        meter.record(user, NodeId::IndexServer(1), 20);
        meter.record(NodeId::IndexServer(0), user, 100);
        assert_eq!(meter.sent_by(user), 30);
        assert_eq!(meter.received_by(user), 100);
        assert_eq!(meter.received_by(NodeId::IndexServer(1)), 20);
    }

    #[test]
    fn predicate_totals() {
        let meter = TrafficMeter::new();
        meter.record(NodeId::Owner(0), NodeId::IndexServer(0), 10);
        meter.record(NodeId::Owner(0), NodeId::IndexServer(1), 10);
        meter.record(NodeId::User(0), NodeId::Owner(0), 5);
        let into_servers = meter.total_matching(|_, to| matches!(to, NodeId::IndexServer(_)));
        assert_eq!(into_servers, 20);
    }

    #[test]
    fn reset_clears() {
        let meter = TrafficMeter::new();
        meter.record(NodeId::User(0), NodeId::User(1), 5);
        meter.reset();
        assert_eq!(meter.total(), 0);
    }

    #[test]
    fn transfer_times_match_link_speeds() {
        // 21.5 KB per query-term response over 55 Mb/s WLAN ≈ 3.2 ms
        // (the paper derives ~35 queries/second/user from ~2.45 terms
        // per query).
        let bytes = 21_500;
        let ms = LinkSpec::WLAN_55.transfer_ms(bytes);
        assert!((ms - 3.127).abs() < 0.1, "got {ms} ms");
        // The LAN is faster.
        assert!(LinkSpec::LAN_100.transfer_ms(bytes) < ms);
    }

    #[test]
    fn zero_bytes_is_instant() {
        assert_eq!(LinkSpec::WLAN_55.transfer_ms(0), 0.0);
    }
}
