//! Traffic accounting and link models.
//!
//! All Zerber traffic flows through a [`TrafficMeter`]; the experiments
//! read per-link byte totals from it and convert them to transfer
//! times with the paper's link speeds (55 Mb/s WLAN for users, 100
//! Mb/s LAN for servers — Section 7.3).

use std::collections::HashMap;

use parking_lot::Mutex;

/// A participant in the simulated deployment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum NodeId {
    /// A querying user's machine.
    User(u32),
    /// A document owner's machine (also serves snippets).
    Owner(u32),
    /// One of the n index servers.
    IndexServer(u32),
}

/// A network link's nominal capacity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkSpec {
    /// Capacity in megabits per second.
    pub megabits_per_second: f64,
}

impl LinkSpec {
    /// The paper's user link: 55 Mb/s wireless LAN.
    pub const WLAN_55: LinkSpec = LinkSpec {
        megabits_per_second: 55.0,
    };
    /// The paper's server link: 100 Mb/s LAN.
    pub const LAN_100: LinkSpec = LinkSpec {
        megabits_per_second: 100.0,
    };

    /// Time to move `bytes` over this link, in milliseconds.
    pub fn transfer_ms(&self, bytes: usize) -> f64 {
        let bits = bytes as f64 * 8.0;
        bits / (self.megabits_per_second * 1_000_000.0) * 1_000.0
    }
}

/// Byte totals for one directed link: the logical payload and what
/// actually crossed the wire (smaller when the payload shipped
/// compressed).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct LinkTraffic {
    raw: u64,
    wire: u64,
}

/// Thread-safe per-link byte accounting.
///
/// Every record tracks two totals: *raw* bytes (the uncompressed
/// payload size) and *wire* bytes (what actually crossed the link).
/// Plain [`TrafficMeter::record`] counts both equally;
/// [`TrafficMeter::record_compressed`] lets baselines claim their
/// posting-compression discount while Zerber's share traffic — which
/// the Section 7.3 entropy argument shows cannot compress — records
/// wire == raw. Unqualified totals report wire bytes (transfer time
/// is what the experiments derive from them).
#[derive(Debug, Default)]
pub struct TrafficMeter {
    links: Mutex<HashMap<(NodeId, NodeId), LinkTraffic>>,
}

impl TrafficMeter {
    /// An empty meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `bytes` sent `from → to` uncompressed (wire == raw).
    pub fn record(&self, from: NodeId, to: NodeId, bytes: usize) {
        self.record_compressed(from, to, bytes, bytes);
    }

    /// Records a payload of `raw_bytes` that crossed the link as
    /// `wire_bytes` after compression.
    pub fn record_compressed(&self, from: NodeId, to: NodeId, raw_bytes: usize, wire_bytes: usize) {
        let mut links = self.links.lock();
        let entry = links.entry((from, to)).or_default();
        entry.raw += raw_bytes as u64;
        entry.wire += wire_bytes as u64;
    }

    /// Total wire bytes sent over one directed link.
    pub fn link_bytes(&self, from: NodeId, to: NodeId) -> u64 {
        self.links
            .lock()
            .get(&(from, to))
            .map(|t| t.wire)
            .unwrap_or(0)
    }

    /// Total uncompressed payload bytes sent over one directed link.
    pub fn link_raw_bytes(&self, from: NodeId, to: NodeId) -> u64 {
        self.links
            .lock()
            .get(&(from, to))
            .map(|t| t.raw)
            .unwrap_or(0)
    }

    /// Total wire bytes sent by a node.
    pub fn sent_by(&self, node: NodeId) -> u64 {
        self.links
            .lock()
            .iter()
            .filter(|((from, _), _)| *from == node)
            .map(|(_, traffic)| traffic.wire)
            .sum()
    }

    /// Total wire bytes received by a node.
    pub fn received_by(&self, node: NodeId) -> u64 {
        self.links
            .lock()
            .iter()
            .filter(|((_, to), _)| *to == node)
            .map(|(_, traffic)| traffic.wire)
            .sum()
    }

    /// Grand total of wire bytes across every link.
    pub fn total(&self) -> u64 {
        self.links.lock().values().map(|t| t.wire).sum()
    }

    /// Grand total of uncompressed payload bytes across every link.
    pub fn total_raw(&self) -> u64 {
        self.links.lock().values().map(|t| t.raw).sum()
    }

    /// Overall compression savings: `1 - wire / raw` (0 when nothing
    /// was recorded or nothing compressed).
    pub fn compression_savings(&self) -> f64 {
        let (raw, wire) = {
            let links = self.links.lock();
            (
                links.values().map(|t| t.raw).sum::<u64>(),
                links.values().map(|t| t.wire).sum::<u64>(),
            )
        };
        if raw == 0 {
            0.0
        } else {
            1.0 - wire as f64 / raw as f64
        }
    }

    /// Total wire bytes that crossed links matching a predicate (e.g.
    /// all traffic into index servers).
    pub fn total_matching<F>(&self, mut predicate: F) -> u64
    where
        F: FnMut(NodeId, NodeId) -> bool,
    {
        self.links
            .lock()
            .iter()
            .filter(|((from, to), _)| predicate(*from, *to))
            .map(|(_, traffic)| traffic.wire)
            .sum()
    }

    /// Clears all counters.
    pub fn reset(&self) {
        self.links.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_accumulate_per_link() {
        let meter = TrafficMeter::new();
        let user = NodeId::User(1);
        let server = NodeId::IndexServer(0);
        meter.record(user, server, 100);
        meter.record(user, server, 50);
        meter.record(server, user, 2_000);
        assert_eq!(meter.link_bytes(user, server), 150);
        assert_eq!(meter.link_bytes(server, user), 2_000);
        assert_eq!(meter.total(), 2_150);
    }

    #[test]
    fn per_node_aggregates() {
        let meter = TrafficMeter::new();
        let user = NodeId::User(1);
        meter.record(user, NodeId::IndexServer(0), 10);
        meter.record(user, NodeId::IndexServer(1), 20);
        meter.record(NodeId::IndexServer(0), user, 100);
        assert_eq!(meter.sent_by(user), 30);
        assert_eq!(meter.received_by(user), 100);
        assert_eq!(meter.received_by(NodeId::IndexServer(1)), 20);
    }

    #[test]
    fn predicate_totals() {
        let meter = TrafficMeter::new();
        meter.record(NodeId::Owner(0), NodeId::IndexServer(0), 10);
        meter.record(NodeId::Owner(0), NodeId::IndexServer(1), 10);
        meter.record(NodeId::User(0), NodeId::Owner(0), 5);
        let into_servers = meter.total_matching(|_, to| matches!(to, NodeId::IndexServer(_)));
        assert_eq!(into_servers, 20);
    }

    #[test]
    fn compressed_records_split_raw_and_wire() {
        let meter = TrafficMeter::new();
        let server = NodeId::IndexServer(0);
        let user = NodeId::User(1);
        // A baseline response: 10 KB of postings shipped as 4 KB.
        meter.record_compressed(server, user, 10_000, 4_000);
        // Share traffic: incompressible, wire == raw.
        meter.record(user, server, 2_000);
        assert_eq!(meter.link_bytes(server, user), 4_000);
        assert_eq!(meter.link_raw_bytes(server, user), 10_000);
        assert_eq!(meter.total(), 6_000);
        assert_eq!(meter.total_raw(), 12_000);
        assert!((meter.compression_savings() - 0.5).abs() < 1e-12);
        assert_eq!(meter.received_by(user), 4_000);
    }

    #[test]
    fn savings_are_zero_without_traffic() {
        let meter = TrafficMeter::new();
        assert_eq!(meter.compression_savings(), 0.0);
        meter.record(NodeId::User(0), NodeId::User(1), 100);
        assert_eq!(meter.compression_savings(), 0.0);
    }

    #[test]
    fn reset_clears() {
        let meter = TrafficMeter::new();
        meter.record(NodeId::User(0), NodeId::User(1), 5);
        meter.reset();
        assert_eq!(meter.total(), 0);
    }

    #[test]
    fn transfer_times_match_link_speeds() {
        // 21.5 KB per query-term response over 55 Mb/s WLAN ≈ 3.2 ms
        // (the paper derives ~35 queries/second/user from ~2.45 terms
        // per query).
        let bytes = 21_500;
        let ms = LinkSpec::WLAN_55.transfer_ms(bytes);
        assert!((ms - 3.127).abs() < 0.1, "got {ms} ms");
        // The LAN is faster.
        assert!(LinkSpec::LAN_100.transfer_ms(bytes) < ms);
    }

    #[test]
    fn zero_bytes_is_instant() {
        assert_eq!(LinkSpec::WLAN_55.transfer_ms(0), 0.0);
    }
}
