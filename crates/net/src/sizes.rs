//! Storage and response-size arithmetic (Sections 7.2 and 7.3).
//!
//! "Zerber posting elements include additional fields to identify the
//! term in the merged set and the global element ID, which increases
//! element size by about 50%. Encryption under Shamir's k-out-of-n
//! scheme does not change the element size. Hence, each Zerber index
//! server uses about 50% more space than an ordinary inverted index.
//! Since Zerber replicates the index on n servers, the total index
//! space required is 1.5n times more than for an ordinary inverted
//! index."

/// The byte-size model of the paper's accounting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SizeModel {
    /// Bytes per ordinary-index posting element ("encoded using 64
    /// bits" ⇒ 8).
    pub plain_element_bytes: usize,
    /// Multiplier for the Zerber element's extra fields (term id in
    /// the merged set + global element id ⇒ ~1.5).
    pub zerber_element_factor: f64,
    /// Bytes per result snippet ("about 250 B including XML
    /// formatting").
    pub snippet_bytes: usize,
    /// Reference top-10 response sizes from the paper's measurements
    /// of public engines: (Google, Altavista, Yahoo) in bytes.
    pub engine_reference_bytes: (usize, usize, usize),
}

impl Default for SizeModel {
    fn default() -> Self {
        Self {
            plain_element_bytes: 8,
            zerber_element_factor: 1.5,
            snippet_bytes: 250,
            engine_reference_bytes: (15 * 1024, 37 * 1024, 59 * 1024),
        }
    }
}

impl SizeModel {
    /// Bytes per Zerber posting element on one index server.
    pub fn zerber_element_bytes(&self) -> usize {
        (self.plain_element_bytes as f64 * self.zerber_element_factor).round() as usize
    }

    /// Storage of an ordinary centralized inverted index.
    pub fn plain_index_bytes(&self, total_postings: usize) -> usize {
        total_postings * self.plain_element_bytes
    }

    /// Storage of one Zerber index server.
    pub fn zerber_server_bytes(&self, total_postings: usize) -> usize {
        total_postings * self.zerber_element_bytes()
    }

    /// Total Zerber storage across all `n` servers — the `1.5 n ×`
    /// figure of Section 7.2.
    pub fn zerber_total_bytes(&self, total_postings: usize, n: usize) -> usize {
        self.zerber_server_bytes(total_postings) * n
    }

    /// Storage overhead factor vs an ordinary index.
    pub fn storage_overhead_factor(&self, n: usize) -> f64 {
        self.zerber_element_factor * n as f64
    }

    /// Bytes shipped per query-term response of `elements` posting
    /// elements, per the paper's 64-bit element accounting.
    pub fn response_bytes(&self, elements: usize) -> usize {
        elements * self.plain_element_bytes
    }

    /// Bytes a *baseline* (plaintext) engine ships for the same
    /// response after posting-list compression at `compression_ratio`
    /// (raw/compressed, as measured by the `zerber-postings` codec on
    /// the corpus). Ratios below 1 are clamped: a real stack ships raw
    /// rather than expanded payloads.
    ///
    /// Section 7.3's comparison is only fair if baselines get this
    /// discount while Zerber does not — see
    /// [`SizeModel::zerber_share_response_bytes`].
    pub fn compressed_response_bytes(&self, elements: usize, compression_ratio: f64) -> usize {
        (self.response_bytes(elements) as f64 / compression_ratio.max(1.0)).ceil() as usize
    }

    /// Bytes one Zerber index server ships for a response of
    /// `elements` share elements. Share columns are near-uniform bytes
    /// ("Zerber's element shares are almost random, so standard HTML
    /// compression is ineffective", Section 7.3), so they always go
    /// out raw at the 1.5× Zerber element size.
    pub fn zerber_share_response_bytes(&self, elements: usize) -> usize {
        elements * self.zerber_element_bytes()
    }

    /// Total size of a top-K answer: element payload for the matched
    /// lists plus `k` snippets.
    pub fn topk_response_bytes(&self, elements: usize, k: usize) -> usize {
        self.response_bytes(elements) + k * self.snippet_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zerber_element_is_fifty_percent_bigger() {
        let model = SizeModel::default();
        assert_eq!(model.plain_element_bytes, 8);
        assert_eq!(model.zerber_element_bytes(), 12);
    }

    #[test]
    fn total_storage_is_one_point_five_n() {
        let model = SizeModel::default();
        let postings = 1_000_000;
        let plain = model.plain_index_bytes(postings);
        let zerber3 = model.zerber_total_bytes(postings, 3);
        assert_eq!(zerber3, (plain as f64 * 1.5 * 3.0) as usize);
        assert!((model.storage_overhead_factor(3) - 4.5).abs() < 1e-12);
    }

    #[test]
    fn paper_query_term_response_size() {
        // Section 7.3: "about 2700 elements are returned … per query
        // term … approximately 170 Kb (21.5 KB) per query term".
        let model = SizeModel::default();
        let bytes = model.response_bytes(2_700);
        assert_eq!(bytes, 21_600);
        assert!((bytes as f64 / 1024.0 - 21.1).abs() < 1.0);
    }

    #[test]
    fn paper_top10_response_size() {
        // Section 7.3: 2.45 terms/query × 21.5 KB + 2.5 KB of snippets
        // ≈ 24 KB... the paper's 24 KB figure nets the per-term payload
        // against overlap; our model reproduces the components.
        let model = SizeModel::default();
        let snippets = 10 * model.snippet_bytes;
        assert_eq!(snippets, 2_500);
        let total = model.topk_response_bytes(2_700, 10);
        assert_eq!(total, 21_600 + 2_500);
    }

    #[test]
    fn compressed_accounting_discounts_baselines_only() {
        let model = SizeModel::default();
        // Plaintext postings compress (ratio measured ≫ 1).
        assert_eq!(model.compressed_response_bytes(2_700, 3.0), 7_200);
        // Ratios below 1 (adversarially incompressible data) clamp to
        // raw rather than expanding.
        assert_eq!(model.compressed_response_bytes(1_000, 0.97), 8_000);
        // Zerber share responses never shrink: 1.5× element size, raw.
        assert_eq!(model.zerber_share_response_bytes(2_700), 2_700 * 12);
        assert!(model.zerber_share_response_bytes(2_700) > model.response_bytes(2_700));
    }

    #[test]
    fn engine_reference_sizes_are_the_papers() {
        let model = SizeModel::default();
        let (google, altavista, yahoo) = model.engine_reference_bytes;
        assert_eq!(google, 15 * 1024);
        assert_eq!(altavista, 37 * 1024);
        assert_eq!(yahoo, 59 * 1024);
    }
}
