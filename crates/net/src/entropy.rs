//! Shannon-entropy estimation.
//!
//! Section 7.3: "Zerber's element shares are almost random, so
//! standard HTML compression is ineffective." Rather than pull in a
//! compressor, the experiments demonstrate this with a byte-entropy
//! estimate: uniformly random share bytes approach 8 bits/byte
//! (incompressible), while text sits far lower.

/// Shannon entropy of the byte histogram, in bits per byte.
/// Returns 0 for empty input.
pub fn entropy_bits_per_byte(data: &[u8]) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    let mut counts = [0u64; 256];
    for &byte in data {
        counts[byte as usize] += 1;
    }
    let n = data.len() as f64;
    counts
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let p = c as f64 / n;
            -p * p.log2()
        })
        .sum()
}

/// A crude compressibility proxy: the ratio of the estimated entropy
/// to the 8 bits/byte of the raw encoding. 1.0 ⇒ incompressible.
pub fn incompressibility(data: &[u8]) -> f64 {
    entropy_bits_per_byte(data) / 8.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn empty_input_has_zero_entropy() {
        assert_eq!(entropy_bits_per_byte(&[]), 0.0);
    }

    #[test]
    fn constant_bytes_have_zero_entropy() {
        assert_eq!(entropy_bits_per_byte(&[7u8; 4096]), 0.0);
    }

    #[test]
    fn uniform_random_bytes_approach_eight_bits() {
        let mut rng = StdRng::seed_from_u64(1);
        let data: Vec<u8> = (0..1 << 16).map(|_| rng.random()).collect();
        let entropy = entropy_bits_per_byte(&data);
        assert!(entropy > 7.95, "entropy {entropy}");
        assert!(incompressibility(&data) > 0.99);
    }

    #[test]
    fn english_text_is_compressible() {
        let text = b"the quick brown fox jumps over the lazy dog and the \
                     lazy dog sleeps while the quick brown fox runs away \
                     the end the end the end";
        let entropy = entropy_bits_per_byte(text);
        assert!(entropy < 4.6, "entropy {entropy}");
    }

    #[test]
    fn entropy_is_bounded_by_eight() {
        let data: Vec<u8> = (0..=255u8).collect();
        let entropy = entropy_bits_per_byte(&data);
        assert!((entropy - 8.0).abs() < 1e-9);
    }
}
