//! Length-framed, checksummed transport frames for socket links.
//!
//! [`Message`](crate::Message)s are *payloads*; this module defines the envelope that
//! carries them over a byte stream (TCP or a Unix socket), where the
//! peer reads a raw octet sequence with no record boundaries and no
//! integrity guarantees beyond what we add ourselves. Every frame is
//! length-prefixed and CRC-protected so a reader can (a) reassemble
//! records from arbitrarily split reads and (b) *fail closed* on torn
//! or corrupted input — a damaged frame must surface as a
//! [`FrameError`], never as a silently different decoded value and
//! never as a panic.
//!
//! # Wire layout
//!
//! ```text
//! frame     := len:u32 | body | crc32(body):u32
//!              (len counts body + crc, capped at MAX_FRAME_BODY)
//! body      := kind:u8 | header | payload
//! REQUEST   : kind=1 | id:u64 | from:node | auth:u64 | trace:u64 | payload
//! RESPONSE  : kind=2 | id:u64 | payload
//! node      := tag:u8 (1=User 2=Owner 3=IndexServer) | index:u32
//! payload   := one encoded zerber_net::Message
//! ```
//!
//! `id` correlates a response with its request so one connection can
//! carry many requests concurrently (pipelining): the client stamps a
//! fresh id per RPC and the peer echoes it back. `trace` carries the
//! caller's query-trace id (zero = untraced) so a peer can correlate
//! its work with the client-side span tree even across processes. The
//! frame CRC covers the whole body, so a flipped bit anywhere —
//! header or payload — is detected before `Message::decode` ever sees
//! the bytes.
//!
//! The *accounted* wire bytes of an RPC remain the payload's
//! [`Message::wire_size`](crate::Message::wire_size): framing overhead (17–38 B per frame) plays
//! the role of the envelope in the in-process transport, which the
//! paper's bandwidth model also excludes (it sizes payloads only).

use bytes::{Buf, BufMut};

use crate::bandwidth::NodeId;
use crate::message::AuthToken;

/// Upper bound on one frame's body, rejecting absurd length prefixes
/// (a corrupted or hostile length would otherwise ask the reader to
/// buffer gigabytes before the CRC could fail it).
pub const MAX_FRAME_BODY: usize = 64 << 20;

/// Fixed framing overhead per frame: length prefix + CRC.
pub const FRAME_OVERHEAD: usize = 4 + 4;

const KIND_REQUEST: u8 = 1;
const KIND_RESPONSE: u8 = 2;

const NODE_USER: u8 = 1;
const NODE_OWNER: u8 = 2;
const NODE_SERVER: u8 = 3;

/// Why a frame failed to decode. Every variant is a *closed* failure:
/// the decoder discards the damaged frame and the link layer maps the
/// error to a transport fault instead of trusting any decoded field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// The length prefix exceeds [`MAX_FRAME_BODY`].
    TooLarge(usize),
    /// The body checksum did not match: torn write or bit damage.
    Corrupt,
    /// The body's kind octet is not a known frame kind.
    BadKind(u8),
    /// The body ended before its header was complete, or a node tag
    /// was unknown (the CRC matched, so this is a peer speaking a
    /// different protocol revision, not line noise).
    Malformed,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::TooLarge(len) => write!(f, "frame body of {len} B exceeds the cap"),
            FrameError::Corrupt => write!(f, "frame checksum mismatch"),
            FrameError::BadKind(kind) => write!(f, "unknown frame kind {kind}"),
            FrameError::Malformed => write!(f, "frame header malformed"),
        }
    }
}

impl std::error::Error for FrameError {}

/// One reassembled frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// Client → peer: an RPC request envelope.
    Request {
        /// Correlation id, echoed by the response.
        id: u64,
        /// The calling node (link accounting and reply routing).
        from: NodeId,
        /// The caller's session token.
        auth: AuthToken,
        /// The caller's query-trace id (zero = untraced).
        trace: u64,
        /// Encoded request [`crate::Message`] bytes.
        payload: Vec<u8>,
    },
    /// Peer → client: the response to the request with the same id.
    Response {
        /// Correlation id of the request being answered.
        id: u64,
        /// Encoded response [`crate::Message`] bytes.
        payload: Vec<u8>,
    },
}

impl Frame {
    /// Serializes the frame (length prefix + body + CRC).
    pub fn encode(&self) -> Vec<u8> {
        let mut body = Vec::with_capacity(32 + self.payload().len());
        match self {
            Frame::Request {
                id,
                from,
                auth,
                trace,
                payload,
            } => {
                body.put_u8(KIND_REQUEST);
                body.put_u64(*id);
                put_node(&mut body, *from);
                body.put_u64(auth.0);
                body.put_u64(*trace);
                body.extend_from_slice(payload);
            }
            Frame::Response { id, payload } => {
                body.put_u8(KIND_RESPONSE);
                body.put_u64(*id);
                body.extend_from_slice(payload);
            }
        }
        let mut out = Vec::with_capacity(FRAME_OVERHEAD + body.len());
        out.put_u32((body.len() + 4) as u32);
        let crc = crc32(&body);
        out.extend_from_slice(&body);
        out.put_u32(crc);
        out
    }

    /// The encoded [`crate::Message`] bytes this frame carries.
    pub fn payload(&self) -> &[u8] {
        match self {
            Frame::Request { payload, .. } | Frame::Response { payload, .. } => payload,
        }
    }

    fn decode_body(mut body: &[u8]) -> Result<Frame, FrameError> {
        if body.is_empty() {
            return Err(FrameError::Malformed);
        }
        let kind = body.get_u8();
        match kind {
            KIND_REQUEST => {
                let id = take_u64(&mut body)?;
                let from = take_node(&mut body)?;
                let auth = AuthToken(take_u64(&mut body)?);
                let trace = take_u64(&mut body)?;
                Ok(Frame::Request {
                    id,
                    from,
                    auth,
                    trace,
                    payload: body.to_vec(),
                })
            }
            KIND_RESPONSE => {
                let id = take_u64(&mut body)?;
                Ok(Frame::Response {
                    id,
                    payload: body.to_vec(),
                })
            }
            other => Err(FrameError::BadKind(other)),
        }
    }
}

fn put_node(buffer: &mut Vec<u8>, node: NodeId) {
    let (tag, index) = match node {
        NodeId::User(i) => (NODE_USER, i),
        NodeId::Owner(i) => (NODE_OWNER, i),
        NodeId::IndexServer(i) => (NODE_SERVER, i),
    };
    buffer.put_u8(tag);
    buffer.put_u32(index);
}

fn take_node(buffer: &mut &[u8]) -> Result<NodeId, FrameError> {
    if buffer.remaining() < 5 {
        return Err(FrameError::Malformed);
    }
    let tag = buffer.get_u8();
    let index = buffer.get_u32();
    match tag {
        NODE_USER => Ok(NodeId::User(index)),
        NODE_OWNER => Ok(NodeId::Owner(index)),
        NODE_SERVER => Ok(NodeId::IndexServer(index)),
        _ => Err(FrameError::Malformed),
    }
}

fn take_u64(buffer: &mut &[u8]) -> Result<u64, FrameError> {
    if buffer.remaining() < 8 {
        return Err(FrameError::Malformed);
    }
    Ok(buffer.get_u64())
}

/// Incremental frame reassembly over an arbitrarily chunked byte
/// stream.
///
/// Feed whatever the socket read returned with [`FrameDecoder::push`]
/// and drain complete frames with [`FrameDecoder::next_frame`]; bytes
/// split mid-frame (torn writes, small MTUs, byte-at-a-time reads)
/// reassemble transparently. Any decode error is terminal for the
/// stream: framing is stateful (a bad length prefix loses record
/// alignment for good), so the link layer must drop the connection —
/// which is exactly the fail-closed behavior the property tests pin.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buffer: Vec<u8>,
    /// Consumed prefix of `buffer` (compacted opportunistically).
    consumed: usize,
}

impl FrameDecoder {
    /// An empty decoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends raw stream bytes.
    pub fn push(&mut self, bytes: &[u8]) {
        // Compact before growing: keeps the buffer bounded by one
        // frame plus one read's worth of bytes.
        if self.consumed > 0 && self.consumed == self.buffer.len() {
            self.buffer.clear();
            self.consumed = 0;
        } else if self.consumed > 4096 {
            self.buffer.drain(..self.consumed);
            self.consumed = 0;
        }
        self.buffer.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed by a complete frame.
    pub fn pending_bytes(&self) -> usize {
        self.buffer.len() - self.consumed
    }

    /// Pops the next complete frame, `Ok(None)` if more bytes are
    /// needed, or the terminal [`FrameError`] for this stream.
    pub fn next_frame(&mut self) -> Result<Option<Frame>, FrameError> {
        let pending = &self.buffer[self.consumed..];
        if pending.len() < 4 {
            return Ok(None);
        }
        let framed_len =
            u32::from_be_bytes([pending[0], pending[1], pending[2], pending[3]]) as usize;
        // The length prefix counts body + trailing CRC; reject before
        // buffering anything near the bogus size.
        if framed_len < 4 || framed_len - 4 > MAX_FRAME_BODY {
            return Err(FrameError::TooLarge(framed_len.saturating_sub(4)));
        }
        if pending.len() < 4 + framed_len {
            return Ok(None);
        }
        let body = &pending[4..4 + framed_len - 4];
        let stated = u32::from_be_bytes([
            pending[framed_len],
            pending[framed_len + 1],
            pending[framed_len + 2],
            pending[framed_len + 3],
        ]);
        if crc32(body) != stated {
            return Err(FrameError::Corrupt);
        }
        let frame = Frame::decode_body(body)?;
        self.consumed += 4 + framed_len;
        Ok(Some(frame))
    }
}

/// Lookup table for the reflected CRC-32 polynomial `0xEDB88320`
/// (ISO-HDLC — the same variant `zerber-segment` uses for WAL
/// records), built at compile time.
const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// The CRC-32 of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &byte in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ u32::from(byte)) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request(payload: &[u8]) -> Frame {
        Frame::Request {
            id: 7,
            from: NodeId::User(3),
            auth: AuthToken(0xFEED),
            trace: 0xDECAF,
            payload: payload.to_vec(),
        }
    }

    #[test]
    fn frames_round_trip_whole() {
        for frame in [
            request(b"hello"),
            request(b""),
            Frame::Response {
                id: u64::MAX,
                payload: vec![0u8; 300],
            },
        ] {
            let encoded = frame.encode();
            let mut decoder = FrameDecoder::new();
            decoder.push(&encoded);
            assert_eq!(decoder.next_frame().unwrap().unwrap(), frame);
            assert_eq!(decoder.next_frame().unwrap(), None);
            assert_eq!(decoder.pending_bytes(), 0);
        }
    }

    #[test]
    fn byte_at_a_time_reassembly() {
        let frame = request(b"split me across many reads");
        let encoded = frame.encode();
        let mut decoder = FrameDecoder::new();
        for (i, byte) in encoded.iter().enumerate() {
            decoder.push(std::slice::from_ref(byte));
            let got = decoder.next_frame().unwrap();
            if i + 1 < encoded.len() {
                assert_eq!(got, None, "complete at byte {i} of {}", encoded.len());
            } else {
                assert_eq!(got, Some(frame.clone()));
            }
        }
    }

    #[test]
    fn back_to_back_frames_in_one_push() {
        let a = request(b"first");
        let b = Frame::Response {
            id: 9,
            payload: b"second".to_vec(),
        };
        let mut stream = a.encode();
        stream.extend_from_slice(&b.encode());
        let mut decoder = FrameDecoder::new();
        decoder.push(&stream);
        assert_eq!(decoder.next_frame().unwrap().unwrap(), a);
        assert_eq!(decoder.next_frame().unwrap().unwrap(), b);
        assert_eq!(decoder.next_frame().unwrap(), None);
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let encoded = request(b"integrity").encode();
        for i in 0..encoded.len() {
            for bit in 0..8 {
                let mut damaged = encoded.clone();
                damaged[i] ^= 1 << bit;
                let mut decoder = FrameDecoder::new();
                decoder.push(&damaged);
                // A flipped length prefix may leave the frame
                // "incomplete" (Ok(None)) — also closed. What must
                // never happen is a successfully decoded frame.
                if let Ok(Some(frame)) = decoder.next_frame() {
                    panic!("flip at byte {i} bit {bit} decoded as {frame:?}")
                }
            }
        }
    }

    #[test]
    fn absurd_length_prefix_fails_before_buffering() {
        let mut decoder = FrameDecoder::new();
        decoder.push(&u32::MAX.to_be_bytes());
        assert!(matches!(decoder.next_frame(), Err(FrameError::TooLarge(_))));
    }

    #[test]
    fn crc_known_answer() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn unknown_kind_and_node_fail_closed() {
        // Hand-build a frame with a bogus kind but a valid CRC.
        let body = vec![99u8, 0, 0, 0];
        let mut encoded = Vec::new();
        encoded.extend_from_slice(&((body.len() + 4) as u32).to_be_bytes());
        let crc = crc32(&body);
        encoded.extend_from_slice(&body);
        encoded.extend_from_slice(&crc.to_be_bytes());
        let mut decoder = FrameDecoder::new();
        decoder.push(&encoded);
        assert_eq!(decoder.next_frame(), Err(FrameError::BadKind(99)));
    }
}
