//! Property tests for DHT placement: determinism, replica
//! distinctness, round-trip correctness and bounded per-peer load for
//! random workloads.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use zerber_core::{ElementCodec, PlId, PostingElement};
use zerber_dht::{ConsistentHashRing, DhtIndex, PeerId};
use zerber_index::{DocId, GroupId, TermId};
use zerber_shamir::SharingScheme;

proptest! {
    /// Replica sets are stable under unrelated joins: peers that keep
    /// a key's replica role keep their position deterministically.
    #[test]
    fn replicas_are_deterministic(peers in 3u32..20, key in any::<u64>()) {
        let mut ring = ConsistentHashRing::new(16);
        for p in 0..peers {
            ring.join(PeerId(p));
        }
        prop_assert_eq!(ring.replicas_for(key, 3), ring.replicas_for(key, 3));
        let replicas = ring.replicas_for(key, 3);
        let mut unique = replicas.clone();
        unique.sort_unstable();
        unique.dedup();
        prop_assert_eq!(unique.len(), 3);
    }

    /// Every inserted element is retrievable through its list, and
    /// elements of co-merged terms are filtered out, for random
    /// element batches.
    #[test]
    fn inserted_elements_round_trip(
        elements in prop::collection::vec(
            (0u32..200, 0u32..100, 0u32..50),
            1..40,
        ),
        peers in 4u32..12,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let scheme = SharingScheme::random(2, 3, &mut rng).unwrap();
        let mut dht = DhtIndex::new(peers, scheme, ElementCodec::default());
        let mut per_list: std::collections::HashMap<u32, Vec<(u32, u32)>> =
            std::collections::HashMap::new();
        for (i, &(pl, doc, term)) in elements.iter().enumerate() {
            dht.insert(
                PlId(pl % 8),
                PostingElement {
                    doc: DocId(doc + i as u32 * 1_000), // distinct docs
                    term: TermId(term),
                    tf_quantized: 1,
                },
                GroupId(0),
                &mut rng,
            );
            per_list
                .entry(pl % 8)
                .or_default()
                .push((doc + i as u32 * 1_000, term));
        }
        for (pl, expected) in per_list {
            for &(doc, term) in &expected {
                let hits = dht.query(PlId(pl), &[TermId(term)]);
                prop_assert!(
                    hits.iter().any(|e| e.doc == DocId(doc) && e.term == TermId(term)),
                    "pl {pl} doc {doc} term {term} missing"
                );
                // Nothing of another term leaks through the filter.
                prop_assert!(hits.iter().all(|e| e.term == TermId(term)));
            }
        }
    }

    /// Total stored shares are exactly n per element, and no single
    /// peer holds more than one share of any element.
    #[test]
    fn share_counts_are_exact(
        count in 1usize..60,
        peers in 4u32..10,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let scheme = SharingScheme::random(2, 3, &mut rng).unwrap();
        let mut dht = DhtIndex::new(peers, scheme, ElementCodec::default());
        for i in 0..count {
            dht.insert(
                PlId(i as u32),
                PostingElement {
                    doc: DocId(i as u32),
                    term: TermId(0),
                    tf_quantized: 1,
                },
                GroupId(0),
                &mut rng,
            );
        }
        let stats = dht.stats();
        prop_assert_eq!(stats.total_shares, count * 3);
    }
}
