//! r-Confidential indexing over a DHT — the future-work direction the
//! paper names in Section 3:
//!
//! > "Zerber distributes complete instances of an encrypted index to
//! > multiple servers for security reasons, while in DHTs each peer
//! > typically stores only a fraction of the index. The extension of
//! > r-confidential indexing to a DHT-based infrastructure is an
//! > interesting area for future research."
//!
//! This crate realizes the obvious design point: merged posting lists
//! are placed on a consistent-hash **ring** of peers; the `n` Shamir
//! shares of every element go to the list's `n` *distinct* successor
//! peers. The security argument carries over locally: a peer holds at
//! most one share per element it stores, so any `k-1` colluding peers
//! still learn nothing about element contents, while each peer stores
//! only `~n/P` of the index instead of a full replica.
//!
//! What changes relative to centralized Zerber (and is exercised in
//! the tests):
//!
//! * **storage** drops from `1.5 n ×` per server to `1.5 n / P ×` per
//!   peer in expectation,
//! * **queries** are routed per posting list — a multi-term query may
//!   touch many peers (the DHT trade-off),
//! * **churn**: a joining peer takes over arcs of the ring; new
//!   inserts route to it immediately, and the affected lists can be
//!   migrated share-by-share without decryption (shares are opaque).

pub mod placement;
pub mod ring;
pub mod shard;

pub use placement::{DhtIndex, DhtStats};
pub use ring::{ConsistentHashRing, PeerId};
pub use shard::{ShardMap, ShardMove};
