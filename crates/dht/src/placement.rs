//! Share placement and query routing over the ring.
//!
//! A [`DhtIndex`] owns one [`zerber_server::ShareStore`]
//! per peer. Inserting an element routes its `n` shares to the `n`
//! replica peers of the element's merged posting list; querying a list
//! contacts any `k` of its replicas and reconstructs client-side,
//! exactly like centralized Zerber — the sharing scheme, codec and
//! merge plan are unchanged, only *placement* differs.

use std::collections::HashMap;

use rand::Rng;

use zerber_core::{ElementCodec, ElementId, PlId, PostingElement};
use zerber_field::lagrange_weights_at_zero;
use zerber_index::{GroupId, TermId};
use zerber_net::StoredShare;
use zerber_server::ShareStore;
use zerber_shamir::SharingScheme;

use crate::ring::{ConsistentHashRing, PeerId};

/// Aggregate placement statistics (the DHT-vs-replication comparison).
#[derive(Debug, Clone)]
pub struct DhtStats {
    /// Elements stored per peer.
    pub elements_per_peer: HashMap<PeerId, usize>,
    /// Total element-shares stored across the DHT.
    pub total_shares: usize,
    /// Peers participating.
    pub peers: usize,
}

/// A DHT-distributed r-confidential index.
pub struct DhtIndex {
    ring: ConsistentHashRing,
    stores: HashMap<PeerId, ShareStore>,
    scheme: SharingScheme,
    codec: ElementCodec,
    next_element: u64,
}

impl DhtIndex {
    /// Creates a DHT index over `peers` peers with the given sharing
    /// scheme (its `n` is the replication factor, its `k` the read
    /// quorum).
    ///
    /// # Panics
    /// Panics if there are fewer peers than `n`.
    pub fn new(peers: u32, scheme: SharingScheme, codec: ElementCodec) -> Self {
        assert!(
            peers as usize >= scheme.server_count(),
            "need at least n = {} peers",
            scheme.server_count()
        );
        let mut ring = ConsistentHashRing::new(32);
        let mut stores = HashMap::new();
        for p in 0..peers {
            ring.join(PeerId(p));
            stores.insert(PeerId(p), ShareStore::new());
        }
        Self {
            ring,
            stores,
            scheme,
            codec,
            next_element: 0,
        }
    }

    /// The replica peers responsible for one posting list.
    pub fn replicas_of(&self, pl: PlId) -> Vec<PeerId> {
        self.ring
            .replicas_for(pl.0 as u64, self.scheme.server_count())
    }

    /// Inserts one posting element: encodes, splits, and routes share
    /// `i` to replica `i` of the element's list.
    pub fn insert<R: Rng + ?Sized>(
        &mut self,
        pl: PlId,
        element: PostingElement,
        group: GroupId,
        rng: &mut R,
    ) -> ElementId {
        let secret = self.codec.encode(element).expect("element fits the codec");
        let shares = self.scheme.split(secret, rng);
        let element_id = ElementId(self.next_element);
        self.next_element += 1;
        let replicas = self.replicas_of(pl);
        for (replica, share) in replicas.iter().zip(&shares) {
            self.stores[replica].insert_batch(&[(
                pl,
                StoredShare {
                    element: element_id,
                    group,
                    share: share.y,
                },
            )]);
        }
        element_id
    }

    /// Fetches one merged posting list from `k` of its replicas and
    /// reconstructs the elements that match `wanted` terms (client-side
    /// false-positive filtering, as in Algorithm 2).
    ///
    /// Note: this prototype trusts peers to apply ACL filtering as in
    /// centralized Zerber; the filter hook is the same
    /// [`ShareStore::filtered`] the real server uses.
    pub fn query(&self, pl: PlId, wanted: &[TermId]) -> Vec<PostingElement> {
        let replicas = self.replicas_of(pl);
        let k = self.scheme.threshold();
        let chosen = &replicas[..k];

        // Which scheme coordinate does each replica hold? Share i went
        // to replica i, i.e. coordinate i of the scheme.
        let coordinates: Vec<zerber_field::Fp> =
            (0..k).map(|i| self.scheme.coordinates()[i]).collect();
        let weights = lagrange_weights_at_zero(&coordinates);

        let mut partial: HashMap<ElementId, (zerber_field::Fp, usize)> = HashMap::new();
        for (replica_index, replica) in chosen.iter().enumerate() {
            for share in self.stores[replica].filtered(pl, |_| true) {
                let entry = partial
                    .entry(share.element)
                    .or_insert((zerber_field::Fp::ZERO, 0));
                entry.0 += share.share * weights[replica_index];
                entry.1 += 1;
            }
        }

        let wanted: std::collections::HashSet<TermId> = wanted.iter().copied().collect();
        partial
            .into_values()
            .filter(|&(_, contributions)| contributions == k)
            .filter_map(|(sum, _)| self.codec.decode(sum).ok())
            .filter(|element| wanted.contains(&element.term))
            .collect()
    }

    /// Placement statistics.
    pub fn stats(&self) -> DhtStats {
        let elements_per_peer: HashMap<PeerId, usize> = self
            .stores
            .iter()
            .map(|(&peer, store)| (peer, store.total_elements()))
            .collect();
        DhtStats {
            total_shares: elements_per_peer.values().sum(),
            peers: elements_per_peer.len(),
            elements_per_peer,
        }
    }

    /// A joining peer: extends the ring; subsequently inserted lists
    /// may route to it. (Migration of existing arcs is share-by-share
    /// opaque copying and is out of scope for the prototype.)
    pub fn join(&mut self, peer: PeerId) -> bool {
        if self.stores.contains_key(&peer) {
            return false;
        }
        self.ring.join(peer);
        self.stores.insert(peer, ShareStore::new());
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use zerber_index::DocId;

    fn index(peers: u32) -> (DhtIndex, StdRng) {
        let mut rng = StdRng::seed_from_u64(1);
        let scheme = SharingScheme::random(2, 3, &mut rng).unwrap();
        (DhtIndex::new(peers, scheme, ElementCodec::default()), rng)
    }

    fn element(doc: u32, term: u32) -> PostingElement {
        PostingElement {
            doc: DocId(doc),
            term: TermId(term),
            tf_quantized: 100,
        }
    }

    #[test]
    fn insert_then_query_round_trips() {
        let (mut dht, mut rng) = index(8);
        dht.insert(PlId(5), element(1, 10), GroupId(0), &mut rng);
        dht.insert(PlId(5), element(2, 10), GroupId(0), &mut rng);
        dht.insert(PlId(5), element(3, 99), GroupId(0), &mut rng); // co-merged term
        let results = dht.query(PlId(5), &[TermId(10)]);
        let mut docs: Vec<u32> = results.iter().map(|e| e.doc.0).collect();
        docs.sort_unstable();
        assert_eq!(docs, vec![1, 2], "false positives filtered");
    }

    #[test]
    fn shares_land_on_n_distinct_peers() {
        let (mut dht, mut rng) = index(10);
        dht.insert(PlId(7), element(1, 1), GroupId(0), &mut rng);
        let stats = dht.stats();
        let holders: Vec<_> = stats
            .elements_per_peer
            .iter()
            .filter(|(_, &count)| count > 0)
            .collect();
        assert_eq!(holders.len(), 3, "n = 3 replicas hold one share each");
        assert_eq!(stats.total_shares, 3);
    }

    #[test]
    fn each_peer_stores_a_fraction_of_the_index() {
        // The Section-3 contrast: centralized Zerber replicates the
        // whole index on every server; the DHT spreads it.
        let (mut dht, mut rng) = index(12);
        let lists = 200u32;
        for pl in 0..lists {
            dht.insert(PlId(pl), element(pl, pl), GroupId(0), &mut rng);
        }
        let stats = dht.stats();
        assert_eq!(stats.total_shares, 3 * lists as usize);
        let max_per_peer = stats.elements_per_peer.values().max().copied().unwrap();
        assert!(
            max_per_peer < lists as usize,
            "no peer holds a full replica ({max_per_peer} of {lists})"
        );
    }

    #[test]
    fn queries_touch_only_the_lists_replicas() {
        let (mut dht, mut rng) = index(10);
        dht.insert(PlId(1), element(1, 1), GroupId(0), &mut rng);
        let replicas = dht.replicas_of(PlId(1));
        assert_eq!(replicas.len(), 3);
        // Elements are only on those peers.
        for (peer, count) in dht.stats().elements_per_peer {
            if count > 0 {
                assert!(replicas.contains(&peer));
            }
        }
    }

    #[test]
    fn joined_peer_receives_future_load() {
        let (mut dht, mut rng) = index(4);
        assert!(dht.join(PeerId(100)));
        assert!(!dht.join(PeerId(100)));
        for pl in 0..400u32 {
            dht.insert(PlId(pl), element(pl, pl), GroupId(0), &mut rng);
        }
        let stats = dht.stats();
        assert!(
            stats.elements_per_peer[&PeerId(100)] > 0,
            "new peer takes over part of the ring"
        );
    }

    #[test]
    #[should_panic(expected = "need at least n")]
    fn too_few_peers_panics() {
        let mut rng = StdRng::seed_from_u64(2);
        let scheme = SharingScheme::random(2, 3, &mut rng).unwrap();
        let _ = DhtIndex::new(2, scheme, ElementCodec::default());
    }
}
