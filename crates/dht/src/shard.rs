//! Document sharding over the consistent-hash ring.
//!
//! The peer runtime partitions a collection *by document*: every
//! document's postings live on exactly one peer, so a peer can rank
//! its shard locally (each candidate's full score is computable from
//! one shard) and the gather stage merges disjoint candidate sets.
//! Placement reuses the same [`ConsistentHashRing`] that places
//! posting-list share replicas, so peer joins relocate only `~1/(P+1)`
//! of the documents.

use zerber_index::DocId;

use crate::ring::{ConsistentHashRing, PeerId};

/// Virtual ring points per peer (matches the share-placement ring).
const VIRTUAL_NODES: u32 = 32;

/// A deterministic document → peer assignment over `P` peers.
#[derive(Debug, Clone)]
pub struct ShardMap {
    ring: ConsistentHashRing,
    peers: u32,
}

impl ShardMap {
    /// A map over peers `0..peers`.
    ///
    /// # Panics
    /// Panics if `peers == 0`.
    pub fn new(peers: u32) -> Self {
        assert!(peers > 0, "need at least one peer");
        let mut ring = ConsistentHashRing::new(VIRTUAL_NODES);
        for p in 0..peers {
            ring.join(PeerId(p));
        }
        Self { ring, peers }
    }

    /// Number of peers in the map.
    pub fn peer_count(&self) -> u32 {
        self.peers
    }

    /// The peer that owns an arbitrary 64-bit key.
    pub fn shard_of_key(&self, key: u64) -> PeerId {
        self.ring.replicas_for(key, 1)[0]
    }

    /// The peer that owns a document (and all of its postings).
    pub fn shard_of(&self, doc: DocId) -> PeerId {
        self.shard_of_key(u64::from(doc.0))
    }

    /// Splits a document set into per-peer shards, indexed by peer id.
    pub fn partition<T: Clone>(&self, docs: &[T], id_of: impl Fn(&T) -> DocId) -> Vec<Vec<T>> {
        let mut shards: Vec<Vec<T>> = vec![Vec::new(); self.peers as usize];
        for doc in docs {
            shards[self.shard_of(id_of(doc)).0 as usize].push(doc.clone());
        }
        shards
    }

    /// The peers hosting copies of logical shard `shard` under
    /// `replicas`-fold replication: the shard's home peer plus its
    /// successors on the peer-id cycle (chord-style successor lists —
    /// the same scheme Section 6 uses for posting-list share
    /// replicas). Replication degrees beyond the peer count clamp to
    /// one copy per peer.
    ///
    /// # Panics
    /// Panics if `replicas == 0` or `shard` is not a valid peer id.
    pub fn replica_peers(&self, shard: u32, replicas: u32) -> Vec<PeerId> {
        assert!(replicas > 0, "need at least one replica");
        assert!(shard < self.peers, "shard {shard} out of range");
        (0..replicas.min(self.peers))
            .map(|j| PeerId((shard + j) % self.peers))
            .collect()
    }

    /// The logical shards `peer` hosts under `replicas`-fold
    /// replication: its own shard plus its predecessors' — the exact
    /// inverse of [`ShardMap::replica_peers`].
    ///
    /// # Panics
    /// Panics if `replicas == 0` or `peer` is not a valid peer id.
    pub fn hosted_shards(&self, peer: u32, replicas: u32) -> Vec<u32> {
        assert!(replicas > 0, "need at least one replica");
        assert!(peer < self.peers, "peer {peer} out of range");
        (0..replicas.min(self.peers))
            .map(|j| (peer + self.peers - j) % self.peers)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_document_lands_on_exactly_one_peer() {
        let map = ShardMap::new(5);
        let docs: Vec<DocId> = (0..500).map(DocId).collect();
        let shards = map.partition(&docs, |&d| d);
        assert_eq!(shards.len(), 5);
        assert_eq!(shards.iter().map(Vec::len).sum::<usize>(), 500);
        for (peer, shard) in shards.iter().enumerate() {
            for &doc in shard {
                assert_eq!(map.shard_of(doc), PeerId(peer as u32));
            }
        }
    }

    #[test]
    fn single_peer_owns_everything() {
        let map = ShardMap::new(1);
        for d in 0..100 {
            assert_eq!(map.shard_of(DocId(d)), PeerId(0));
        }
    }

    #[test]
    fn load_is_roughly_balanced() {
        let map = ShardMap::new(8);
        let docs: Vec<DocId> = (0..8_000).map(DocId).collect();
        let shards = map.partition(&docs, |&d| d);
        let expected = 1_000usize;
        for (peer, shard) in shards.iter().enumerate() {
            assert!(
                shard.len() > expected / 3 && shard.len() < expected * 3,
                "peer {peer} owns {} of 8000 docs",
                shard.len()
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least one peer")]
    fn zero_peers_panics() {
        let _ = ShardMap::new(0);
    }

    #[test]
    fn replica_sets_are_successor_runs() {
        let map = ShardMap::new(5);
        assert_eq!(
            map.replica_peers(3, 3),
            vec![PeerId(3), PeerId(4), PeerId(0)]
        );
        assert_eq!(map.replica_peers(0, 1), vec![PeerId(0)]);
        // Over-replication clamps to one copy per peer.
        assert_eq!(map.replica_peers(2, 9).len(), 5);
    }

    #[test]
    fn hosted_shards_inverts_replica_peers() {
        for peers in 1..7u32 {
            let map = ShardMap::new(peers);
            for replicas in 1..=peers + 2 {
                for shard in 0..peers {
                    for peer in map.replica_peers(shard, replicas) {
                        assert!(
                            map.hosted_shards(peer.0, replicas).contains(&shard),
                            "peer {peer:?} hosts a replica of shard {shard} \
                             but hosted_shards omits it (P={peers}, R={replicas})"
                        );
                    }
                }
                // Total copies = shards × effective replication.
                let copies: usize = (0..peers)
                    .map(|p| map.hosted_shards(p, replicas).len())
                    .sum();
                assert_eq!(copies as u32, peers * replicas.min(peers));
            }
        }
    }
}
