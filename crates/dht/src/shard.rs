//! Document sharding over the consistent-hash ring.
//!
//! The peer runtime partitions a collection *by document*: every
//! document's postings live on exactly one peer, so a peer can rank
//! its shard locally (each candidate's full score is computable from
//! one shard) and the gather stage merges disjoint candidate sets.
//! Placement reuses the same [`ConsistentHashRing`] that places
//! posting-list share replicas, so peer joins relocate only `~1/(P+1)`
//! of the documents.

use zerber_index::DocId;

use crate::ring::{ConsistentHashRing, PeerId};

/// Virtual ring points per peer (matches the share-placement ring).
const VIRTUAL_NODES: u32 = 32;

/// A deterministic document → peer assignment over `P` peers.
#[derive(Debug, Clone)]
pub struct ShardMap {
    ring: ConsistentHashRing,
    peers: u32,
}

impl ShardMap {
    /// A map over peers `0..peers`.
    ///
    /// # Panics
    /// Panics if `peers == 0`.
    pub fn new(peers: u32) -> Self {
        assert!(peers > 0, "need at least one peer");
        let mut ring = ConsistentHashRing::new(VIRTUAL_NODES);
        for p in 0..peers {
            ring.join(PeerId(p));
        }
        Self { ring, peers }
    }

    /// Number of peers in the map.
    pub fn peer_count(&self) -> u32 {
        self.peers
    }

    /// The peer that owns an arbitrary 64-bit key.
    pub fn shard_of_key(&self, key: u64) -> PeerId {
        self.ring.replicas_for(key, 1)[0]
    }

    /// The peer that owns a document (and all of its postings).
    pub fn shard_of(&self, doc: DocId) -> PeerId {
        self.shard_of_key(u64::from(doc.0))
    }

    /// Splits a document set into per-peer shards, indexed by peer id.
    pub fn partition<T: Clone>(&self, docs: &[T], id_of: impl Fn(&T) -> DocId) -> Vec<Vec<T>> {
        let mut shards: Vec<Vec<T>> = vec![Vec::new(); self.peers as usize];
        for doc in docs {
            shards[self.shard_of(id_of(doc)).0 as usize].push(doc.clone());
        }
        shards
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_document_lands_on_exactly_one_peer() {
        let map = ShardMap::new(5);
        let docs: Vec<DocId> = (0..500).map(DocId).collect();
        let shards = map.partition(&docs, |&d| d);
        assert_eq!(shards.len(), 5);
        assert_eq!(shards.iter().map(Vec::len).sum::<usize>(), 500);
        for (peer, shard) in shards.iter().enumerate() {
            for &doc in shard {
                assert_eq!(map.shard_of(doc), PeerId(peer as u32));
            }
        }
    }

    #[test]
    fn single_peer_owns_everything() {
        let map = ShardMap::new(1);
        for d in 0..100 {
            assert_eq!(map.shard_of(DocId(d)), PeerId(0));
        }
    }

    #[test]
    fn load_is_roughly_balanced() {
        let map = ShardMap::new(8);
        let docs: Vec<DocId> = (0..8_000).map(DocId).collect();
        let shards = map.partition(&docs, |&d| d);
        let expected = 1_000usize;
        for (peer, shard) in shards.iter().enumerate() {
            assert!(
                shard.len() > expected / 3 && shard.len() < expected * 3,
                "peer {peer} owns {} of 8000 docs",
                shard.len()
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least one peer")]
    fn zero_peers_panics() {
        let _ = ShardMap::new(0);
    }
}
