//! Document sharding over the consistent-hash ring.
//!
//! The peer runtime partitions a collection *by document*: every
//! document's postings live on exactly one logical shard, so a peer
//! can rank its shard locally (each candidate's full score is
//! computable from one shard) and the gather stage merges disjoint
//! candidate sets. Placement reuses the same [`ConsistentHashRing`]
//! that places posting-list share replicas.
//!
//! Since PR 10 the map separates *logical shards* (fixed at launch;
//! the unit documents hash onto) from *live peers* (which may join and
//! leave): `home[shard]` names the peer holding the shard's primary
//! copy, and replication walks the live-peer successor cycle from
//! there. A membership change therefore never re-partitions documents
//! — it only moves whole shard assignments, which is exactly what
//! makes segment-directory shipping the migration unit.

use zerber_index::DocId;

use crate::ring::{ConsistentHashRing, PeerId};

/// Virtual ring points per peer (matches the share-placement ring).
const VIRTUAL_NODES: u32 = 32;

/// One shard whose replica set changes under a join/leave transition:
/// the peers that must *gain* a copy (by migration from a current
/// replica), the peers that stop hosting one, and the surviving
/// replicas a copy can be shipped from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardMove {
    /// The logical shard whose placement changes.
    pub shard: u32,
    /// Replicas under the *old* assignment — valid migration sources.
    pub sources: Vec<PeerId>,
    /// Peers that host a copy under the new assignment but not the
    /// old: each needs the shard shipped to it before cutover.
    pub gained: Vec<PeerId>,
    /// Peers that hosted a copy under the old assignment but no longer
    /// do (their directories become garbage after cutover).
    pub dropped: Vec<PeerId>,
}

/// A deterministic document → shard assignment over a fixed set of
/// logical shards, plus the live shard → peer placement.
#[derive(Debug, Clone)]
pub struct ShardMap {
    ring: ConsistentHashRing,
    /// Logical shard count, fixed at construction.
    shards: u32,
    /// Live peer ids, sorted ascending. Initially `0..shards`.
    peers: Vec<u32>,
    /// `home[shard]` = the peer holding the shard's primary copy.
    home: Vec<u32>,
}

impl ShardMap {
    /// A map of `peers` logical shards over peers `0..peers` (the
    /// launch-time identity assignment: shard `s` homes on peer `s`).
    ///
    /// # Panics
    /// Panics if `peers == 0`.
    pub fn new(peers: u32) -> Self {
        assert!(peers > 0, "need at least one peer");
        let mut ring = ConsistentHashRing::new(VIRTUAL_NODES);
        for p in 0..peers {
            ring.join(PeerId(p));
        }
        Self {
            ring,
            shards: peers,
            peers: (0..peers).collect(),
            home: (0..peers).collect(),
        }
    }

    /// Number of live peers in the map.
    pub fn peer_count(&self) -> u32 {
        self.peers.len() as u32
    }

    /// Number of logical shards (fixed at construction).
    pub fn shard_count(&self) -> u32 {
        self.shards
    }

    /// The live peer ids, sorted ascending.
    pub fn peer_ids(&self) -> &[u32] {
        &self.peers
    }

    /// Whether `peer` is a live member of the map.
    pub fn contains_peer(&self, peer: u32) -> bool {
        self.peers.binary_search(&peer).is_ok()
    }

    /// The shard that owns an arbitrary 64-bit key.
    pub fn shard_of_key(&self, key: u64) -> PeerId {
        self.ring.replicas_for(key, 1)[0]
    }

    /// The shard that owns a document (and all of its postings).
    pub fn shard_of(&self, doc: DocId) -> PeerId {
        self.shard_of_key(u64::from(doc.0))
    }

    /// Splits a document set into per-shard groups, indexed by shard.
    pub fn partition<T: Clone>(&self, docs: &[T], id_of: impl Fn(&T) -> DocId) -> Vec<Vec<T>> {
        let mut shards: Vec<Vec<T>> = vec![Vec::new(); self.shards as usize];
        for doc in docs {
            shards[self.shard_of(id_of(doc)).0 as usize].push(doc.clone());
        }
        shards
    }

    /// The peers hosting copies of logical shard `shard` under
    /// `replicas`-fold replication: the shard's home peer plus its
    /// successors on the live-peer cycle (chord-style successor lists —
    /// the same scheme Section 6 uses for posting-list share
    /// replicas). Replication degrees beyond the peer count clamp to
    /// one copy per peer.
    ///
    /// # Panics
    /// Panics if `replicas == 0` or `shard` is not a valid shard id.
    pub fn replica_peers(&self, shard: u32, replicas: u32) -> Vec<PeerId> {
        assert!(replicas > 0, "need at least one replica");
        assert!(shard < self.shards, "shard {shard} out of range");
        let live = self.peers.len() as u32;
        let pos = self
            .peers
            .binary_search(&self.home[shard as usize])
            .expect("every shard homes on a live peer");
        (0..replicas.min(live))
            .map(|j| PeerId(self.peers[(pos + j as usize) % self.peers.len()]))
            .collect()
    }

    /// The logical shards `peer` hosts under `replicas`-fold
    /// replication — the exact inverse of [`ShardMap::replica_peers`].
    ///
    /// # Panics
    /// Panics if `replicas == 0` or `peer` is not a live peer.
    pub fn hosted_shards(&self, peer: u32, replicas: u32) -> Vec<u32> {
        assert!(replicas > 0, "need at least one replica");
        assert!(self.contains_peer(peer), "peer {peer} not in the map");
        (0..self.shards)
            .filter(|&shard| self.replica_peers(shard, replicas).contains(&PeerId(peer)))
            .collect()
    }

    /// Admits `peer` to the map and rebalances shard homes onto it,
    /// returning every shard whose `replicas`-fold placement changed
    /// (the migration work list). Deterministic: the most-loaded peer
    /// cedes its lowest-numbered shard, repeatedly, until the joiner
    /// holds its fair share `⌈shards / peers⌉` of primaries — the
    /// ceiling, so a joiner always takes over real work even when
    /// peers outnumber shards.
    ///
    /// The map mutates immediately; callers own the cutover discipline
    /// (keep serving from a clone of the old map until every
    /// [`ShardMove::gained`] copy is installed).
    ///
    /// # Panics
    /// Panics if `peer` is already a member or `replicas == 0`.
    pub fn join(&mut self, peer: u32, replicas: u32) -> Vec<ShardMove> {
        assert!(!self.contains_peer(peer), "peer {peer} already joined");
        let old = self.snapshot_placement(replicas);
        let at = self.peers.binary_search(&peer).unwrap_err();
        self.peers.insert(at, peer);
        let fair = (self.shards as usize).div_ceil(self.peers.len());
        while self.primaries_of(peer) < fair {
            let donor = self.most_loaded_peer_except(peer);
            let shard = self
                .home
                .iter()
                .position(|&h| h == donor)
                .expect("donor holds a primary");
            self.home[shard] = peer;
        }
        self.diff_placement(&old, replicas)
    }

    /// Removes `peer` from the map, re-homing its shards onto the
    /// least-loaded survivors, and returns every shard whose
    /// `replicas`-fold placement changed. Like [`ShardMap::join`], the
    /// map mutates immediately and the returned [`ShardMove`]s name
    /// the copies that must ship before cutover ([`ShardMove::sources`]
    /// still lists the leaving peer — a graceful leaver is a valid
    /// migration source until it is shut down).
    ///
    /// # Panics
    /// Panics if `peer` is not a member, it is the last peer, or
    /// `replicas == 0`.
    pub fn leave(&mut self, peer: u32, replicas: u32) -> Vec<ShardMove> {
        assert!(self.peers.len() > 1, "cannot remove the last peer");
        let old = self.snapshot_placement(replicas);
        let at = self
            .peers
            .binary_search(&peer)
            .unwrap_or_else(|_| panic!("peer {peer} not in the map"));
        self.peers.remove(at);
        for shard in 0..self.shards as usize {
            if self.home[shard] == peer {
                let target = self.least_loaded_peer();
                self.home[shard] = target;
            }
        }
        self.diff_placement(&old, replicas)
    }

    fn primaries_of(&self, peer: u32) -> usize {
        self.home.iter().filter(|&&h| h == peer).count()
    }

    fn most_loaded_peer_except(&self, except: u32) -> u32 {
        *self
            .peers
            .iter()
            .filter(|&&p| p != except)
            .max_by_key(|&&p| (self.primaries_of(p), std::cmp::Reverse(p)))
            .expect("at least one other peer")
    }

    fn least_loaded_peer(&self) -> u32 {
        *self
            .peers
            .iter()
            .min_by_key(|&&p| (self.primaries_of(p), p))
            .expect("at least one peer")
    }

    fn snapshot_placement(&self, replicas: u32) -> Vec<Vec<PeerId>> {
        (0..self.shards)
            .map(|shard| self.replica_peers(shard, replicas))
            .collect()
    }

    fn diff_placement(&self, old: &[Vec<PeerId>], replicas: u32) -> Vec<ShardMove> {
        (0..self.shards)
            .filter_map(|shard| {
                let before = &old[shard as usize];
                let after = self.replica_peers(shard, replicas);
                let gained: Vec<PeerId> = after
                    .iter()
                    .filter(|p| !before.contains(p))
                    .copied()
                    .collect();
                let dropped: Vec<PeerId> = before
                    .iter()
                    .filter(|p| !after.contains(p))
                    .copied()
                    .collect();
                (!gained.is_empty() || !dropped.is_empty()).then(|| ShardMove {
                    shard,
                    sources: before.clone(),
                    gained,
                    dropped,
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_document_lands_on_exactly_one_peer() {
        let map = ShardMap::new(5);
        let docs: Vec<DocId> = (0..500).map(DocId).collect();
        let shards = map.partition(&docs, |&d| d);
        assert_eq!(shards.len(), 5);
        assert_eq!(shards.iter().map(Vec::len).sum::<usize>(), 500);
        for (peer, shard) in shards.iter().enumerate() {
            for &doc in shard {
                assert_eq!(map.shard_of(doc), PeerId(peer as u32));
            }
        }
    }

    #[test]
    fn single_peer_owns_everything() {
        let map = ShardMap::new(1);
        for d in 0..100 {
            assert_eq!(map.shard_of(DocId(d)), PeerId(0));
        }
    }

    #[test]
    fn load_is_roughly_balanced() {
        let map = ShardMap::new(8);
        let docs: Vec<DocId> = (0..8_000).map(DocId).collect();
        let shards = map.partition(&docs, |&d| d);
        let expected = 1_000usize;
        for (peer, shard) in shards.iter().enumerate() {
            assert!(
                shard.len() > expected / 3 && shard.len() < expected * 3,
                "peer {peer} owns {} of 8000 docs",
                shard.len()
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least one peer")]
    fn zero_peers_panics() {
        let _ = ShardMap::new(0);
    }

    #[test]
    fn replica_sets_are_successor_runs() {
        let map = ShardMap::new(5);
        assert_eq!(
            map.replica_peers(3, 3),
            vec![PeerId(3), PeerId(4), PeerId(0)]
        );
        assert_eq!(map.replica_peers(0, 1), vec![PeerId(0)]);
        // Over-replication clamps to one copy per peer.
        assert_eq!(map.replica_peers(2, 9).len(), 5);
    }

    #[test]
    fn hosted_shards_inverts_replica_peers() {
        for peers in 1..7u32 {
            let map = ShardMap::new(peers);
            for replicas in 1..=peers + 2 {
                for shard in 0..peers {
                    for peer in map.replica_peers(shard, replicas) {
                        assert!(
                            map.hosted_shards(peer.0, replicas).contains(&shard),
                            "peer {peer:?} hosts a replica of shard {shard} \
                             but hosted_shards omits it (P={peers}, R={replicas})"
                        );
                    }
                }
                // Total copies = shards × effective replication.
                let copies: usize = (0..peers)
                    .map(|p| map.hosted_shards(p, replicas).len())
                    .sum();
                assert_eq!(copies as u32, peers * replicas.min(peers));
            }
        }
    }

    #[test]
    fn join_rebalances_and_reports_exact_moves() {
        for replicas in 1..3u32 {
            let mut map = ShardMap::new(4);
            let before: Vec<Vec<PeerId>> = (0..4).map(|s| map.replica_peers(s, replicas)).collect();
            let moves = map.join(9, replicas);
            assert_eq!(map.peer_count(), 5);
            assert_eq!(map.shard_count(), 4, "shards never re-partition");
            assert!(map.contains_peer(9));
            // The joiner took over some hosting.
            assert!(
                moves.iter().any(|m| m.gained.contains(&PeerId(9))),
                "R={replicas}: joiner gained nothing: {moves:?}"
            );
            for m in &moves {
                // Every move's source list is the old replica set.
                assert_eq!(m.sources, before[m.shard as usize]);
                // Gains and drops are disjoint and real.
                for g in &m.gained {
                    assert!(!m.sources.contains(g));
                    assert!(map.replica_peers(m.shard, replicas).contains(g));
                }
                for d in &m.dropped {
                    assert!(m.sources.contains(d));
                    assert!(!map.replica_peers(m.shard, replicas).contains(d));
                }
            }
            // Shards not in the move list kept their placement.
            let moved: Vec<u32> = moves.iter().map(|m| m.shard).collect();
            for shard in 0..4 {
                if !moved.contains(&shard) {
                    assert_eq!(map.replica_peers(shard, replicas), before[shard as usize]);
                }
            }
        }
    }

    #[test]
    fn leave_rehomes_every_shard_and_keeps_coverage() {
        for replicas in 1..3u32 {
            let mut map = ShardMap::new(4);
            let moves = map.leave(1, replicas);
            assert_eq!(map.peer_count(), 3);
            assert!(!map.contains_peer(1));
            // No shard is ever homed on (or replicated to) the leaver.
            for shard in 0..4 {
                let set = map.replica_peers(shard, replicas);
                assert!(!set.contains(&PeerId(1)), "R={replicas} shard {shard}");
                assert_eq!(set.len() as u32, replicas.min(3));
            }
            // The leaver appears as a dropped host somewhere, and every
            // move still names it as a valid (pre-shutdown) source.
            assert!(moves
                .iter()
                .any(|m| m.dropped.contains(&PeerId(1)) || m.sources.contains(&PeerId(1))));
        }
    }

    #[test]
    fn join_then_leave_round_trips_placement() {
        let mut map = ShardMap::new(4);
        let reference = ShardMap::new(4);
        map.join(7, 2);
        map.leave(7, 2);
        // The rebalance heuristic may leave a different (but valid)
        // home permutation; coverage and inversion must still hold.
        for shard in 0..4 {
            assert_eq!(map.replica_peers(shard, 2).len(), 2);
        }
        let copies: usize = map
            .peer_ids()
            .to_vec()
            .iter()
            .map(|&p| map.hosted_shards(p, 2).len())
            .sum();
        let expected: usize = reference
            .peer_ids()
            .iter()
            .map(|&p| reference.hosted_shards(p, 2).len())
            .sum();
        assert_eq!(copies, expected);
    }

    #[test]
    #[should_panic(expected = "already joined")]
    fn double_join_panics() {
        let mut map = ShardMap::new(3);
        map.join(1, 1);
    }

    #[test]
    #[should_panic(expected = "cannot remove the last peer")]
    fn removing_the_last_peer_panics() {
        let mut map = ShardMap::new(1);
        map.leave(0, 1);
    }
}
