//! A consistent-hash ring with virtual nodes.
//!
//! Posting-list ids hash onto a 64-bit ring; each physical peer owns
//! several virtual points so load stays balanced. A key's replica set
//! is its first `n` *distinct* physical successors — the peers that
//! will hold the n Shamir shares.

use std::collections::BTreeMap;

/// A physical peer in the DHT.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PeerId(pub u32);

/// Consistent-hash ring mapping keys to peer replica sets.
#[derive(Debug, Clone, Default)]
pub struct ConsistentHashRing {
    /// Ring position -> physical peer.
    points: BTreeMap<u64, PeerId>,
    virtual_nodes: u32,
    peer_count: usize,
}

fn mix(key: u64, salt: u64) -> u64 {
    let mut state = key ^ salt.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    zerber_field::splitmix64(&mut state)
}

impl ConsistentHashRing {
    /// An empty ring placing `virtual_nodes` points per peer.
    ///
    /// # Panics
    /// Panics if `virtual_nodes == 0`.
    pub fn new(virtual_nodes: u32) -> Self {
        assert!(virtual_nodes > 0, "need at least one virtual node");
        Self {
            points: BTreeMap::new(),
            virtual_nodes,
            peer_count: 0,
        }
    }

    /// Adds a peer; returns false if it already exists.
    pub fn join(&mut self, peer: PeerId) -> bool {
        if self.contains(peer) {
            return false;
        }
        for v in 0..self.virtual_nodes {
            let position = mix(((peer.0 as u64) << 32) | v as u64, 0xD47);
            self.points.insert(position, peer);
        }
        self.peer_count += 1;
        true
    }

    /// Removes a peer; returns false if unknown.
    pub fn leave(&mut self, peer: PeerId) -> bool {
        let before = self.points.len();
        self.points.retain(|_, &mut p| p != peer);
        let removed = self.points.len() != before;
        if removed {
            self.peer_count -= 1;
        }
        removed
    }

    /// Whether the peer is on the ring.
    pub fn contains(&self, peer: PeerId) -> bool {
        self.points.values().any(|&p| p == peer)
    }

    /// Number of physical peers.
    pub fn peer_count(&self) -> usize {
        self.peer_count
    }

    /// The first `replicas` distinct physical successors of `key` on
    /// the ring (clockwise, wrapping).
    ///
    /// # Panics
    /// Panics if the ring has fewer than `replicas` peers.
    pub fn replicas_for(&self, key: u64, replicas: usize) -> Vec<PeerId> {
        assert!(
            self.peer_count >= replicas,
            "ring has {} peers, need {replicas}",
            self.peer_count
        );
        let position = mix(key, 0x2E8B);
        let mut chosen: Vec<PeerId> = Vec::with_capacity(replicas);
        for (_, &peer) in self
            .points
            .range(position..)
            .chain(self.points.range(..position))
        {
            if !chosen.contains(&peer) {
                chosen.push(peer);
                if chosen.len() == replicas {
                    break;
                }
            }
        }
        chosen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring_of(n: u32) -> ConsistentHashRing {
        let mut ring = ConsistentHashRing::new(32);
        for p in 0..n {
            ring.join(PeerId(p));
        }
        ring
    }

    #[test]
    fn join_and_leave_round_trip() {
        let mut ring = ConsistentHashRing::new(8);
        assert!(ring.join(PeerId(1)));
        assert!(!ring.join(PeerId(1)), "double join rejected");
        assert_eq!(ring.peer_count(), 1);
        assert!(ring.leave(PeerId(1)));
        assert!(!ring.leave(PeerId(1)));
        assert_eq!(ring.peer_count(), 0);
    }

    #[test]
    fn replica_sets_are_distinct_and_deterministic() {
        let ring = ring_of(10);
        for key in 0..200u64 {
            let a = ring.replicas_for(key, 3);
            let b = ring.replicas_for(key, 3);
            assert_eq!(a, b, "deterministic");
            let mut unique = a.clone();
            unique.sort_unstable();
            unique.dedup();
            assert_eq!(unique.len(), 3, "distinct physical peers");
        }
    }

    #[test]
    fn load_is_roughly_balanced() {
        let ring = ring_of(8);
        let mut primary_load = [0usize; 8];
        let keys = 8_000u64;
        for key in 0..keys {
            primary_load[ring.replicas_for(key, 1)[0].0 as usize] += 1;
        }
        let expected = keys as usize / 8;
        for (peer, &load) in primary_load.iter().enumerate() {
            assert!(
                load > expected / 3 && load < expected * 3,
                "peer {peer} owns {load} of {keys} keys"
            );
        }
    }

    #[test]
    fn join_only_moves_a_fraction_of_keys() {
        // The consistent-hashing property: adding one peer to P peers
        // relocates ~1/(P+1) of the primary assignments.
        let before = ring_of(10);
        let mut after = ring_of(10);
        after.join(PeerId(99));
        let keys = 5_000u64;
        let moved = (0..keys)
            .filter(|&k| before.replicas_for(k, 1) != after.replicas_for(k, 1))
            .count();
        let fraction = moved as f64 / keys as f64;
        assert!(
            fraction < 0.30,
            "join moved {:.0}% of keys (expected ~9%)",
            fraction * 100.0
        );
        assert!(fraction > 0.01, "a new peer must take over some keys");
    }

    #[test]
    #[should_panic(expected = "need 3")]
    fn too_few_peers_panics() {
        let ring = ring_of(2);
        let _ = ring.replicas_for(1, 3);
    }
}
