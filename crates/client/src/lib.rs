//! Zerber clients: the document-owner daemon and the querying user.
//!
//! Section 5.4 of the paper describes both sides:
//!
//! * **Indexing a document** (5.4.1): the owner parses the document,
//!   builds one posting element per distinct term, encrypts each with
//!   Algorithm 1a, assigns a global element id, and ships one share to
//!   each of the n servers — optionally *batched* across documents so
//!   an adversary watching a compromised server cannot correlate the
//!   elements of one document.
//! * **Processing queries** (5.4.2, Algorithm 2): the user maps her
//!   query terms to merged posting-list ids, fetches the accessible
//!   share sets from k servers, aligns shares by global element id,
//!   decrypts with Algorithm 1b, filters out false positives (elements
//!   of co-merged terms), ranks locally with a threshold algorithm,
//!   and finally pulls snippets from the hosting peers.
//!
//! Modules: [`transport`] (the narrow server interface), [`owner`],
//! [`batching`], [`query`], [`ranking`], [`snippets`].

pub mod batching;
pub mod mixing;
pub mod owner;
pub mod query;
pub mod ranking;
pub mod snippets;
pub mod transport;

pub use batching::{BatchPolicy, UpdateQueue};
pub use mixing::UpdateMixer;
pub use owner::DocumentOwner;
pub use query::{QueryClient, QueryOutcome};
pub use snippets::{OwnerSnippetService, SnippetProvider};
pub use transport::ServerHandle;
