//! The client-visible server interface.
//!
//! Exactly the narrow surface of Section 5 — insert, delete, look up —
//! plus the public Shamir x-coordinate. The facade crate wraps
//! implementations with traffic metering; tests call servers directly.

use zerber_core::{ElementId, PlId};
use zerber_field::Fp;
use zerber_net::{AuthToken, StoredShare};
use zerber_server::{IndexServer, ServerError};

/// What a client can ask of one index server.
pub trait ServerHandle: Send + Sync {
    /// The server's public x-coordinate in the sharing scheme.
    fn coordinate(&self) -> Fp;

    /// Insert a batch of element shares.
    fn insert_batch(
        &self,
        token: AuthToken,
        entries: &[(PlId, StoredShare)],
    ) -> Result<(), ServerError>;

    /// Delete elements by id.
    fn delete(
        &self,
        token: AuthToken,
        elements: &[(PlId, ElementId)],
    ) -> Result<usize, ServerError>;

    /// Fetch the accessible parts of the requested posting lists.
    fn get_posting_lists(
        &self,
        token: AuthToken,
        pl_ids: &[PlId],
    ) -> Result<Vec<(PlId, Vec<StoredShare>)>, ServerError>;
}

impl ServerHandle for IndexServer {
    fn coordinate(&self) -> Fp {
        IndexServer::coordinate(self)
    }

    fn insert_batch(
        &self,
        token: AuthToken,
        entries: &[(PlId, StoredShare)],
    ) -> Result<(), ServerError> {
        IndexServer::insert_batch(self, token, entries)
    }

    fn delete(
        &self,
        token: AuthToken,
        elements: &[(PlId, ElementId)],
    ) -> Result<usize, ServerError> {
        IndexServer::delete(self, token, elements)
    }

    fn get_posting_lists(
        &self,
        token: AuthToken,
        pl_ids: &[PlId],
    ) -> Result<Vec<(PlId, Vec<StoredShare>)>, ServerError> {
        IndexServer::get_posting_lists(self, token, pl_ids)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use zerber_index::{GroupId, UserId};
    use zerber_server::TokenAuth;

    #[test]
    fn index_server_implements_the_trait() {
        let auth = Arc::new(TokenAuth::new());
        let server = IndexServer::new(0, Fp::new(5), auth.clone());
        server.add_user_to_group(UserId(1), GroupId(0));
        let token = auth.issue(UserId(1));
        let handle: &dyn ServerHandle = &server;
        assert_eq!(handle.coordinate(), Fp::new(5));
        assert!(handle.insert_batch(token, &[]).is_ok());
        assert_eq!(handle.get_posting_lists(token, &[]).unwrap().len(), 0);
    }
}
