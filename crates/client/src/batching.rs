//! Owner-side update batching (Section 5.4.1).
//!
//! "Index updates in Zerber can be performed in batches that insert or
//! delete posting elements for multiple documents. Batching can reduce
//! index freshness, but also reduces the average network and disk
//! overhead per update. … If Alice has compromised an index server,
//! then batching also reduces the information she gets by watching
//! updates" — elements of different documents arrive interleaved, so
//! she cannot tell which terms co-occur. The correlation attack in
//! `zerber-attacks` quantifies this.

use zerber_core::PlId;
use zerber_net::StoredShare;

/// When to flush queued updates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchPolicy {
    /// Flush once this many *elements* are queued (per server).
    /// `1` means immediate, per-element updates (maximal freshness,
    /// minimal privacy against update watching).
    pub max_elements: usize,
}

impl Default for BatchPolicy {
    fn default() -> Self {
        Self { max_elements: 1 }
    }
}

impl BatchPolicy {
    /// Immediate flushing — "if the user trusts that no index servers
    /// are compromised, then the indexes can be updated whenever a
    /// shared document changes, rather than in batches".
    pub fn immediate() -> Self {
        Self { max_elements: 1 }
    }

    /// Batch up to `max_elements` elements before flushing.
    pub fn batched(max_elements: usize) -> Self {
        assert!(max_elements >= 1, "batch size must be at least 1");
        Self { max_elements }
    }
}

/// Per-server queues of pending insert entries.
#[derive(Debug, Clone)]
pub struct UpdateQueue {
    per_server: Vec<Vec<(PlId, StoredShare)>>,
    queued_elements: usize,
}

impl UpdateQueue {
    /// A queue for `n` servers.
    pub fn new(n: usize) -> Self {
        Self {
            per_server: vec![Vec::new(); n],
            queued_elements: 0,
        }
    }

    /// Queues the n shares of one element (one per server, aligned
    /// with server order).
    ///
    /// # Panics
    /// Panics if `shares.len()` differs from the server count.
    pub fn push(&mut self, pl: PlId, shares: &[StoredShare]) {
        assert_eq!(
            shares.len(),
            self.per_server.len(),
            "one share per server required"
        );
        for (queue, &share) in self.per_server.iter_mut().zip(shares) {
            queue.push((pl, share));
        }
        self.queued_elements += 1;
    }

    /// Number of queued elements (not shares).
    pub fn len(&self) -> usize {
        self.queued_elements
    }

    /// True iff nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.queued_elements == 0
    }

    /// Whether the policy says it is time to flush.
    pub fn should_flush(&self, policy: BatchPolicy) -> bool {
        self.queued_elements >= policy.max_elements
    }

    /// Drains all queues, returning one entry vector per server.
    pub fn drain(&mut self) -> Vec<Vec<(PlId, StoredShare)>> {
        self.queued_elements = 0;
        self.per_server.iter_mut().map(std::mem::take).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zerber_core::ElementId;
    use zerber_field::Fp;
    use zerber_index::GroupId;

    fn shares(n: usize, element: u64) -> Vec<StoredShare> {
        (0..n)
            .map(|i| StoredShare {
                element: ElementId(element),
                group: GroupId(0),
                share: Fp::new(element * 10 + i as u64),
            })
            .collect()
    }

    #[test]
    fn push_fans_out_to_all_servers() {
        let mut queue = UpdateQueue::new(3);
        queue.push(PlId(5), &shares(3, 1));
        assert_eq!(queue.len(), 1);
        let drained = queue.drain();
        assert_eq!(drained.len(), 3);
        for (i, entries) in drained.iter().enumerate() {
            assert_eq!(entries.len(), 1);
            assert_eq!(entries[0].0, PlId(5));
            assert_eq!(entries[0].1.share, Fp::new(10 + i as u64));
        }
        assert!(queue.is_empty());
    }

    #[test]
    fn should_flush_respects_policy() {
        let mut queue = UpdateQueue::new(2);
        let policy = BatchPolicy::batched(3);
        queue.push(PlId(0), &shares(2, 1));
        assert!(!queue.should_flush(policy));
        queue.push(PlId(0), &shares(2, 2));
        queue.push(PlId(0), &shares(2, 3));
        assert!(queue.should_flush(policy));
    }

    #[test]
    fn immediate_policy_flushes_every_element() {
        let mut queue = UpdateQueue::new(1);
        queue.push(PlId(0), &shares(1, 1));
        assert!(queue.should_flush(BatchPolicy::immediate()));
    }

    #[test]
    #[should_panic(expected = "one share per server")]
    fn wrong_share_count_panics() {
        let mut queue = UpdateQueue::new(3);
        queue.push(PlId(0), &shares(2, 1));
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_batch_size_panics() {
        let _ = BatchPolicy::batched(0);
    }
}
