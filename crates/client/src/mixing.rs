//! Update mixing across owners (Section 5.4.1).
//!
//! "Bob can also pool his updates with other people's, or send his
//! through a MIX network, to give himself anonymity and improve index
//! freshness." A [`UpdateMixer`] collects pending insert entries from
//! several owners and flushes them to each server in a randomly
//! interleaved order, so an adversary watching arrivals on a
//! compromised server cannot tell which elements came from the same
//! owner — let alone the same document — without waiting for an entire
//! mixing epoch.

use rand::seq::SliceRandom;
use rand::Rng;

use zerber_core::PlId;
use zerber_net::{AuthToken, StoredShare};
use zerber_server::ServerError;

use crate::transport::ServerHandle;

/// One owner's contribution to the current mixing epoch.
#[derive(Debug, Clone)]
struct Contribution {
    token: AuthToken,
    /// Per-server entry queues, aligned with the server list.
    per_server: Vec<Vec<(PlId, StoredShare)>>,
}

/// Pools multiple owners' updates and flushes them interleaved.
#[derive(Debug, Default)]
pub struct UpdateMixer {
    contributions: Vec<Contribution>,
    server_count: usize,
}

impl UpdateMixer {
    /// A mixer for a deployment of `server_count` index servers.
    pub fn new(server_count: usize) -> Self {
        Self {
            contributions: Vec::new(),
            server_count,
        }
    }

    /// Submits one owner's pending per-server batches (as produced by
    /// [`crate::batching::UpdateQueue::drain`]) under that owner's
    /// token.
    ///
    /// # Panics
    /// Panics if the batch shape does not match the server count.
    pub fn submit(&mut self, token: AuthToken, per_server: Vec<Vec<(PlId, StoredShare)>>) {
        assert_eq!(
            per_server.len(),
            self.server_count,
            "one queue per server required"
        );
        self.contributions.push(Contribution { token, per_server });
    }

    /// Number of elements pooled for the current epoch (counted on
    /// server 0; identical across servers for well-formed input).
    pub fn pooled_elements(&self) -> usize {
        self.contributions
            .iter()
            .map(|c| c.per_server.first().map_or(0, Vec::len))
            .sum()
    }

    /// Flushes the epoch: for every server, the entries of all owners
    /// are shuffled together and delivered in interleaved runs, one
    /// `insert_batch` per run (a run is a maximal subsequence of the
    /// shuffle belonging to one owner, since each insert authenticates
    /// as a single owner).
    ///
    /// Returns the number of insert RPCs issued per server (the
    /// anonymity/overhead trade-off: more interleaving = more RPCs).
    pub fn flush<R: Rng + ?Sized>(
        &mut self,
        servers: &[std::sync::Arc<dyn ServerHandle>],
        rng: &mut R,
    ) -> Result<usize, ServerError> {
        assert_eq!(servers.len(), self.server_count, "server list mismatch");
        if self.contributions.is_empty() {
            return Ok(0);
        }

        // Build a shuffled owner-index sequence; the same interleaving
        // is used for every server so share alignment is preserved.
        let mut sequence: Vec<usize> = self
            .contributions
            .iter()
            .enumerate()
            .flat_map(|(owner, c)| {
                std::iter::repeat_n(owner, c.per_server.first().map_or(0, Vec::len))
            })
            .collect();
        sequence.shuffle(rng);

        let mut rpcs = 0usize;
        for (server_index, server) in servers.iter().enumerate() {
            // Per-owner cursors into their entry queues.
            let mut cursors = vec![0usize; self.contributions.len()];
            let mut position = 0usize;
            while position < sequence.len() {
                let owner = sequence[position];
                // Extend the run while the next shuffled slot belongs
                // to the same owner.
                let mut run_end = position;
                while run_end < sequence.len() && sequence[run_end] == owner {
                    run_end += 1;
                }
                let count = run_end - position;
                let contribution = &self.contributions[owner];
                let from = cursors[owner];
                let entries = &contribution.per_server[server_index][from..from + count];
                server.insert_batch(contribution.token, entries)?;
                cursors[owner] += count;
                position = run_end;
                if server_index == 0 {
                    rpcs += 1;
                }
            }
        }
        self.contributions.clear();
        Ok(rpcs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Arc;
    use zerber_core::ElementId;
    use zerber_field::Fp;
    use zerber_index::{GroupId, UserId};
    use zerber_server::{IndexServer, TokenAuth};

    fn entry(element: u64, pl: u32) -> (PlId, StoredShare) {
        (
            PlId(pl),
            StoredShare {
                element: ElementId(element),
                group: GroupId(0),
                share: Fp::new(element),
            },
        )
    }

    fn world(owners: u32) -> (Vec<Arc<dyn ServerHandle>>, Vec<AuthToken>, Arc<TokenAuth>) {
        let auth = Arc::new(TokenAuth::new());
        let server = IndexServer::new(0, Fp::new(3), auth.clone());
        let mut tokens = Vec::new();
        for owner in 0..owners {
            server.add_user_to_group(UserId(owner), GroupId(0));
            tokens.push(auth.issue(UserId(owner)));
        }
        (vec![Arc::new(server)], tokens, auth)
    }

    #[test]
    fn all_entries_are_delivered() {
        let (servers, tokens, auth) = world(2);
        let mut mixer = UpdateMixer::new(1);
        mixer.submit(tokens[0], vec![vec![entry(1, 0), entry(2, 0)]]);
        mixer.submit(tokens[1], vec![vec![entry(3, 0), entry(4, 1)]]);
        assert_eq!(mixer.pooled_elements(), 4);

        let mut rng = StdRng::seed_from_u64(1);
        let rpcs = mixer.flush(&servers, &mut rng).unwrap();
        assert!(rpcs >= 2, "two owners need at least two RPCs");
        assert_eq!(mixer.pooled_elements(), 0);

        let reader = auth.issue(UserId(0));
        let total: usize = servers[0]
            .get_posting_lists(reader, &[PlId(0), PlId(1)])
            .unwrap()
            .iter()
            .map(|(_, shares)| shares.len())
            .sum();
        assert_eq!(total, 4);
    }

    #[test]
    fn interleaving_breaks_contiguity() {
        // With many owners of many elements, the shuffle must produce
        // more RPC runs than owners (i.e. the per-owner entries are NOT
        // delivered as one contiguous block each).
        let (servers, tokens, _auth) = world(4);
        let mut mixer = UpdateMixer::new(1);
        for (owner, token) in tokens.iter().enumerate() {
            let entries: Vec<_> = (0..50u64)
                .map(|i| entry(owner as u64 * 100 + i, 0))
                .collect();
            mixer.submit(*token, vec![entries]);
        }
        let mut rng = StdRng::seed_from_u64(2);
        let rpcs = mixer.flush(&servers, &mut rng).unwrap();
        assert!(
            rpcs > 4 * 2,
            "expected heavy interleaving, got {rpcs} runs for 4 owners"
        );
    }

    #[test]
    fn empty_epoch_is_a_noop() {
        let (servers, _tokens, _auth) = world(1);
        let mut mixer = UpdateMixer::new(1);
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(mixer.flush(&servers, &mut rng).unwrap(), 0);
    }

    #[test]
    #[should_panic(expected = "one queue per server")]
    fn wrong_shape_panics() {
        let mut mixer = UpdateMixer::new(2);
        mixer.submit(AuthToken(1), vec![vec![]]);
    }
}
