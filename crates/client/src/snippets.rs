//! Snippet retrieval (Section 5.4.2).
//!
//! "Search engine results usually include a document ID and also a
//! small portion of the document content surrounding the query term.
//! Such context information cannot be stored on the index servers due
//! to security and space concerns. Zerber clients request snippets
//! from the peers hosting the top-K documents before presenting the
//! search results to the user."

use std::collections::HashMap;

use parking_lot::RwLock;

use zerber_index::DocId;

/// A document host that can serve result snippets.
pub trait SnippetProvider: Send + Sync {
    /// A short excerpt of the document centered on `query_term` (by
    /// its surface form), or `None` if the document is unknown.
    fn snippet(&self, doc: DocId, query_term: &str) -> Option<String>;
}

/// In-memory snippet service backed by the owner's raw document texts.
#[derive(Debug, Default)]
pub struct OwnerSnippetService {
    texts: RwLock<HashMap<DocId, String>>,
    window: usize,
}

impl OwnerSnippetService {
    /// Creates a service producing snippets of roughly `window` bytes
    /// (the paper measures ~250 B including XML wrapping).
    pub fn new(window: usize) -> Self {
        Self {
            texts: RwLock::new(HashMap::new()),
            window: window.max(16),
        }
    }

    /// Registers (or replaces) a document's text.
    pub fn store(&self, doc: DocId, text: impl Into<String>) {
        self.texts.write().insert(doc, text.into());
    }

    /// Forgets a document.
    pub fn remove(&self, doc: DocId) -> bool {
        self.texts.write().remove(&doc).is_some()
    }
}

impl SnippetProvider for OwnerSnippetService {
    fn snippet(&self, doc: DocId, query_term: &str) -> Option<String> {
        let texts = self.texts.read();
        let text = texts.get(&doc)?;
        let lower = text.to_lowercase();
        let needle = query_term.to_lowercase();
        let center = lower.find(&needle).unwrap_or(0);
        let half = self.window / 2;
        let start = center.saturating_sub(half);
        // Align to char boundaries.
        let start = (0..=start)
            .rev()
            .find(|&i| text.is_char_boundary(i))
            .unwrap_or(0);
        let end = (center + half).min(text.len());
        let end = (end..=text.len())
            .find(|&i| text.is_char_boundary(i))
            .unwrap_or(text.len());
        Some(format!("<snippet>{}</snippet>", &text[start..end]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snippet_centers_on_the_query_term() {
        let service = OwnerSnippetService::new(40);
        let doc = DocId(1);
        let filler = "x ".repeat(100);
        service.store(doc, format!("{filler}IMCLONE{filler}"));
        let snippet = service.snippet(doc, "imclone").unwrap();
        assert!(snippet.contains("IMCLONE"));
        assert!(snippet.len() <= 40 + "<snippet></snippet>".len() + 4);
    }

    #[test]
    fn unknown_documents_yield_none() {
        let service = OwnerSnippetService::new(100);
        assert!(service.snippet(DocId(9), "term").is_none());
    }

    #[test]
    fn missing_term_falls_back_to_document_start() {
        let service = OwnerSnippetService::new(20);
        service.store(DocId(1), "the beginning of a long document body");
        let snippet = service.snippet(DocId(1), "zzzznothere").unwrap();
        assert!(snippet.contains("the begin"));
    }

    #[test]
    fn remove_forgets_documents() {
        let service = OwnerSnippetService::new(50);
        service.store(DocId(1), "text");
        assert!(service.remove(DocId(1)));
        assert!(!service.remove(DocId(1)));
        assert!(service.snippet(DocId(1), "text").is_none());
    }

    #[test]
    fn unicode_boundaries_are_respected() {
        let service = OwnerSnippetService::new(10);
        service.store(DocId(1), "ЦерберЦерберЦербер");
        // Must not panic on char boundaries.
        let snippet = service.snippet(DocId(1), "цербер").unwrap();
        assert!(snippet.starts_with("<snippet>"));
    }
}
