//! The document owner's indexing daemon.
//!
//! "Zerber runs a client program at the document owner that tracks
//! local changes and performs only the necessary updates at the
//! central indexes" (Section 5.4.1). The owner also keeps a local
//! inverted index of its shared documents ("also useful for local
//! search", Section 7.2) that records each element's global id — this
//! is what makes element-wise deletion possible, since the central
//! servers cannot map documents to elements.

use std::collections::HashMap;
use std::sync::Arc;

use rand::Rng;

use zerber_core::MappingTable;
use zerber_core::{ElementCodec, ElementId, PlId, PostingElement};
use zerber_index::{DocId, Document, InvertedIndex};
use zerber_net::{AuthToken, StoredShare};
use zerber_server::ServerError;
use zerber_shamir::SharingScheme;

use crate::batching::{BatchPolicy, UpdateQueue};
use crate::transport::ServerHandle;

/// A document owner: encrypts and distributes posting elements for the
/// documents it hosts.
pub struct DocumentOwner {
    owner_id: u32,
    token: AuthToken,
    codec: ElementCodec,
    scheme: SharingScheme,
    table: Arc<MappingTable>,
    policy: BatchPolicy,
    queue: UpdateQueue,
    local_index: InvertedIndex,
    /// Per-document element inventory for deletion: `(list, element)`
    /// pairs.
    elements_by_doc: HashMap<DocId, Vec<(PlId, ElementId)>>,
    next_sequence: u64,
}

impl DocumentOwner {
    /// Creates an owner.
    ///
    /// `owner_id` namespaces the global element ids this owner
    /// generates (48-bit sequence per owner), `token` authenticates it
    /// to the index servers.
    pub fn new(
        owner_id: u32,
        token: AuthToken,
        codec: ElementCodec,
        scheme: SharingScheme,
        table: Arc<MappingTable>,
        policy: BatchPolicy,
    ) -> Self {
        let n = scheme.server_count();
        Self {
            owner_id,
            token,
            codec,
            scheme,
            table,
            policy,
            queue: UpdateQueue::new(n),
            local_index: InvertedIndex::new(),
            elements_by_doc: HashMap::new(),
            next_sequence: 0,
        }
    }

    /// The owner's local inverted index over its own documents.
    pub fn local_index(&self) -> &InvertedIndex {
        &self.local_index
    }

    /// Elements currently queued but not yet flushed.
    pub fn pending_elements(&self) -> usize {
        self.queue.len()
    }

    /// Indexes one document: builds, encrypts and enqueues one element
    /// per distinct term (Algorithm 1a is O(n·N)); flushes according
    /// to the batch policy.
    ///
    /// Returns the number of elements produced.
    pub fn index_document<R: Rng + ?Sized>(
        &mut self,
        doc: &Document,
        servers: &[Arc<dyn ServerHandle>],
        rng: &mut R,
    ) -> Result<usize, ServerError> {
        assert_eq!(
            servers.len(),
            self.scheme.server_count(),
            "one handle per scheme server"
        );
        // Re-indexing a changed document first retracts the old
        // version's elements.
        if self.elements_by_doc.contains_key(&doc.id) {
            self.delete_document(doc.id, servers)?;
        }

        // Encode every element first, then split the whole document in
        // one `split_batch` call: the per-server coordinate powers are
        // computed once and the polynomial coefficients live in one
        // reused scratch — no per-element allocation (Section 7.3's
        // 33 ms-per-document number rests on this amortization).
        let mut inventory = Vec::with_capacity(doc.terms.len());
        let mut secrets = Vec::with_capacity(doc.terms.len());
        for &(term, count) in &doc.terms {
            let tf = if doc.length == 0 {
                0.0
            } else {
                count as f64 / doc.length as f64
            };
            let element = PostingElement {
                doc: doc.id,
                term,
                tf_quantized: self.codec.quantize_tf(tf),
            };
            secrets.push(
                self.codec
                    .encode(element)
                    .expect("document ids and terms fit the configured codec"),
            );
            inventory.push((self.table.lookup(term), self.fresh_element_id()));
        }
        let rows = self.scheme.split_batch(&secrets, rng);
        let mut stored: Vec<StoredShare> = Vec::with_capacity(rows.len());
        for (index, &(pl, element_id)) in inventory.iter().enumerate() {
            stored.clear();
            stored.extend(rows.iter().map(|row| StoredShare {
                element: element_id,
                group: doc.group,
                share: row[index],
            }));
            self.queue.push(pl, &stored);

            if self.queue.should_flush(self.policy) {
                self.flush(servers)?;
            }
        }

        self.local_index.insert(doc);
        self.elements_by_doc.insert(doc.id, inventory);
        Ok(doc.terms.len())
    }

    /// Flushes any queued updates to the servers immediately.
    pub fn flush(&mut self, servers: &[Arc<dyn ServerHandle>]) -> Result<(), ServerError> {
        if self.queue.is_empty() {
            return Ok(());
        }
        let batches = self.queue.drain();
        for (server, entries) in servers.iter().zip(batches) {
            if !entries.is_empty() {
                server.insert_batch(self.token, &entries)?;
            }
        }
        Ok(())
    }

    /// Deletes a document: element-by-element on every server, since
    /// servers cannot see which elements share a document (Section
    /// 7.3 — "the document deletion network cost is thus the same as
    /// its insertion cost").
    pub fn delete_document(
        &mut self,
        doc: DocId,
        servers: &[Arc<dyn ServerHandle>],
    ) -> Result<usize, ServerError> {
        let Some(inventory) = self.elements_by_doc.remove(&doc) else {
            return Ok(0);
        };
        for server in servers {
            server.delete(self.token, &inventory)?;
        }
        self.local_index.remove(doc);
        Ok(inventory.len())
    }

    /// Hands the queued (unflushed) per-server batches to the caller —
    /// the hook for pooling updates through an
    /// [`UpdateMixer`](crate::mixing::UpdateMixer) instead of flushing
    /// directly (Section 5.4.1 anonymity).
    pub fn drain_pending(&mut self) -> Vec<Vec<(PlId, StoredShare)>> {
        self.queue.drain()
    }

    /// The owner's authentication token (needed when a mixer submits
    /// on the owner's behalf).
    pub fn token(&self) -> AuthToken {
        self.token
    }

    /// The `(list, element-id)` inventory of a document, if indexed.
    pub fn document_elements(&self, doc: DocId) -> Option<&[(PlId, ElementId)]> {
        self.elements_by_doc.get(&doc).map(Vec::as_slice)
    }

    fn fresh_element_id(&mut self) -> ElementId {
        let id = ((self.owner_id as u64) << 40) | self.next_sequence;
        self.next_sequence += 1;
        ElementId(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use zerber_field::Fp;
    use zerber_index::{GroupId, TermId, UserId};
    use zerber_server::{IndexServer, TokenAuth};

    fn setup(n: usize, k: usize) -> (Vec<Arc<dyn ServerHandle>>, DocumentOwner, Arc<TokenAuth>) {
        let auth = Arc::new(TokenAuth::new());
        let mut coordinates = Vec::new();
        let mut handles: Vec<Arc<dyn ServerHandle>> = Vec::new();
        for i in 0..n {
            let x = Fp::new(100 + i as u64);
            coordinates.push(x);
            let server = IndexServer::new(i as u32, x, auth.clone());
            server.add_user_to_group(UserId(1), GroupId(0));
            handles.push(Arc::new(server));
        }
        let scheme = SharingScheme::with_coordinates(k, coordinates).unwrap();
        let table = Arc::new(MappingTable::hash_only(8, 0));
        let token = auth.issue(UserId(1));
        let owner = DocumentOwner::new(
            1,
            token,
            ElementCodec::default(),
            scheme,
            table,
            BatchPolicy::immediate(),
        );
        (handles, owner, auth)
    }

    fn doc(id: u32, terms: &[(u32, u32)]) -> Document {
        Document::from_term_counts(
            DocId(id),
            GroupId(0),
            terms.iter().map(|&(t, c)| (TermId(t), c)).collect(),
        )
    }

    #[test]
    fn indexing_distributes_one_share_per_server() {
        let (servers, mut owner, auth) = setup(3, 2);
        let mut rng = StdRng::seed_from_u64(1);
        let d = doc(1, &[(0, 2), (5, 1), (9, 3)]);
        let produced = owner.index_document(&d, &servers, &mut rng).unwrap();
        assert_eq!(produced, 3);
        // Every server holds exactly 3 shares.
        let token = auth.issue(UserId(1));
        for server in &servers {
            let mut total = 0;
            for pl in 0..8u32 {
                total += server.get_posting_lists(token, &[PlId(pl)]).unwrap()[0]
                    .1
                    .len();
            }
            assert_eq!(total, 3);
        }
    }

    #[test]
    fn local_index_tracks_documents() {
        let (servers, mut owner, _) = setup(3, 2);
        let mut rng = StdRng::seed_from_u64(2);
        let d = doc(1, &[(0, 1), (1, 1)]);
        owner.index_document(&d, &servers, &mut rng).unwrap();
        assert_eq!(owner.local_index().document_count(), 1);
        assert_eq!(owner.document_elements(DocId(1)).unwrap().len(), 2);
    }

    #[test]
    fn delete_removes_everywhere() {
        let (servers, mut owner, auth) = setup(3, 2);
        let mut rng = StdRng::seed_from_u64(3);
        let d = doc(1, &[(0, 1), (1, 1)]);
        owner.index_document(&d, &servers, &mut rng).unwrap();
        let removed = owner.delete_document(DocId(1), &servers).unwrap();
        assert_eq!(removed, 2);
        assert_eq!(owner.local_index().document_count(), 0);
        let token = auth.issue(UserId(1));
        for server in &servers {
            for pl in 0..8u32 {
                assert!(server.get_posting_lists(token, &[PlId(pl)]).unwrap()[0]
                    .1
                    .is_empty());
            }
        }
    }

    #[test]
    fn reindexing_replaces_old_elements() {
        let (servers, mut owner, _) = setup(3, 2);
        let mut rng = StdRng::seed_from_u64(4);
        owner
            .index_document(&doc(1, &[(0, 1), (1, 1), (2, 1)]), &servers, &mut rng)
            .unwrap();
        owner
            .index_document(&doc(1, &[(0, 5)]), &servers, &mut rng)
            .unwrap();
        assert_eq!(owner.document_elements(DocId(1)).unwrap().len(), 1);
        assert_eq!(owner.local_index().document_frequency(TermId(1)), 0);
    }

    #[test]
    fn batched_policy_defers_flush() {
        let auth = Arc::new(TokenAuth::new());
        let x = Fp::new(7);
        let server = IndexServer::new(0, x, auth.clone());
        server.add_user_to_group(UserId(1), GroupId(0));
        let handles: Vec<Arc<dyn ServerHandle>> = vec![Arc::new(server)];
        let scheme = SharingScheme::with_coordinates(1, vec![x]).unwrap();
        let token = auth.issue(UserId(1));
        let mut owner = DocumentOwner::new(
            1,
            token,
            ElementCodec::default(),
            scheme,
            Arc::new(MappingTable::hash_only(4, 0)),
            BatchPolicy::batched(100),
        );
        let mut rng = StdRng::seed_from_u64(5);
        owner
            .index_document(&doc(1, &[(0, 1), (1, 1)]), &handles, &mut rng)
            .unwrap();
        assert_eq!(owner.pending_elements(), 2, "still queued");
        owner.flush(&handles).unwrap();
        assert_eq!(owner.pending_elements(), 0);
    }

    #[test]
    fn element_ids_are_unique_and_namespaced() {
        let (servers, mut owner, _) = setup(3, 2);
        let mut rng = StdRng::seed_from_u64(6);
        owner
            .index_document(&doc(1, &[(0, 1), (1, 1)]), &servers, &mut rng)
            .unwrap();
        owner
            .index_document(&doc(2, &[(0, 1)]), &servers, &mut rng)
            .unwrap();
        let mut all: Vec<u64> = owner
            .document_elements(DocId(1))
            .unwrap()
            .iter()
            .chain(owner.document_elements(DocId(2)).unwrap())
            .map(|(_, e)| e.0)
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 3);
        for id in all {
            assert_eq!(id >> 40, 1, "namespaced by owner id");
        }
    }
}
