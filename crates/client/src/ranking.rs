//! Standalone ranking helpers shared by the query client and the
//! baselines.
//!
//! Zerber ranks on the client with *personalized collection
//! statistics* (Section 5.4.2): document frequencies computed over the
//! set of documents the user can access, not the global corpus. This
//! module exposes that computation for reuse and inspection.

use std::collections::{HashMap, HashSet};

use zerber_core::{ElementCodec, PostingElement};
use zerber_index::{DocId, TermId};

/// Personalized collection statistics derived from an accessible
/// result set.
#[derive(Debug, Clone)]
pub struct PersonalizedStats {
    document_frequency: HashMap<TermId, usize>,
    accessible_docs: usize,
}

impl PersonalizedStats {
    /// Computes statistics from the decrypted, ACL-filtered elements.
    pub fn from_elements(elements: &[PostingElement]) -> Self {
        let mut document_frequency: HashMap<TermId, usize> = HashMap::new();
        let mut docs: HashSet<DocId> = HashSet::new();
        for element in elements {
            *document_frequency.entry(element.term).or_insert(0) += 1;
            docs.insert(element.doc);
        }
        Self {
            document_frequency,
            accessible_docs: docs.len(),
        }
    }

    /// Document frequency of a term within the accessible set.
    pub fn document_frequency(&self, term: TermId) -> usize {
        self.document_frequency.get(&term).copied().unwrap_or(0)
    }

    /// Number of distinct accessible documents.
    pub fn accessible_docs(&self) -> usize {
        self.accessible_docs
    }

    /// Inverse document frequency `ln(1 + N/df)`, 0 for unseen terms.
    pub fn idf(&self, term: TermId) -> f64 {
        let df = self.document_frequency(term) as f64;
        if df == 0.0 {
            0.0
        } else {
            (1.0 + self.accessible_docs as f64 / df).ln()
        }
    }

    /// TF-IDF score contribution of one element.
    pub fn score(&self, element: &PostingElement, codec: &ElementCodec) -> f64 {
        element.term_frequency(codec) * self.idf(element.term)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn element(doc: u32, term: u32, tf_q: u32) -> PostingElement {
        PostingElement {
            doc: DocId(doc),
            term: TermId(term),
            tf_quantized: tf_q,
        }
    }

    #[test]
    fn statistics_count_distinct_documents() {
        let elements = vec![
            element(1, 10, 100),
            element(1, 20, 100),
            element(2, 10, 100),
        ];
        let stats = PersonalizedStats::from_elements(&elements);
        assert_eq!(stats.accessible_docs(), 2);
        assert_eq!(stats.document_frequency(TermId(10)), 2);
        assert_eq!(stats.document_frequency(TermId(20)), 1);
        assert_eq!(stats.document_frequency(TermId(99)), 0);
    }

    #[test]
    fn rarer_terms_have_higher_idf() {
        let elements = vec![
            element(1, 10, 100),
            element(2, 10, 100),
            element(2, 20, 100),
        ];
        let stats = PersonalizedStats::from_elements(&elements);
        assert!(stats.idf(TermId(20)) > stats.idf(TermId(10)));
        assert_eq!(stats.idf(TermId(99)), 0.0);
    }

    #[test]
    fn score_is_tf_times_idf() {
        let codec = ElementCodec::default();
        let elements = vec![element(1, 10, codec.quantize_tf(0.5))];
        let stats = PersonalizedStats::from_elements(&elements);
        let score = stats.score(&elements[0], &codec);
        let expected = 0.5 * (1.0f64 + 1.0).ln();
        assert!((score - expected).abs() < 1e-3);
    }

    #[test]
    fn empty_result_set_is_benign() {
        let stats = PersonalizedStats::from_elements(&[]);
        assert_eq!(stats.accessible_docs(), 0);
        assert_eq!(stats.idf(TermId(0)), 0.0);
    }
}
