//! Query execution — Algorithm 2, client side.
//!
//! The client maps query terms to merged posting-list ids (never
//! revealing the terms themselves), gathers share sets from `k` index
//! servers, aligns shares by global element id, decrypts, removes
//! false positives (elements of co-merged terms), and ranks locally.

use std::collections::HashMap;
use std::sync::Arc;

use zerber_core::{ElementCodec, ElementId, MappingTable, PlId, PostingElement};
use zerber_field::{lagrange_weights_at_zero, Fp};
use zerber_index::{threshold_topk, RankedDoc, ScoredList, TermId};
use zerber_net::AuthToken;
use zerber_server::ServerError;

use crate::transport::ServerHandle;

/// Everything a query run produces, including the accounting the
/// bandwidth experiments need.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// Top-K ranked documents.
    pub ranked: Vec<RankedDoc>,
    /// All decrypted elements that matched the query terms.
    pub matching_elements: Vec<PostingElement>,
    /// Posting elements received from each contacted server (the
    /// response-size driver of Section 7.3).
    pub elements_received: usize,
    /// Elements discarded as false positives (co-merged terms).
    pub false_positives: usize,
    /// Merged posting lists requested.
    pub lists_requested: usize,
}

/// The querying client.
pub struct QueryClient {
    token: AuthToken,
    codec: ElementCodec,
    table: Arc<MappingTable>,
    threshold: usize,
}

impl QueryClient {
    /// Creates a client. `threshold` is the scheme's `k` — how many
    /// servers must answer before decryption is possible.
    pub fn new(
        token: AuthToken,
        codec: ElementCodec,
        table: Arc<MappingTable>,
        threshold: usize,
    ) -> Self {
        assert!(threshold >= 1, "threshold must be at least 1");
        Self {
            token,
            codec,
            table,
            threshold,
        }
    }

    /// Executes a keyword query against at least `k` of the given
    /// servers and returns the top-`k_results` documents.
    pub fn execute(
        &self,
        terms: &[TermId],
        servers: &[Arc<dyn ServerHandle>],
        k_results: usize,
    ) -> Result<QueryOutcome, ServerError> {
        assert!(
            servers.len() >= self.threshold,
            "need at least k = {} servers, got {}",
            self.threshold,
            servers.len()
        );
        let contacted = &servers[..self.threshold];

        // 1. Map query terms to merged posting lists (deduplicated —
        //    co-merged query terms share one fetch).
        let mut pl_ids: Vec<PlId> = terms.iter().map(|&t| self.table.lookup(t)).collect();
        pl_ids.sort_unstable();
        pl_ids.dedup();

        // 2. Fetch the accessible share sets from k servers — in
        //    parallel, one fetch thread per server, so the round trip
        //    costs the slowest server rather than the sum (the servers
        //    run on their own peer threads behind the runtime
        //    transport). Responses stay aligned with `contacted` order
        //    for the Lagrange weights below.
        let fetched: Vec<Result<_, ServerError>> = std::thread::scope(|scope| {
            let pl_ids = &pl_ids;
            let token = self.token;
            let fetches: Vec<_> = contacted
                .iter()
                .map(|server| scope.spawn(move || server.get_posting_lists(token, pl_ids)))
                .collect();
            fetches
                .into_iter()
                .map(|fetch| match fetch.join() {
                    Ok(response) => response,
                    // Re-raise the original payload (e.g. a dead-peer
                    // panic with its context) instead of masking it.
                    Err(panic) => std::panic::resume_unwind(panic),
                })
                .collect()
        });
        let mut responses = Vec::with_capacity(contacted.len());
        for fetch in fetched {
            responses.push(fetch?);
        }

        // 3. Align shares across servers by (list, element id).
        let coordinates: Vec<Fp> = contacted.iter().map(|s| s.coordinate()).collect();
        let weights = lagrange_weights_at_zero(&coordinates);
        let mut elements_received = 0usize;

        // (pl, element) -> accumulated weighted sum + how many servers
        // contributed. ACLs are identical on honest servers, so an
        // element either arrives from all k servers or none.
        let mut accumulator: HashMap<(PlId, ElementId), (Fp, usize)> = HashMap::new();
        for (server_index, lists) in responses.into_iter().enumerate() {
            for (pl, shares) in lists {
                elements_received += shares.len();
                for share in shares {
                    let entry = accumulator
                        .entry((pl, share.element))
                        .or_insert((Fp::ZERO, 0));
                    entry.0 += share.share * weights[server_index];
                    entry.1 += 1;
                }
            }
        }

        // 4. Decrypt complete share sets and filter false positives.
        let query_set: std::collections::HashSet<TermId> = terms.iter().copied().collect();
        let mut matching: Vec<PostingElement> = Vec::new();
        let mut false_positives = 0usize;
        for ((_, _), (sum, contributions)) in accumulator {
            if contributions < self.threshold {
                // Partial share set (e.g. a server dropped the element
                // mid-flight); cannot decrypt, skip defensively.
                continue;
            }
            let Ok(element) = self.codec.decode(sum) else {
                // Not produced by this codec (corrupt or foreign).
                continue;
            };
            if query_set.contains(&element.term) {
                matching.push(element);
            } else {
                false_positives += 1;
            }
        }

        // 5. Client-side ranking with personalized statistics derived
        //    from the accessible result set itself (Section 5.4.2).
        let ranked = rank(&matching, &self.codec, terms, k_results);

        Ok(QueryOutcome {
            ranked,
            matching_elements: matching,
            elements_received,
            false_positives,
            lists_requested: pl_ids.len(),
        })
    }
}

/// Ranks decrypted elements with TF-IDF over the personalized
/// collection (the documents visible in the response) and a threshold
/// top-K cut.
fn rank(
    elements: &[PostingElement],
    codec: &ElementCodec,
    terms: &[TermId],
    k: usize,
) -> Vec<RankedDoc> {
    if elements.is_empty() || k == 0 {
        return Vec::new();
    }
    // Personalized statistics: df over the accessible elements, N =
    // distinct accessible documents.
    let mut df: HashMap<TermId, usize> = HashMap::new();
    let mut docs: std::collections::HashSet<zerber_index::DocId> = std::collections::HashSet::new();
    for element in elements {
        *df.entry(element.term).or_insert(0) += 1;
        docs.insert(element.doc);
    }
    let n = docs.len();

    let lists: Vec<ScoredList> = terms
        .iter()
        .map(|&term| {
            let term_df = df.get(&term).copied().unwrap_or(0);
            let weight = zerber_index::idf(n, term_df);
            ScoredList::new(
                elements
                    .iter()
                    .filter(|e| e.term == term)
                    .map(|e| (e.doc, e.term_frequency(codec) * weight))
                    .collect(),
            )
        })
        .collect();
    threshold_topk(&lists, k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use zerber_core::ElementCodec;
    use zerber_index::{DocId, Document, GroupId, UserId};
    use zerber_server::{IndexServer, TokenAuth};
    use zerber_shamir::SharingScheme;

    use crate::batching::BatchPolicy;
    use crate::owner::DocumentOwner;

    struct World {
        servers: Vec<Arc<dyn ServerHandle>>,
        owner: DocumentOwner,
        auth: Arc<TokenAuth>,
        table: Arc<MappingTable>,
    }

    fn world() -> World {
        let auth = Arc::new(TokenAuth::new());
        let mut coordinates = Vec::new();
        let mut servers: Vec<Arc<dyn ServerHandle>> = Vec::new();
        for i in 0..3u32 {
            let x = Fp::new(11 * (i as u64 + 1));
            coordinates.push(x);
            let server = IndexServer::new(i, x, auth.clone());
            server.add_user_to_group(UserId(1), GroupId(0));
            server.add_user_to_group(UserId(2), GroupId(0));
            server.add_user_to_group(UserId(1), GroupId(1));
            servers.push(Arc::new(server));
        }
        let scheme = SharingScheme::with_coordinates(2, coordinates).unwrap();
        let table = Arc::new(MappingTable::hash_only(4, 99));
        let owner_token = auth.issue(UserId(1));
        let owner = DocumentOwner::new(
            1,
            owner_token,
            ElementCodec::default(),
            scheme,
            table.clone(),
            BatchPolicy::immediate(),
        );
        World {
            servers,
            owner,
            auth,
            table,
        }
    }

    fn doc(id: u32, group: u32, terms: &[(u32, u32)]) -> Document {
        Document::from_term_counts(
            DocId(id),
            GroupId(group),
            terms.iter().map(|&(t, c)| (TermId(t), c)).collect(),
        )
    }

    fn client(world: &World, user: u32) -> QueryClient {
        QueryClient::new(
            world.auth.issue(UserId(user)),
            ElementCodec::default(),
            world.table.clone(),
            2,
        )
    }

    #[test]
    fn end_to_end_query_finds_documents() {
        let mut w = world();
        let mut rng = StdRng::seed_from_u64(1);
        w.owner
            .index_document(&doc(1, 0, &[(10, 3), (20, 1)]), &w.servers, &mut rng)
            .unwrap();
        w.owner
            .index_document(&doc(2, 0, &[(10, 1), (30, 2)]), &w.servers, &mut rng)
            .unwrap();

        let outcome = client(&w, 2)
            .execute(&[TermId(10)], &w.servers, 10)
            .unwrap();
        let mut docs: Vec<u32> = outcome.ranked.iter().map(|r| r.doc.0).collect();
        docs.sort_unstable();
        assert_eq!(docs, vec![1, 2]);
        assert_eq!(outcome.matching_elements.len(), 2);
    }

    #[test]
    fn false_positives_are_filtered_not_returned() {
        let mut w = world();
        let mut rng = StdRng::seed_from_u64(2);
        // With only 4 merged lists and 8 distinct terms, collisions
        // are guaranteed; find a term pair sharing a list.
        let shared_pl = w.table.lookup(TermId(10));
        let collider = (11..200u32)
            .map(TermId)
            .find(|&t| w.table.lookup(t) == shared_pl && t != TermId(10))
            .expect("some term must collide in a 4-list table");
        w.owner
            .index_document(&doc(1, 0, &[(10, 1)]), &w.servers, &mut rng)
            .unwrap();
        w.owner
            .index_document(&doc(2, 0, &[(collider.0, 1)]), &w.servers, &mut rng)
            .unwrap();

        let outcome = client(&w, 2)
            .execute(&[TermId(10)], &w.servers, 10)
            .unwrap();
        assert_eq!(outcome.ranked.len(), 1);
        assert_eq!(outcome.ranked[0].doc, DocId(1));
        assert_eq!(outcome.false_positives, 1, "collider counted as fp");
        assert_eq!(outcome.elements_received, 4, "2 elements x 2 servers");
    }

    #[test]
    fn acl_hides_other_groups_documents() {
        let mut w = world();
        let mut rng = StdRng::seed_from_u64(3);
        w.owner
            .index_document(&doc(1, 0, &[(10, 1)]), &w.servers, &mut rng)
            .unwrap();
        w.owner
            .index_document(&doc(2, 1, &[(10, 5)]), &w.servers, &mut rng)
            .unwrap();

        // User 2 is only in group 0.
        let outcome = client(&w, 2)
            .execute(&[TermId(10)], &w.servers, 10)
            .unwrap();
        assert_eq!(outcome.ranked.len(), 1);
        assert_eq!(outcome.ranked[0].doc, DocId(1));
        // User 1 is in both groups and sees both.
        let outcome = client(&w, 1)
            .execute(&[TermId(10)], &w.servers, 10)
            .unwrap();
        assert_eq!(outcome.ranked.len(), 2);
    }

    #[test]
    fn multi_term_queries_rank_conjunctions_higher() {
        let mut w = world();
        let mut rng = StdRng::seed_from_u64(4);
        // doc 1 has both query terms, doc 2 only one (with same tf).
        w.owner
            .index_document(&doc(1, 0, &[(10, 1), (20, 1)]), &w.servers, &mut rng)
            .unwrap();
        w.owner
            .index_document(&doc(2, 0, &[(10, 1), (99, 1)]), &w.servers, &mut rng)
            .unwrap();

        let outcome = client(&w, 1)
            .execute(&[TermId(10), TermId(20)], &w.servers, 2)
            .unwrap();
        assert_eq!(outcome.ranked[0].doc, DocId(1));
    }

    #[test]
    fn duplicate_query_terms_fetch_each_list_once() {
        let mut w = world();
        let mut rng = StdRng::seed_from_u64(5);
        w.owner
            .index_document(&doc(1, 0, &[(10, 1)]), &w.servers, &mut rng)
            .unwrap();
        let outcome = client(&w, 1)
            .execute(&[TermId(10), TermId(10)], &w.servers, 10)
            .unwrap();
        assert_eq!(outcome.lists_requested, 1);
        assert_eq!(outcome.ranked.len(), 1);
    }

    #[test]
    fn results_decrypt_to_exact_tf_quantum() {
        let mut w = world();
        let mut rng = StdRng::seed_from_u64(6);
        // tf = 3/4.
        w.owner
            .index_document(&doc(1, 0, &[(10, 3), (20, 1)]), &w.servers, &mut rng)
            .unwrap();
        let outcome = client(&w, 1)
            .execute(&[TermId(10)], &w.servers, 10)
            .unwrap();
        let codec = ElementCodec::default();
        let element = outcome.matching_elements[0];
        assert_eq!(element.doc, DocId(1));
        assert_eq!(element.term, TermId(10));
        assert!((element.term_frequency(&codec) - 0.75).abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "need at least k")]
    fn too_few_servers_panics() {
        let w = world();
        let c = client(&w, 1);
        let _ = c.execute(&[TermId(1)], &w.servers[..1], 10);
    }
}
