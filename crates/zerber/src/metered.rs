//! Traffic-metered server handles.
//!
//! Every client call is serialized into its wire format
//! ([`zerber_net::Message`]) purely to account its exact byte size on
//! the shared [`TrafficMeter`], then dispatched in-process. This gives
//! the Section 7.3 bandwidth experiments real serialized sizes without
//! sockets.

use std::sync::Arc;

use zerber_core::{ElementId, PlId};
use zerber_field::Fp;
use zerber_net::{AuthToken, Message, NodeId, StoredShare, TrafficMeter};
use zerber_server::{IndexServer, ServerError};

use zerber_client::ServerHandle;

/// A [`ServerHandle`] that records request/response sizes per link.
pub struct MeteredHandle {
    inner: Arc<IndexServer>,
    meter: Arc<TrafficMeter>,
    from: NodeId,
    to: NodeId,
}

impl MeteredHandle {
    /// Wraps a server for a particular client endpoint.
    pub fn new(
        inner: Arc<IndexServer>,
        meter: Arc<TrafficMeter>,
        from: NodeId,
        to: NodeId,
    ) -> Self {
        Self {
            inner,
            meter,
            from,
            to,
        }
    }
}

impl ServerHandle for MeteredHandle {
    fn coordinate(&self) -> Fp {
        self.inner.coordinate()
    }

    fn insert_batch(
        &self,
        token: AuthToken,
        entries: &[(PlId, StoredShare)],
    ) -> Result<(), ServerError> {
        let request = Message::InsertBatch {
            entries: entries.to_vec(),
        };
        self.meter.record(self.from, self.to, request.wire_size());
        self.inner.insert_batch(token, entries)
    }

    fn delete(
        &self,
        token: AuthToken,
        elements: &[(PlId, ElementId)],
    ) -> Result<usize, ServerError> {
        let request = Message::Delete {
            elements: elements.to_vec(),
        };
        self.meter.record(self.from, self.to, request.wire_size());
        self.inner.delete(token, elements)
    }

    fn get_posting_lists(
        &self,
        token: AuthToken,
        pl_ids: &[PlId],
    ) -> Result<Vec<(PlId, Vec<StoredShare>)>, ServerError> {
        let request = Message::Query {
            auth: token,
            pl_ids: pl_ids.to_vec(),
        };
        self.meter.record(self.from, self.to, request.wire_size());
        let lists = self.inner.get_posting_lists(token, pl_ids)?;
        let response = Message::QueryResponse {
            lists: lists.clone(),
        };
        self.meter.record(self.to, self.from, response.wire_size());
        Ok(lists)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zerber_index::{GroupId, UserId};
    use zerber_server::TokenAuth;

    #[test]
    fn traffic_is_recorded_in_both_directions() {
        let auth = Arc::new(TokenAuth::new());
        let server = Arc::new(IndexServer::new(0, Fp::new(3), auth.clone()));
        server.add_user_to_group(UserId(1), GroupId(0));
        let meter = Arc::new(TrafficMeter::new());
        let user = NodeId::User(1);
        let node = NodeId::IndexServer(0);
        let handle = MeteredHandle::new(server, meter.clone(), user, node);
        let token = auth.issue(UserId(1));

        let share = StoredShare {
            element: ElementId(1),
            group: GroupId(0),
            share: Fp::new(9),
        };
        handle.insert_batch(token, &[(PlId(0), share)]).unwrap();
        let upstream = meter.link_bytes(user, node);
        assert!(upstream > 0, "insert bytes recorded");

        handle.get_posting_lists(token, &[PlId(0)]).unwrap();
        assert!(meter.link_bytes(node, user) > 0, "response bytes recorded");
        assert!(meter.link_bytes(user, node) > upstream, "query bytes added");
    }

    #[test]
    fn failed_calls_still_meter_the_request() {
        let auth = Arc::new(TokenAuth::new());
        let server = Arc::new(IndexServer::new(0, Fp::new(3), auth));
        let meter = Arc::new(TrafficMeter::new());
        let handle = MeteredHandle::new(
            server,
            meter.clone(),
            NodeId::User(9),
            NodeId::IndexServer(0),
        );
        let bogus = AuthToken(123);
        assert!(handle.get_posting_lists(bogus, &[PlId(0)]).is_err());
        // The request went out even though it was rejected.
        assert!(meter.link_bytes(NodeId::User(9), NodeId::IndexServer(0)) > 0);
        assert_eq!(meter.link_bytes(NodeId::IndexServer(0), NodeId::User(9)), 0);
    }
}
