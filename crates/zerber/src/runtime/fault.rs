//! Deterministic fault injection: the chaos harness the failover
//! tests are built on.
//!
//! [`FaultInjectTransport`] wraps any [`Transport`] and misbehaves on
//! purpose — dropped requests, dropped responses, injected delays,
//! duplicated sends, torn (truncated) writes, and killed or muted
//! peers. Every *random* fault is a pure function of
//! `(seed, link, per-link sequence number)`, so a chaos schedule is
//! reproducible from its seed alone: re-running the same client
//! behavior against the same plan replays exactly the same faults
//! (see `tests/seeded_chaos.rs`, which pins one such schedule).
//!
//! The harness sits on the *client* side of the transport, which is
//! where a real network fails: peers never know their answer was
//! dropped, so their work — and their response bytes, metered at the
//! peer — still happens, exactly like a response lost on a real link.
//! The two explicit controls model peer death:
//!
//! * [`FaultInjectTransport::kill`] — the peer is gone: requests fail
//!   immediately, nothing is delivered.
//! * [`FaultInjectTransport::mute`] — the peer dies *between* fan-out
//!   and gather: the request is delivered and executed, the response
//!   never arrives. This is the adversarial window for a replicated
//!   query, and the one `tests/replicated_failover.rs` exercises.
//!
//! Random faults fire only between [`FaultInjectTransport::arm`] and
//! [`FaultInjectTransport::disarm`], so a test can ingest cleanly and
//! then turn chaos on for the query phase. Kills and mutes always
//! apply.
//!
//! # Minimizing a failing seed
//!
//! A failing chaos run prints its seed. To minimize: re-run with the
//! same seed and bisect the *plan* — zero out one fault family's rate
//! at a time (`drop_request`, `drop_response`, `duplicate`, `torn`,
//! `delay`) and keep the seed fixed. Because decisions are
//! per-(link, seq) and families draw from one roll, removing a family
//! leaves every other family's decisions unchanged, so the failure
//! either persists (family irrelevant, keep it removed) or vanishes
//! (family implicated). Then shrink the query count: the per-link
//! sequence numbers make prefixes of the workload replay identically.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use zerber_net::{AuthToken, NodeId, TrafficMeter};

use crate::runtime::transport::{PendingReply, Transport, TransportError};

/// The fault mix: per-mille rates per request, drawn deterministically
/// from the seed. Rates are applied in the order of the fields below
/// from a single roll in `0..1000`, so the families are mutually
/// exclusive per request and their rates sum to at most 1000.
#[derive(Debug, Clone, Copy)]
pub struct FaultPlan {
    /// Seed of the whole schedule. Same seed, same plan, same client
    /// behavior ⇒ same faults.
    pub seed: u64,
    /// ‰ of requests whose *request* frame is lost: bytes leave the
    /// client (and are metered) but the peer never sees them.
    pub drop_request: u32,
    /// ‰ of requests whose *response* frame is lost: the peer executes
    /// and answers (response bytes metered at the peer), the client
    /// hears silence.
    pub drop_response: u32,
    /// ‰ of requests sent twice (a retransmit racing its original).
    /// Both copies cross the wire and both are metered; the extra
    /// response is an orphan the client never reads.
    pub duplicate: u32,
    /// ‰ of requests whose frame is torn mid-write: the peer receives
    /// a truncated payload, fails to decode it, and answers with a
    /// `MALFORMED` fault — which the hedged gather treats as a failed
    /// attempt and retries on the next replica.
    pub torn: u32,
    /// ‰ of responses held back by [`FaultPlan::delay_for`] before
    /// delivery.
    pub delay: u32,
    /// The injected network delay for delayed responses.
    pub delay_for: Duration,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self {
            seed: 0,
            drop_request: 0,
            drop_response: 0,
            duplicate: 0,
            torn: 0,
            delay: 0,
            delay_for: Duration::from_millis(10),
        }
    }
}

impl FaultPlan {
    /// A plan with every random fault disabled (kills and mutes still
    /// work) — the base tests start from.
    pub fn quiet(seed: u64) -> Self {
        Self {
            seed,
            ..Self::default()
        }
    }
}

/// How many of each fault actually fired (for asserting a schedule did
/// exercise what it claims to).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounts {
    /// Request frames lost.
    pub dropped_requests: usize,
    /// Response frames lost.
    pub dropped_responses: usize,
    /// Requests sent twice.
    pub duplicated: usize,
    /// Requests truncated mid-write.
    pub torn: usize,
    /// Responses delayed.
    pub delayed: usize,
}

/// SplitMix64: a tiny, high-quality mixer — each per-request roll is
/// one application over the (seed, link, seq) key.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A collision-free 64-bit key per node (tag in the high half).
fn node_key(node: NodeId) -> u64 {
    match node {
        NodeId::User(i) => (1 << 32) | u64::from(i),
        NodeId::Owner(i) => (2 << 32) | u64::from(i),
        NodeId::IndexServer(i) => (3 << 32) | u64::from(i),
    }
}

/// One scheduled membership transition in a chaos run (see
/// [`FaultInjectTransport::at_request`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosAction {
    /// Kill the peer: requests fail immediately, nothing delivered.
    Kill(NodeId),
    /// Mute the peer: requests execute, responses vanish.
    Mute(NodeId),
    /// Undo a kill/mute — the peer answers again (its *state* is
    /// whatever it was; rejoining the serving set correctly is the
    /// repair subsystem's job, which is exactly what the chaos tests
    /// exercise).
    Revive(NodeId),
}

/// The scheduled kill→revive script and the global request clock that
/// drives it.
struct ChaosSchedule {
    /// Requests observed so far, across every link — the deterministic
    /// clock scheduled actions key on.
    clock: u64,
    /// `(fire_at, action)`, kept sorted by `fire_at` (stable for equal
    /// ticks): applied as the clock passes each mark.
    pending: Vec<(u64, ChaosAction)>,
}

/// A seeded chaos wrapper around any [`Transport`].
///
/// See the [module docs](self) for the fault model. The wrapper is the
/// client's transport; the inner transport (and through it the peers)
/// is untouched, so arming chaos cannot corrupt peer state — only the
/// *observation* of it.
pub struct FaultInjectTransport {
    inner: Arc<dyn Transport>,
    plan: FaultPlan,
    armed: AtomicBool,
    /// Per-link request sequence numbers: the deterministic clock the
    /// schedule is keyed on.
    seq: Mutex<HashMap<(u64, u64), u64>>,
    killed: Mutex<HashSet<NodeId>>,
    muted: Mutex<HashSet<NodeId>>,
    counts: Mutex<FaultCounts>,
    schedule: Mutex<ChaosSchedule>,
}

impl FaultInjectTransport {
    /// Wraps `inner` with `plan`. Starts disarmed: pass-through until
    /// [`FaultInjectTransport::arm`].
    pub fn new(inner: Arc<dyn Transport>, plan: FaultPlan) -> Self {
        Self {
            inner,
            plan,
            armed: AtomicBool::new(false),
            seq: Mutex::new(HashMap::new()),
            killed: Mutex::new(HashSet::new()),
            muted: Mutex::new(HashSet::new()),
            counts: Mutex::new(FaultCounts::default()),
            schedule: Mutex::new(ChaosSchedule {
                clock: 0,
                pending: Vec::new(),
            }),
        }
    }

    /// Turns the random fault plan on.
    pub fn arm(&self) {
        self.armed.store(true, Ordering::SeqCst);
    }

    /// Turns the random fault plan off (kills and mutes persist).
    pub fn disarm(&self) {
        self.armed.store(false, Ordering::SeqCst);
    }

    /// Kills `node`: every request to it fails immediately with
    /// [`TransportError::PeerGone`]; nothing is delivered.
    pub fn kill(&self, node: NodeId) {
        self.killed.lock().insert(node);
    }

    /// Mutes `node`: requests are delivered and executed, responses
    /// never arrive — the peer "dies" between receiving the fan-out
    /// and the client's gather.
    pub fn mute(&self, node: NodeId) {
        self.muted.lock().insert(node);
    }

    /// Undoes [`FaultInjectTransport::kill`] /
    /// [`FaultInjectTransport::mute`] for `node`.
    pub fn revive(&self, node: NodeId) {
        self.killed.lock().remove(&node);
        self.muted.lock().remove(&node);
    }

    /// How many of each fault fired so far.
    pub fn counts(&self) -> FaultCounts {
        *self.counts.lock()
    }

    /// Schedules `action` to fire once the global request clock (every
    /// request on every link ticks it) passes `at`. Actions sharing a
    /// tick apply in the order they were scheduled. Because the clock
    /// counts *client behavior*, not wall time, a kill→revive→rejoin
    /// script replays identically on every run of the same workload —
    /// the membership-churn analogue of the seeded fault plan.
    pub fn at_request(&self, at: u64, action: ChaosAction) {
        let mut schedule = self.schedule.lock();
        let pos = schedule.pending.partition_point(|&(t, _)| t <= at);
        schedule.pending.insert(pos, (at, action));
    }

    /// The global request clock: requests observed so far on all links.
    pub fn requests_seen(&self) -> u64 {
        self.schedule.lock().clock
    }

    /// Advances the request clock one tick and applies every scheduled
    /// action whose mark has passed.
    fn tick(&self) {
        let due: Vec<ChaosAction> = {
            let mut schedule = self.schedule.lock();
            schedule.clock += 1;
            let clock = schedule.clock;
            let upto = schedule.pending.partition_point(|&(t, _)| t <= clock);
            schedule.pending.drain(..upto).map(|(_, a)| a).collect()
        };
        for action in due {
            match action {
                ChaosAction::Kill(node) => self.kill(node),
                ChaosAction::Mute(node) => self.mute(node),
                ChaosAction::Revive(node) => self.revive(node),
            }
        }
    }

    /// The deterministic roll for one request on one link.
    fn roll(&self, from: NodeId, to: NodeId, seq: u64) -> u64 {
        let link = splitmix64(node_key(from) ^ node_key(to).rotate_left(17));
        splitmix64(self.plan.seed ^ link.wrapping_add(splitmix64(seq))) % 1000
    }
}

impl Transport for FaultInjectTransport {
    fn meter(&self) -> &Arc<TrafficMeter> {
        self.inner.meter()
    }

    fn begin_traced(
        &self,
        from: NodeId,
        to: NodeId,
        auth: AuthToken,
        trace: u64,
        payload: Arc<[u8]>,
    ) -> PendingReply {
        // The membership script runs on the global request clock,
        // armed or not — churn is part of the scenario, not the noise.
        self.tick();
        // Explicit peer states apply armed or not: a dead peer is dead.
        if self.killed.lock().contains(&to) {
            return PendingReply::failed(to, TransportError::PeerGone(to));
        }
        if self.muted.lock().contains(&to) {
            // Delivered and executed; the response (metered at the
            // peer) vanishes on the way back.
            drop(self.inner.begin_traced(from, to, auth, trace, payload));
            return PendingReply::failed(to, TransportError::Timeout(to));
        }
        if !self.armed.load(Ordering::SeqCst) {
            return self.inner.begin_traced(from, to, auth, trace, payload);
        }

        let seq = {
            let mut seqs = self.seq.lock();
            let counter = seqs.entry((node_key(from), node_key(to))).or_insert(0);
            let seq = *counter;
            *counter += 1;
            seq
        };
        let roll = self.roll(from, to, seq);
        let plan = &self.plan;

        let mut bound = u64::from(plan.drop_request);
        if roll < bound {
            // The bytes left the client — they count — but the peer
            // never sees them.
            self.counts.lock().dropped_requests += 1;
            self.inner.meter().record(from, to, payload.len());
            return PendingReply::failed(to, TransportError::Timeout(to));
        }
        bound += u64::from(plan.drop_response);
        if roll < bound {
            self.counts.lock().dropped_responses += 1;
            drop(self.inner.begin_traced(from, to, auth, trace, payload));
            return PendingReply::failed(to, TransportError::Timeout(to));
        }
        bound += u64::from(plan.duplicate);
        if roll < bound {
            // The retransmit races the original; the orphan's request
            // and response bytes are both metered, the client reads
            // only the original.
            self.counts.lock().duplicated += 1;
            drop(
                self.inner
                    .begin_traced(from, to, auth, trace, Arc::clone(&payload)),
            );
            return self.inner.begin_traced(from, to, auth, trace, payload);
        }
        bound += u64::from(plan.torn);
        if roll < bound {
            self.counts.lock().torn += 1;
            let torn: Arc<[u8]> = Arc::from(&payload[..payload.len() / 2]);
            return self.inner.begin_traced(from, to, auth, trace, torn);
        }
        bound += u64::from(plan.delay);
        if roll < bound {
            self.counts.lock().delayed += 1;
            return self
                .inner
                .begin_traced(from, to, auth, trace, payload)
                .delayed(plan.delay_for);
        }
        self.inner.begin_traced(from, to, auth, trace, payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::transport::InProcTransport;
    use crate::runtime::transport::PeerInbox;
    use std::sync::mpsc;
    use std::thread;
    use zerber_net::Message;

    fn echo_peer(transport: &InProcTransport, node: NodeId) -> thread::JoinHandle<()> {
        let (tx, rx) = mpsc::channel();
        transport.register(node, tx);
        thread::spawn(move || {
            while let Ok(PeerInbox::Request(envelope)) = rx.recv() {
                envelope.reply.send(envelope.payload.to_vec());
            }
        })
    }

    fn harness(plan: FaultPlan) -> (Arc<FaultInjectTransport>, thread::JoinHandle<()>, NodeId) {
        let inner = Arc::new(InProcTransport::new(Arc::new(TrafficMeter::new())));
        let peer = NodeId::IndexServer(0);
        let handle = echo_peer(&inner, peer);
        let chaos = Arc::new(FaultInjectTransport::new(inner, plan));
        (chaos, handle, peer)
    }

    #[test]
    fn disarmed_harness_is_a_pass_through() {
        let (chaos, handle, peer) = harness(FaultPlan {
            drop_request: 1000,
            ..FaultPlan::quiet(7)
        });
        let message = Message::InsertOk;
        for _ in 0..20 {
            assert_eq!(
                chaos
                    .request(NodeId::User(0), peer, AuthToken(0), &message)
                    .unwrap(),
                message
            );
        }
        assert_eq!(chaos.counts(), FaultCounts::default());
        chaos.meter(); // the meter is the inner one
        drop(chaos);
        handle.join().ok();
    }

    #[test]
    fn identical_seeds_replay_identical_schedules() {
        let plan = FaultPlan {
            drop_request: 150,
            drop_response: 150,
            duplicate: 150,
            torn: 0, // echo peers don't decode, so torn frames echo fine
            delay: 150,
            delay_for: Duration::from_millis(1),
            ..FaultPlan::quiet(42)
        };
        let mut schedules = Vec::new();
        for _ in 0..2 {
            let (chaos, handle, peer) = harness(plan);
            chaos.arm();
            let mut outcomes = Vec::new();
            for i in 0..200u64 {
                let message = Message::DeleteOk { removed: i };
                let outcome = chaos
                    .request(NodeId::User(0), peer, AuthToken(0), &message)
                    .is_ok();
                outcomes.push(outcome);
            }
            schedules.push((outcomes, chaos.counts()));
            drop(chaos);
            handle.join().ok();
        }
        assert_eq!(schedules[0], schedules[1]);
        let counts = schedules[0].1;
        assert!(counts.dropped_requests > 0);
        assert!(counts.dropped_responses > 0);
        assert!(counts.duplicated > 0);
        assert!(counts.delayed > 0);
    }

    #[test]
    fn killed_peer_fails_fast_and_muted_peer_goes_silent() {
        let (chaos, handle, peer) = harness(FaultPlan::quiet(1));
        let message = Message::InsertOk;
        chaos.kill(peer);
        assert_eq!(
            chaos.request(NodeId::User(0), peer, AuthToken(0), &message),
            Err(TransportError::PeerGone(peer))
        );
        chaos.revive(peer);
        chaos.mute(peer);
        let mut pending = chaos.begin(
            NodeId::User(0),
            peer,
            AuthToken(0),
            Arc::from(message.encode().as_ref()),
        );
        assert_eq!(
            pending.wait(Duration::from_millis(5)),
            Err(TransportError::Timeout(peer))
        );
        // The muted peer *did* execute and answer: its response bytes
        // land on the meter even though the client never saw them.
        // (The peer answers asynchronously — poll briefly.)
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while chaos.meter().link_bytes(peer, NodeId::User(0)) == 0
            && std::time::Instant::now() < deadline
        {
            thread::sleep(Duration::from_micros(200));
        }
        assert_eq!(
            chaos.meter().link_bytes(peer, NodeId::User(0)),
            message.wire_size() as u64
        );
        chaos.revive(peer);
        assert_eq!(
            chaos
                .request(NodeId::User(0), peer, AuthToken(0), &message)
                .unwrap(),
            message
        );
        drop(chaos);
        handle.join().ok();
    }

    #[test]
    fn scheduled_churn_replays_on_the_request_clock() {
        let (chaos, handle, peer) = harness(FaultPlan::quiet(11));
        let user = NodeId::User(0);
        let message = Message::InsertOk;
        // Dead as of the 2nd request, back as of the 4th — keyed to
        // the request clock, so the script is workload-deterministic.
        chaos.at_request(2, ChaosAction::Kill(peer));
        chaos.at_request(4, ChaosAction::Revive(peer));
        let outcomes: Vec<bool> = (0..6)
            .map(|_| chaos.request(user, peer, AuthToken(0), &message).is_ok())
            .collect();
        assert_eq!(outcomes, vec![true, false, false, true, true, true]);
        assert_eq!(chaos.requests_seen(), 6);
        drop(chaos);
        handle.join().ok();
    }

    #[test]
    fn duplicates_are_metered_twice_but_read_once() {
        // Satellite: hedge/retry accounting. A duplicated request puts
        // two requests and two responses on the wire; the caller reads
        // exactly one. The meter sees all four message crossings.
        let (chaos, handle, peer) = harness(FaultPlan {
            duplicate: 1000,
            ..FaultPlan::quiet(3)
        });
        chaos.arm();
        let user = NodeId::User(9);
        let message = Message::InsertOk;
        assert_eq!(
            chaos.request(user, peer, AuthToken(0), &message).unwrap(),
            message
        );
        assert_eq!(chaos.counts().duplicated, 1);
        let wire = message.wire_size() as u64;
        assert_eq!(chaos.meter().link_bytes(user, peer), 2 * wire);
        // Both responses may still be in flight for an instant; the
        // peer thread meters before sending, so join it first.
        drop(chaos);
        handle.join().ok();
    }

    #[test]
    fn dropped_requests_still_count_as_sent_bytes() {
        let (chaos, handle, peer) = harness(FaultPlan {
            drop_request: 1000,
            ..FaultPlan::quiet(5)
        });
        chaos.arm();
        let user = NodeId::User(2);
        let message = Message::InsertOk;
        assert_eq!(
            chaos.request(user, peer, AuthToken(0), &message),
            Err(TransportError::Timeout(peer))
        );
        assert_eq!(
            chaos.meter().link_bytes(user, peer),
            message.wire_size() as u64
        );
        assert_eq!(chaos.meter().link_bytes(peer, user), 0, "never delivered");
        drop(chaos);
        handle.join().ok();
    }
}
