//! Mutable document-shard storage behind the peer runtime.
//!
//! A shard peer needs two capabilities: serve ranked reads
//! ([`ShardStore::query_topk`], the lazy
//! [`zerber_index::PostingStore::query_cursors`] pipeline driven with
//! a caller-owned [`TopKScratch`]) and absorb the *write stream* —
//! document inserts and deletes arriving as
//! [`zerber_net::Message::IndexDocs`] / `RemoveDoc` frames. The
//! backends differ sharply in how they take writes:
//!
//! * [`LiveIndexShard`] — the in-memory backends. `Raw` serves
//!   straight from the mutable [`InvertedIndex`] (no snapshot copy at
//!   all); `Compressed` re-freezes its block-compressed store lazily
//!   on the first query after a mutation (correct, but pays a full
//!   recompression — the measured reason the durable engine exists).
//! * [`SegmentShard`] — the `zerber-segment` LSM engine: writes land
//!   in the WAL + memtable, queries run on cheap MVCC snapshots, and
//!   crash recovery is free.
//! * [`FrozenShard`] — any read-only [`PostingStore`]; mutations are
//!   rejected with [`ShardStoreError::Frozen`] (surfaced to clients
//!   as an `UNSUPPORTED` fault).

use zerber_index::cursor::{block_max_topk_cursors, QueryCost, TopKScratch};
use zerber_index::{DocId, Document, InvertedIndex, PostingBackend, PostingStore, TermId};
use zerber_net::{Message, WireDocument};
use zerber_postings::CompressedPostingStore;
use zerber_query::{execute, Forced, QueryOutcome, QueryShape};
use zerber_segment::SegmentStore;

/// The virtual snapshot file the in-memory backends export: one
/// [`Message::BulkLoad`] frame holding the shard's live documents.
pub const LIVE_SNAPSHOT_FILE: &str = "docs.zdump";

/// Runs the lazy cursor-driven top-k over any [`PostingStore`],
/// leaving the ranked result in `scratch.ranked` and returning the
/// decode accounting.
fn cursor_topk(
    store: &dyn PostingStore,
    terms: &[(TermId, f64)],
    k: usize,
    scratch: &mut TopKScratch,
) -> QueryCost {
    let mut cursors = store.query_cursors(terms);
    block_max_topk_cursors(&mut cursors, k, scratch);
    QueryCost::of(&cursors)
}

/// Why a shard rejected a mutation.
#[derive(Debug)]
pub enum ShardStoreError {
    /// The shard serves a frozen snapshot; it takes no writes.
    Frozen,
    /// The durable engine failed to persist the mutation.
    Storage(zerber_segment::SegmentError),
}

impl std::fmt::Display for ShardStoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardStoreError::Frozen => write!(f, "shard is frozen (read-only snapshot)"),
            ShardStoreError::Storage(e) => write!(f, "shard storage failed: {e}"),
        }
    }
}

impl std::error::Error for ShardStoreError {}

/// One document shard's storage: ranked reads plus the write stream.
///
/// Not `Send`-bound — a shard store is built and driven entirely on
/// its peer's thread.
pub trait ShardStore {
    /// The lazy ranked read path: drives
    /// [`PostingStore::query_cursors`] through the cursor-driven
    /// block-max Threshold Algorithm, reusing the caller's
    /// [`TopKScratch`] (heap + result buffer) so the fan-out hot path
    /// allocates nothing per RPC. The top-`k` lands in
    /// `scratch.ranked`; the return value accounts the decode work
    /// pruning saved.
    fn query_topk(
        &mut self,
        terms: &[(TermId, f64)],
        k: usize,
        scratch: &mut TopKScratch,
    ) -> QueryCost;

    /// The planned read path: dispatches a shaped query (disjunctive /
    /// conjunctive / phrase, see [`zerber_query::plan()`]) through the
    /// planner to the chosen evaluator. [`ShardStore::query_topk`]
    /// remains the scratch-reusing fast path for plain disjunctive
    /// queries; this entry point adds the shapes that need positional
    /// or conjunctive evaluation, plus the TA/MaxScore override the
    /// benchmark harness uses.
    fn query_planned(
        &mut self,
        shape: QueryShape,
        slots: &[(TermId, f64)],
        k: usize,
        forced: Forced,
        scratch: &mut TopKScratch,
    ) -> QueryOutcome;

    /// Inserts (or replaces) documents; returns posting elements
    /// written.
    fn insert_documents(&mut self, docs: &[Document]) -> Result<usize, ShardStoreError>;

    /// Bulk-indexes documents along the offline path; returns posting
    /// elements written.
    ///
    /// Semantically identical to [`ShardStore::insert_documents`] —
    /// the batch replaces any older copies of its documents — but a
    /// durable backend is free to skip its WAL and build segments
    /// directly (the SPIMI path in `zerber-segment`). The in-memory
    /// backends simply forward to the insert path.
    fn bulk_load_documents(&mut self, docs: &[Document]) -> Result<usize, ShardStoreError> {
        self.insert_documents(docs)
    }

    /// Removes one document; returns whether it was live.
    fn delete_document(&mut self, doc: DocId) -> Result<bool, ShardStoreError>;

    /// Exports the shard's full state as a `(epoch, named files)`
    /// snapshot — the replica-rebuild shipping unit. A durable backend
    /// ships its sealed segment directory
    /// ([`SegmentStore::export_files`]); the in-memory backends ship
    /// one virtual [`LIVE_SNAPSHOT_FILE`] holding a
    /// [`Message::BulkLoad`] frame of their live documents. A frozen
    /// shard exports nothing ([`ShardStoreError::Frozen`]) — it cannot
    /// diverge, so it never needs repair.
    #[allow(clippy::type_complexity)]
    fn export_snapshot(&mut self) -> Result<(u64, Vec<(String, Vec<u8>)>), ShardStoreError>;
}

/// A read-only posting store wrapped as a shard (the pre-ingest
/// deployment shape, still used when a collection is bulk-built and
/// never mutated).
pub struct FrozenShard {
    store: Box<dyn PostingStore>,
}

impl FrozenShard {
    /// Wraps a frozen store.
    pub fn new(store: Box<dyn PostingStore>) -> Self {
        Self { store }
    }
}

impl ShardStore for FrozenShard {
    fn query_topk(
        &mut self,
        terms: &[(TermId, f64)],
        k: usize,
        scratch: &mut TopKScratch,
    ) -> QueryCost {
        cursor_topk(self.store.as_ref(), terms, k, scratch)
    }

    fn query_planned(
        &mut self,
        shape: QueryShape,
        slots: &[(TermId, f64)],
        k: usize,
        forced: Forced,
        scratch: &mut TopKScratch,
    ) -> QueryOutcome {
        execute(self.store.as_ref(), shape, slots, k, forced, scratch)
    }

    fn insert_documents(&mut self, _docs: &[Document]) -> Result<usize, ShardStoreError> {
        Err(ShardStoreError::Frozen)
    }

    fn delete_document(&mut self, _doc: DocId) -> Result<bool, ShardStoreError> {
        Err(ShardStoreError::Frozen)
    }

    fn export_snapshot(&mut self) -> Result<(u64, Vec<(String, Vec<u8>)>), ShardStoreError> {
        Err(ShardStoreError::Frozen)
    }
}

/// The in-memory mutable shard: an [`InvertedIndex`] plus the
/// configured read representation.
pub struct LiveIndexShard {
    index: InvertedIndex,
    /// `None` = serve raw from the live index; `Some` = compressed,
    /// with the frozen store rebuilt lazily after mutations.
    compressed: Option<Option<CompressedPostingStore>>,
}

impl LiveIndexShard {
    /// A raw-backend shard over `docs`.
    pub fn raw(docs: &[Document]) -> Self {
        Self {
            index: InvertedIndex::from_documents(docs),
            compressed: None,
        }
    }

    /// A compressed-backend shard over `docs`.
    pub fn compressed(docs: &[Document]) -> Self {
        Self {
            index: InvertedIndex::from_documents(docs),
            compressed: Some(None),
        }
    }
}

impl ShardStore for LiveIndexShard {
    fn query_topk(
        &mut self,
        terms: &[(TermId, f64)],
        k: usize,
        scratch: &mut TopKScratch,
    ) -> QueryCost {
        match &mut self.compressed {
            None => cursor_topk(&self.index, terms, k, scratch),
            Some(cache) => cursor_topk(
                cache.get_or_insert_with(|| CompressedPostingStore::from_index(&self.index)),
                terms,
                k,
                scratch,
            ),
        }
    }

    fn query_planned(
        &mut self,
        shape: QueryShape,
        slots: &[(TermId, f64)],
        k: usize,
        forced: Forced,
        scratch: &mut TopKScratch,
    ) -> QueryOutcome {
        match &mut self.compressed {
            None => execute(&self.index, shape, slots, k, forced, scratch),
            Some(cache) => execute(
                cache.get_or_insert_with(|| CompressedPostingStore::from_index(&self.index)),
                shape,
                slots,
                k,
                forced,
                scratch,
            ),
        }
    }

    fn insert_documents(&mut self, docs: &[Document]) -> Result<usize, ShardStoreError> {
        self.index.insert_batch(docs);
        if let Some(cache) = &mut self.compressed {
            *cache = None; // refreeze on the next read
        }
        Ok(docs.iter().map(Document::distinct_terms).sum())
    }

    fn delete_document(&mut self, doc: DocId) -> Result<bool, ShardStoreError> {
        let removed = self.index.remove(doc);
        if removed {
            if let Some(cache) = &mut self.compressed {
                *cache = None;
            }
        }
        Ok(removed)
    }

    fn export_snapshot(&mut self) -> Result<(u64, Vec<(String, Vec<u8>)>), ShardStoreError> {
        // One virtual file: a BulkLoad frame of the live documents,
        // sorted by id so identical states export identical bytes. The
        // `shard` field is a placeholder — restore addresses by the
        // install frames, not the payload.
        let mut docs = self.index.export_documents();
        docs.sort_unstable_by_key(|doc| doc.id);
        let frame = Message::BulkLoad {
            shard: 0,
            docs: docs
                .iter()
                .map(|doc| WireDocument {
                    doc: doc.id,
                    group: doc.group,
                    length: doc.length,
                    terms: doc.terms.clone(),
                })
                .collect(),
        };
        Ok((
            docs.len() as u64,
            vec![(LIVE_SNAPSHOT_FILE.to_string(), frame.encode().to_vec())],
        ))
    }
}

/// The durable shard: every mutation journaled and crash-safe, reads
/// on MVCC snapshots.
pub struct SegmentShard {
    store: SegmentStore,
}

impl SegmentShard {
    /// Wraps an open store.
    pub fn new(store: SegmentStore) -> Self {
        Self { store }
    }

    /// The underlying engine (bench instrumentation).
    pub fn store(&self) -> &SegmentStore {
        &self.store
    }
}

impl ShardStore for SegmentShard {
    fn query_topk(
        &mut self,
        terms: &[(TermId, f64)],
        k: usize,
        scratch: &mut TopKScratch,
    ) -> QueryCost {
        // The MVCC snapshot pins the sources the cursors borrow from
        // for exactly the duration of this query.
        let snapshot = self.store.snapshot();
        cursor_topk(&snapshot, terms, k, scratch)
    }

    fn query_planned(
        &mut self,
        shape: QueryShape,
        slots: &[(TermId, f64)],
        k: usize,
        forced: Forced,
        scratch: &mut TopKScratch,
    ) -> QueryOutcome {
        let snapshot = self.store.snapshot();
        execute(&snapshot, shape, slots, k, forced, scratch)
    }

    fn insert_documents(&mut self, docs: &[Document]) -> Result<usize, ShardStoreError> {
        self.store.insert(docs).map_err(ShardStoreError::Storage)
    }

    fn bulk_load_documents(&mut self, docs: &[Document]) -> Result<usize, ShardStoreError> {
        self.store
            .bulk_load(docs, zerber_segment::BulkConfig::default())
            .map(|stats| stats.postings)
            .map_err(ShardStoreError::Storage)
    }

    fn delete_document(&mut self, doc: DocId) -> Result<bool, ShardStoreError> {
        self.store.delete(doc).map_err(ShardStoreError::Storage)
    }

    fn export_snapshot(&mut self) -> Result<(u64, Vec<(String, Vec<u8>)>), ShardStoreError> {
        self.store.export_files().map_err(ShardStoreError::Storage)
    }
}

/// Builds the shard store a backend selection names, over an initial
/// document set. Runs on the peer's own thread (see
/// `PeerRuntime::spawn_peer`), so per-shard construction — indexing,
/// compressing, seeding the durable store — parallelizes across peers.
///
/// # Panics
/// Panics if the segmented backend cannot open or seed its directory,
/// **or if the directory already holds recovered documents**: a
/// `ShardedSearch` deployment computes its global IDF statistics from
/// the launch-time document set alone, so silently merging recovered
/// state would serve documents the statistics don't know about —
/// diverging from the single-node oracle instead of failing. Reopen
/// recovered stores with [`SegmentStore::open`] directly, or launch
/// into a fresh directory. (A shard that cannot come up correctly is
/// a deployment bug, matching the runtime's dead-peer stance.)
pub fn build_shard_store(backend: &PostingBackend, docs: &[Document]) -> Box<dyn ShardStore> {
    build_shard_store_observed(backend, docs, None)
}

/// [`build_shard_store`], but a segmented backend registers its
/// `zerber_segment_*` instruments (WAL fsync latency, flush and
/// compaction durations, segment count) in `registry` when one is
/// given. The in-memory backends carry no write-path instruments, so
/// the registry only matters for [`PostingBackend::Segmented`].
///
/// # Panics
/// Same contract as [`build_shard_store`].
pub fn build_shard_store_observed(
    backend: &PostingBackend,
    docs: &[Document],
    registry: Option<&zerber_obs::MetricsRegistry>,
) -> Box<dyn ShardStore> {
    match backend {
        PostingBackend::Raw => Box::new(LiveIndexShard::raw(docs)),
        PostingBackend::Compressed => Box::new(LiveIndexShard::compressed(docs)),
        PostingBackend::Segmented { dir, compaction } => {
            let store = match registry {
                Some(registry) => SegmentStore::open_observed(dir.clone(), *compaction, registry),
                None => SegmentStore::open(dir.clone(), *compaction),
            }
            .expect("segmented shard store opens");
            let recovered = store.snapshot().live_doc_count();
            assert_eq!(
                recovered,
                0,
                "segmented shard dir {} holds {recovered} recovered documents; \
                 ShardedSearch::launch needs a fresh directory (reopen recovered \
                 stores with SegmentStore::open directly)",
                dir.display()
            );
            store.insert(docs).expect("segmented shard store seeds");
            Box::new(SegmentShard::new(store))
        }
    }
}

fn corrupt_snapshot(reason: &'static str) -> ShardStoreError {
    ShardStoreError::Storage(zerber_segment::SegmentError::Corrupt {
        file: LIVE_SNAPSHOT_FILE.to_string(),
        reason,
    })
}

/// Rebuilds a shard store of backend `backend` from a shipped
/// snapshot — the install side of [`ShardStore::export_snapshot`].
///
/// For [`PostingBackend::Segmented`] the snapshot files are installed
/// into the backend's directory (tmp + fsync + rename per file; any
/// previous contents are discarded first — a rebuild *replaces* the
/// replica) and the store is reopened directly with
/// [`SegmentStore::open`], bypassing [`build_shard_store`]'s
/// fresh-directory assertion: recovered documents are exactly what a
/// rebuild installs. The in-memory backends decode the virtual
/// [`LIVE_SNAPSHOT_FILE`] bulk-load frame back into documents.
pub fn restore_shard_store(
    backend: &PostingBackend,
    files: &[(String, Vec<u8>)],
) -> Result<Box<dyn ShardStore>, ShardStoreError> {
    match backend {
        PostingBackend::Raw | PostingBackend::Compressed => {
            let (_, bytes) = files
                .iter()
                .find(|(name, _)| name == LIVE_SNAPSHOT_FILE)
                .ok_or_else(|| corrupt_snapshot("snapshot carries no document dump"))?;
            let Ok(Message::BulkLoad { docs: wire, .. }) = Message::decode(bytes) else {
                return Err(corrupt_snapshot("document dump does not decode"));
            };
            let mut docs = Vec::with_capacity(wire.len());
            for doc in wire {
                // Snapshot bytes crossed a wire: re-validate the
                // Document invariant rather than panic on it.
                if !doc.terms.windows(2).all(|w| w[0].0 < w[1].0) {
                    return Err(corrupt_snapshot("document dump has unsorted terms"));
                }
                docs.push(Document {
                    id: doc.doc,
                    group: doc.group,
                    terms: doc.terms,
                    length: doc.length,
                });
            }
            Ok(match backend {
                PostingBackend::Compressed => Box::new(LiveIndexShard::compressed(&docs)),
                _ => Box::new(LiveIndexShard::raw(&docs)),
            })
        }
        PostingBackend::Segmented { dir, compaction } => {
            // A rebuild replaces the replica wholesale; stale segments
            // or WAL records must not survive into the installed state.
            std::fs::remove_dir_all(dir).ok();
            SegmentStore::install_files(dir, files).map_err(ShardStoreError::Storage)?;
            let store =
                SegmentStore::open(dir.clone(), *compaction).map_err(ShardStoreError::Storage)?;
            Ok(Box::new(SegmentShard::new(store)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zerber_index::{GroupId, RawPostingStore};

    fn doc(id: u32, terms: &[(u32, u32)]) -> Document {
        Document::from_term_counts(
            DocId(id),
            GroupId(0),
            terms.iter().map(|&(t, c)| (TermId(t), c)).collect(),
        )
    }

    fn corpus() -> Vec<Document> {
        (0..40u32)
            .map(|d| doc(d, &[(d % 7, 1 + d % 3), (9, 1)]))
            .collect()
    }

    fn topk_of(store: &mut dyn ShardStore, docs_live: &[Document]) -> Vec<(DocId, u64)> {
        let index = InvertedIndex::from_documents(docs_live);
        let n = index.document_count();
        let weights: Vec<(TermId, f64)> = (0..10)
            .map(|t| {
                (
                    TermId(t),
                    zerber_index::idf(n, index.document_frequency(TermId(t))),
                )
            })
            .collect();
        let mut scratch = TopKScratch::new();
        let cost = store.query_topk(&weights, 8, &mut scratch);
        assert!(cost.blocks_decoded <= cost.blocks_total);
        scratch
            .ranked
            .iter()
            .map(|r| (r.doc, r.score.to_bits()))
            .collect()
    }

    fn oracle(docs_live: &[Document]) -> Vec<(DocId, u64)> {
        let mut frozen = FrozenShard::new(Box::new(RawPostingStore::from_index(
            &InvertedIndex::from_documents(docs_live),
        )));
        topk_of(&mut frozen, docs_live)
    }

    #[test]
    fn every_mutable_backend_tracks_the_oracle() {
        let initial = corpus();
        let dir = zerber_segment::scratch_dir("shard-backends");
        let segmented_backend = PostingBackend::Segmented {
            dir: dir.clone(),
            compaction: zerber_index::SegmentPolicy {
                flush_postings: 16,
                max_segments: 2,
                background: false,
                sync_wal: false,
            },
        };
        let mut shards: Vec<Box<dyn ShardStore>> = vec![
            build_shard_store(&PostingBackend::Raw, &initial),
            build_shard_store(&PostingBackend::Compressed, &initial),
            build_shard_store(&segmented_backend, &initial),
        ];
        let mut live = initial.clone();
        // Mutate: replace doc 3 (dropping its old terms), delete doc 9,
        // add doc 100.
        let replacement = doc(3, &[(5, 9)]);
        let addition = doc(100, &[(0, 2), (9, 4)]);
        // The bulk path replaces doc 5 and adds docs 200..204, exactly
        // like an insert batch would.
        let bulk: Vec<Document> = std::iter::once(doc(5, &[(2, 6)]))
            .chain((200..204u32).map(|d| doc(d, &[(d % 7, 2), (9, 1)])))
            .collect();
        for shard in &mut shards {
            shard
                .insert_documents(std::slice::from_ref(&replacement))
                .unwrap();
            assert!(shard.delete_document(DocId(9)).unwrap());
            assert!(!shard.delete_document(DocId(999)).unwrap());
            shard
                .insert_documents(std::slice::from_ref(&addition))
                .unwrap();
            shard.bulk_load_documents(&bulk).unwrap();
        }
        live.retain(|d| d.id != DocId(3) && d.id != DocId(9) && d.id != DocId(5));
        live.push(replacement);
        live.push(addition);
        live.extend(bulk.iter().cloned());
        let expected = oracle(&live);
        for (i, shard) in shards.iter_mut().enumerate() {
            assert_eq!(topk_of(shard.as_mut(), &live), expected, "backend {i}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn snapshot_round_trips_every_mutable_backend() {
        let initial = corpus();
        let src_dir = zerber_segment::scratch_dir("shard-snap-src");
        let dst_dir = zerber_segment::scratch_dir("shard-snap-dst");
        let policy = zerber_index::SegmentPolicy {
            flush_postings: 16,
            max_segments: 2,
            background: false,
            sync_wal: false,
        };
        let backends = [
            (PostingBackend::Raw, PostingBackend::Raw),
            (PostingBackend::Compressed, PostingBackend::Compressed),
            (
                PostingBackend::Segmented {
                    dir: src_dir.clone(),
                    compaction: policy,
                },
                PostingBackend::Segmented {
                    dir: dst_dir.clone(),
                    compaction: policy,
                },
            ),
        ];
        for (source_backend, target_backend) in backends {
            let mut source = build_shard_store(&source_backend, &initial);
            source
                .insert_documents(&[doc(100, &[(0, 2), (9, 4)])])
                .unwrap();
            assert!(source.delete_document(DocId(9)).unwrap());
            let (_, files) = source.export_snapshot().unwrap();
            let mut restored = restore_shard_store(&target_backend, &files).unwrap();
            let mut live = initial.clone();
            live.retain(|d| d.id != DocId(9));
            live.push(doc(100, &[(0, 2), (9, 4)]));
            assert_eq!(
                topk_of(restored.as_mut(), &live),
                topk_of(source.as_mut(), &live),
            );
            // The restored replica keeps taking the write stream.
            restored.insert_documents(&[doc(300, &[(1, 1)])]).unwrap();
        }
        std::fs::remove_dir_all(&src_dir).ok();
        std::fs::remove_dir_all(&dst_dir).ok();
    }

    #[test]
    fn corrupt_snapshots_are_rejected_typed() {
        assert!(restore_shard_store(&PostingBackend::Raw, &[]).is_err());
        assert!(restore_shard_store(
            &PostingBackend::Raw,
            &[(LIVE_SNAPSHOT_FILE.to_string(), vec![0xFF, 0xFE])],
        )
        .is_err());
    }

    #[test]
    fn frozen_shards_reject_writes() {
        let mut frozen = FrozenShard::new(Box::new(RawPostingStore::default()));
        assert!(matches!(
            frozen.insert_documents(&[doc(1, &[(0, 1)])]),
            Err(ShardStoreError::Frozen)
        ));
        assert!(matches!(
            frozen.bulk_load_documents(&[doc(1, &[(0, 1)])]),
            Err(ShardStoreError::Frozen)
        ));
        assert!(matches!(
            frozen.delete_document(DocId(1)),
            Err(ShardStoreError::Frozen)
        ));
        assert!(matches!(
            frozen.export_snapshot(),
            Err(ShardStoreError::Frozen)
        ));
    }
}
