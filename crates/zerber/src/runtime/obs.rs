//! Per-deployment observability: the metrics registry, trace-id
//! allocator, and query forensics sinks one [`ShardedSearch`] (or a
//! hand-wired cluster like `examples/socket_cluster.rs`) records into.
//!
//! [`RuntimeObs`] is a cheap [`Clone`] handle around one shared state:
//! a [`MetricsRegistry`] with the query-path instruments
//! pre-registered (so the hot path never touches the registry's name
//! table), a monotonically increasing trace-id source, the top-N
//! [`SlowQueryLog`], and the last-K [`FlightRecorder`]. Deployments
//! each own their registry — integration tests run many deployments in
//! one process, so a global registry would cross-contaminate their
//! assertions.
//!
//! [`ShardedSearch`]: crate::runtime::ShardedSearch

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use zerber_net::TrafficMeter;
use zerber_obs::{
    Counter, FlightRecorder, Gauge, Histogram, MetricsRegistry, MetricsSnapshot, QueryTrace,
    SlowQueryLog, TraceId,
};

/// How many of the slowest queries the slow-query log retains.
pub const SLOW_QUERY_LOG_CAPACITY: usize = 8;

/// How many recent query traces the flight recorder retains.
pub const FLIGHT_RECORDER_CAPACITY: usize = 64;

struct ObsInner {
    registry: MetricsRegistry,
    /// Next trace id; starts at 1 because zero means *untraced* on the
    /// wire.
    next_trace: AtomicU64,
    slow_queries: SlowQueryLog,
    flight_recorder: FlightRecorder,
    /// Pre-registered query-path instruments.
    metrics: QueryMetrics,
}

/// The query-path instrument handles, registered once at construction.
pub(crate) struct QueryMetrics {
    /// `zerber_query_latency_ns`: end-to-end client latency.
    pub latency: Histogram,
    /// `zerber_query_total`: queries completed (success or failure).
    pub total: Counter,
    /// `zerber_gather_hedges_total`: beyond-primary requests sent.
    pub hedges: Counter,
    /// `zerber_gather_duplicate_responses_total`: late answers from
    /// hedged-away replicas.
    pub duplicate_responses: Counter,
    /// `zerber_gather_failed_attempts_total`: replica attempts that
    /// failed before their shard settled.
    pub failed_attempts: Counter,
    /// `zerber_gather_candidates_received_total`.
    pub candidates_received: Counter,
    /// `zerber_gather_candidates_examined_total`.
    pub candidates_examined: Counter,
    /// `zerber_transport_rpc_latency_ns`: per-attempt RPC wall clock.
    pub rpc_latency: Histogram,
    /// `zerber_peer_decode_latency_ns`: shard-local evaluation time as
    /// reported back by the answering peer.
    pub decode_latency: Histogram,
    /// `zerber_peer_blocks_decoded_total`.
    pub blocks_decoded: Counter,
    /// `zerber_peer_blocks_skipped_total` (block-max pruning wins).
    pub blocks_skipped: Counter,
    /// `zerber_transport_bytes_total` gauge: the deployment-wide
    /// payload-byte sum, pulled from the [`TrafficMeter`] at sync
    /// points (the meter stays the source of truth for the paper's
    /// bandwidth accounting; the registry mirrors it at read time).
    pub bytes_total: Gauge,
    /// `zerber_cache_hits_total`: planned queries answered from the
    /// epoch-keyed result cache.
    pub cache_hits: Counter,
    /// `zerber_cache_misses_total`: planned queries that fanned out.
    pub cache_misses: Counter,
    /// `zerber_cache_evictions_total`: entries pushed out by the LRU
    /// byte budget.
    pub cache_evictions: Counter,
    /// `zerber_query_plan_total{plan=...}`: one counter per evaluator
    /// the planner picked (labels are baked into the metric name so
    /// the hot path never formats).
    pub plan_block_max_ta: Counter,
    pub plan_maxscore: Counter,
    pub plan_conjunctive: Counter,
    pub plan_phrase: Counter,
    /// `zerber_repair_rebuilds_total`: shard copies rebuilt by
    /// snapshot shipping (one per shard per repaired replica).
    pub repair_rebuilds: Counter,
    /// `zerber_repair_segments_shipped_total`: snapshot files streamed
    /// during rebuilds (manifest + segments).
    pub repair_segments_shipped: Counter,
    /// `zerber_repair_bytes_shipped_total`: snapshot payload bytes
    /// streamed during rebuilds.
    pub repair_bytes_shipped: Counter,
    /// `zerber_repair_rebuild_ns`: wall clock of one shard rebuild
    /// (begin → snapshot → ship → commit).
    pub repair_rebuild_ns: Histogram,
    /// `zerber_membership_up` gauge: peers currently believed `Up`.
    pub membership_up: Gauge,
}

impl QueryMetrics {
    /// The `zerber_query_plan_total` counter for `kind`.
    pub fn plan_counter(&self, kind: zerber_query::EvaluatorKind) -> &Counter {
        match kind {
            zerber_query::EvaluatorKind::BlockMaxTa => &self.plan_block_max_ta,
            zerber_query::EvaluatorKind::MaxScore => &self.plan_maxscore,
            zerber_query::EvaluatorKind::Conjunctive => &self.plan_conjunctive,
            zerber_query::EvaluatorKind::Phrase => &self.plan_phrase,
        }
    }
}

/// The observability handle of one deployment. Clones share state.
#[derive(Clone)]
pub struct RuntimeObs {
    inner: Arc<ObsInner>,
}

impl Default for RuntimeObs {
    fn default() -> Self {
        Self::new()
    }
}

impl RuntimeObs {
    /// A fresh handle with its own registry and forensics sinks.
    pub fn new() -> Self {
        Self::with_registry(MetricsRegistry::new())
    }

    /// A handle recording into an existing `registry` — for sharing
    /// one registry between the query path and other instrumented
    /// components (socket transport, segment stores).
    pub fn with_registry(registry: MetricsRegistry) -> Self {
        let metrics = QueryMetrics {
            latency: registry.histogram("zerber_query_latency_ns"),
            total: registry.counter("zerber_query_total"),
            hedges: registry.counter("zerber_gather_hedges_total"),
            duplicate_responses: registry.counter("zerber_gather_duplicate_responses_total"),
            failed_attempts: registry.counter("zerber_gather_failed_attempts_total"),
            candidates_received: registry.counter("zerber_gather_candidates_received_total"),
            candidates_examined: registry.counter("zerber_gather_candidates_examined_total"),
            rpc_latency: registry.histogram("zerber_transport_rpc_latency_ns"),
            decode_latency: registry.histogram("zerber_peer_decode_latency_ns"),
            blocks_decoded: registry.counter("zerber_peer_blocks_decoded_total"),
            blocks_skipped: registry.counter("zerber_peer_blocks_skipped_total"),
            bytes_total: registry.gauge("zerber_transport_bytes_total"),
            cache_hits: registry.counter("zerber_cache_hits_total"),
            cache_misses: registry.counter("zerber_cache_misses_total"),
            cache_evictions: registry.counter("zerber_cache_evictions_total"),
            plan_block_max_ta: registry.counter("zerber_query_plan_total{plan=\"block_max_ta\"}"),
            plan_maxscore: registry.counter("zerber_query_plan_total{plan=\"maxscore\"}"),
            plan_conjunctive: registry.counter("zerber_query_plan_total{plan=\"conjunctive\"}"),
            plan_phrase: registry.counter("zerber_query_plan_total{plan=\"phrase\"}"),
            repair_rebuilds: registry.counter("zerber_repair_rebuilds_total"),
            repair_segments_shipped: registry.counter("zerber_repair_segments_shipped_total"),
            repair_bytes_shipped: registry.counter("zerber_repair_bytes_shipped_total"),
            repair_rebuild_ns: registry.histogram("zerber_repair_rebuild_ns"),
            membership_up: registry.gauge("zerber_membership_up"),
        };
        Self {
            inner: Arc::new(ObsInner {
                registry,
                next_trace: AtomicU64::new(1),
                slow_queries: SlowQueryLog::new(SLOW_QUERY_LOG_CAPACITY),
                flight_recorder: FlightRecorder::new(FLIGHT_RECORDER_CAPACITY),
                metrics,
            }),
        }
    }

    /// The underlying registry (snapshot it, share it, or flip its
    /// kill switch via [`MetricsRegistry::set_enabled`]).
    pub fn registry(&self) -> &MetricsRegistry {
        &self.inner.registry
    }

    /// Allocates the next trace id (never zero — zero is the wire's
    /// *untraced* marker).
    pub fn next_trace_id(&self) -> TraceId {
        TraceId(self.inner.next_trace.fetch_add(1, Ordering::Relaxed))
    }

    /// The top-N-by-latency slow-query log.
    pub fn slow_queries(&self) -> &SlowQueryLog {
        &self.inner.slow_queries
    }

    /// The always-on ring buffer of the last K query traces.
    pub fn flight_recorder(&self) -> &FlightRecorder {
        &self.inner.flight_recorder
    }

    /// Files a finished query trace into both forensics sinks.
    pub fn record_trace(&self, trace: Arc<QueryTrace>) {
        self.inner.flight_recorder.record(Arc::clone(&trace));
        self.inner.slow_queries.offer(trace);
    }

    /// Pulls `meter`'s totals into the transport byte gauges, then
    /// snapshots the registry. Traffic is metered by the existing
    /// [`TrafficMeter`] (the paper's bandwidth accounting); the
    /// registry mirrors it at read time instead of double-counting on
    /// the hot path.
    pub fn snapshot_with_traffic(&self, meter: &TrafficMeter) -> MetricsSnapshot {
        self.sync_traffic(meter);
        self.inner.registry.snapshot()
    }

    /// Updates the `zerber_transport_bytes_total` gauge from `meter`.
    /// Gauges ignore the kill switch, so the traffic level stays fresh
    /// even while recording is disabled.
    pub fn sync_traffic(&self, meter: &TrafficMeter) {
        self.inner.metrics.bytes_total.set(meter.total() as i64);
    }

    pub(crate) fn metrics(&self) -> &QueryMetrics {
        &self.inner.metrics
    }
}
