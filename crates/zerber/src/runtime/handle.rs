//! Client-side stubs speaking the wire protocol to peer threads.
//!
//! A [`RuntimeHandle`] is what `ZerberSystem` hands to owners and
//! query clients instead of a direct [`zerber_server::IndexServer`]
//! reference: every call is encoded to its exact wire bytes, crosses
//! the [`Transport`] (metering the link both ways), executes on the
//! server's own peer thread, and the typed result is decoded from the
//! response frame. This replaces the old `MeteredHandle`, which
//! serialized messages purely for byte accounting and then dispatched
//! inline on the caller's thread.

use std::sync::Arc;

use zerber_core::{ElementId, PlId};
use zerber_field::Fp;
use zerber_net::{AuthToken, Message, NodeId, StoredShare};
use zerber_server::ServerError;

use zerber_client::ServerHandle;

use crate::runtime::transport::Transport;

/// A [`ServerHandle`] backed by a peer thread behind a transport.
pub struct RuntimeHandle {
    transport: Arc<dyn Transport>,
    from: NodeId,
    to: NodeId,
    coordinate: Fp,
}

impl RuntimeHandle {
    /// A handle for calls `from → to`. The server's public Shamir
    /// x-coordinate is cached client-side (it is public scheme
    /// metadata, not worth a round trip).
    pub fn new(transport: Arc<dyn Transport>, from: NodeId, to: NodeId, coordinate: Fp) -> Self {
        Self {
            transport,
            from,
            to,
            coordinate,
        }
    }

    /// One round trip. Peers are in-process threads owned by the same
    /// deployment object, so a dead peer is a bug, not a recoverable
    /// condition — transport failures panic with context.
    fn round_trip(&self, auth: AuthToken, request: &Message) -> Message {
        self.transport
            .request(self.from, self.to, auth, request)
            .expect("index-server peer thread is alive for the deployment's lifetime")
    }
}

/// Decodes a fault frame into the `ServerError` it carries.
fn server_error(response: Message) -> ServerError {
    match response {
        Message::Fault { code, group } => ServerError::from_fault(code, group)
            .unwrap_or_else(|| panic!("peer returned a transport fault (code {code})")),
        other => panic!("protocol violation: unexpected response {other:?}"),
    }
}

impl ServerHandle for RuntimeHandle {
    fn coordinate(&self) -> Fp {
        self.coordinate
    }

    fn insert_batch(
        &self,
        token: AuthToken,
        entries: &[(PlId, StoredShare)],
    ) -> Result<(), ServerError> {
        let request = Message::InsertBatch {
            entries: entries.to_vec(),
        };
        match self.round_trip(token, &request) {
            Message::InsertOk => Ok(()),
            other => Err(server_error(other)),
        }
    }

    fn delete(
        &self,
        token: AuthToken,
        elements: &[(PlId, ElementId)],
    ) -> Result<usize, ServerError> {
        let request = Message::Delete {
            elements: elements.to_vec(),
        };
        match self.round_trip(token, &request) {
            Message::DeleteOk { removed } => Ok(removed as usize),
            other => Err(server_error(other)),
        }
    }

    fn get_posting_lists(
        &self,
        token: AuthToken,
        pl_ids: &[PlId],
    ) -> Result<Vec<(PlId, Vec<StoredShare>)>, ServerError> {
        let request = Message::Query {
            auth: token,
            pl_ids: pl_ids.to_vec(),
        };
        match self.round_trip(token, &request) {
            Message::QueryResponse { lists } => Ok(lists),
            other => Err(server_error(other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::peer::{PeerRuntime, ServerService};
    use zerber_index::{GroupId, UserId};
    use zerber_net::TrafficMeter;
    use zerber_server::{IndexServer, TokenAuth};

    fn world() -> (PeerRuntime, RuntimeHandle, AuthToken, Arc<TrafficMeter>) {
        let auth = Arc::new(TokenAuth::new());
        let server = Arc::new(IndexServer::new(0, Fp::new(3), auth.clone()));
        server.add_user_to_group(UserId(1), GroupId(0));
        let meter = Arc::new(TrafficMeter::new());
        let runtime = PeerRuntime::new(meter.clone());
        let node = NodeId::IndexServer(0);
        runtime.spawn_peer(node, move || ServerService::new(server));
        let handle = RuntimeHandle::new(
            runtime.transport().clone(),
            NodeId::User(1),
            node,
            Fp::new(3),
        );
        (runtime, handle, auth.issue(UserId(1)), meter)
    }

    #[test]
    fn traffic_is_recorded_in_both_directions() {
        let (_runtime, handle, token, meter) = world();
        let user = NodeId::User(1);
        let node = NodeId::IndexServer(0);

        let share = StoredShare {
            element: ElementId(1),
            group: GroupId(0),
            share: Fp::new(9),
        };
        handle.insert_batch(token, &[(PlId(0), share)]).unwrap();
        let upstream = meter.link_bytes(user, node);
        assert!(upstream > 0, "insert bytes recorded");

        let lists = handle.get_posting_lists(token, &[PlId(0)]).unwrap();
        assert_eq!(lists[0].1.len(), 1);
        assert!(meter.link_bytes(node, user) > 0, "response bytes recorded");
        assert!(meter.link_bytes(user, node) > upstream, "query bytes added");

        assert_eq!(handle.delete(token, &[(PlId(0), ElementId(1))]), Ok(1));
    }

    #[test]
    fn server_rejections_come_back_typed() {
        let (_runtime, handle, _token, _meter) = world();
        let bogus = AuthToken(4242);
        assert_eq!(
            handle.get_posting_lists(bogus, &[PlId(0)]).unwrap_err(),
            ServerError::AuthFailed
        );
        let share = StoredShare {
            element: ElementId(1),
            group: GroupId(7),
            share: Fp::new(1),
        };
        assert_eq!(
            handle.insert_batch(bogus, &[(PlId(0), share)]).unwrap_err(),
            ServerError::AuthFailed
        );
    }
}
