//! Peer threads and the services they run.
//!
//! A *peer* is one OS thread with an inbox on the
//! [`InProcTransport`]. The thread
//! decodes each request from its wire bytes, hands it to its
//! [`PeerService`], and replies with the encoded response. Two
//! services exist:
//!
//! * [`ServerService`] hosts a share-holding
//!   [`IndexServer`] — the paper's index-server role
//!   (insert/delete/lookup, Section 5), now executing off the caller's
//!   thread;
//! * [`ShardService`] hosts the *document shards* this peer carries —
//!   its own shard plus, under replication, copies of its
//!   predecessors' — behind the [`PostingStore`] trait, and answers
//!   [`Message::TopKQuery`] with the addressed shard's block-max
//!   top-k.
//!
//! Service state is built *inside* the peer thread (the spawn takes an
//! initializer closure), so expensive shard construction — tokenizing,
//! compressing posting blocks — runs on all peers in parallel and the
//! state never needs to be `Send`.

use std::collections::HashMap;
use std::sync::mpsc;
use std::sync::Arc;
use std::thread;

use zerber_index::cursor::TopKScratch;
use zerber_index::{Document, GroupId, PostingStore};
use zerber_net::message::fault;
use zerber_net::{AuthToken, Message, NodeId, TrafficMeter, WireDocument};
use zerber_server::{IndexServer, ServerError};

use crate::runtime::shard::{FrozenShard, ShardStore, ShardStoreError};
use crate::runtime::transport::{InProcTransport, PeerInbox};

/// One peer's request handler. `handle` runs on the peer's own thread;
/// requests from concurrent clients are serialized per peer, which is
/// exactly the contention the scalability experiment measures.
pub trait PeerService {
    /// Produces the response for one decoded request.
    fn handle(&mut self, from: NodeId, auth: AuthToken, request: Message) -> Message;
}

/// Translates a server-side rejection into its wire fault frame
/// (the mapping itself lives with [`ServerError`]).
fn fault_of(error: ServerError) -> Message {
    let (code, group) = error.to_fault();
    Message::Fault { code, group }
}

/// The index-server role as a peer service: the narrow
/// insert/delete/lookup interface, driven by decoded wire messages.
pub struct ServerService {
    server: Arc<IndexServer>,
}

impl ServerService {
    /// Wraps a server. The `Arc` is shared with the control plane
    /// (membership administration, proactive refresh, adversary
    /// views), which stays direct — only the data plane crosses the
    /// transport.
    pub fn new(server: Arc<IndexServer>) -> Self {
        Self { server }
    }
}

impl PeerService for ServerService {
    fn handle(&mut self, _from: NodeId, auth: AuthToken, request: Message) -> Message {
        match request {
            Message::InsertBatch { entries } => match self.server.insert_batch(auth, &entries) {
                Ok(()) => Message::InsertOk,
                Err(e) => fault_of(e),
            },
            Message::Delete { elements } => match self.server.delete(auth, &elements) {
                Ok(removed) => Message::DeleteOk {
                    removed: removed as u64,
                },
                Err(e) => fault_of(e),
            },
            // Queries carry their token in the message body (the wire
            // format of Section 5.4.2); the envelope token is the same
            // session token and is ignored here.
            Message::Query { auth, pl_ids } => match self.server.get_posting_lists(auth, &pl_ids) {
                Ok(lists) => Message::QueryResponse { lists },
                Err(e) => fault_of(e),
            },
            _ => Message::Fault {
                code: fault::UNSUPPORTED,
                group: GroupId(0),
            },
        }
    }
}

/// The document shards one peer hosts: ranked reads plus the live
/// write stream, each request addressed to a logical shard by id.
///
/// Without replication a peer hosts exactly its own shard; with
/// `R`-fold replication it also carries copies of its `R - 1`
/// predecessors' shards (see `zerber_dht::ShardMap::hosted_shards`),
/// and the `shard` field on [`Message::TopKQuery`] /
/// [`Message::IndexDocs`] / [`Message::RemoveDoc`] selects which
/// store serves the request. A request addressed to a shard this peer
/// does not host bounces as an `UNSUPPORTED` fault — reported, never
/// silently misrouted.
///
/// Queries run the lazy [`ShardStore::query_topk`] pipeline — cursor-
/// driven block-max top-k over
/// [`PostingStore::query_cursors`], so the compressed and segmented
/// backends peek their stored block-max skip metadata and only
/// decompress blocks that survive the upper-bound test. The service
/// owns the [`TopKScratch`] (top-k heap + result buffer), reused
/// across every RPC this peer serves: the fan-out hot path stops
/// allocating per query. [`Message::IndexDocs`] and
/// [`Message::RemoveDoc`] mutate the addressed shard; a frozen shard
/// answers them with an `UNSUPPORTED` fault, a durable shard that
/// fails to persist answers `STORAGE`.
///
/// # No access control
///
/// Unlike the share path (where [`ServerService`] authenticates every
/// request and filters by group ACL), a shard peer serves its whole
/// collection to any caller and ignores the session token: it models
/// the *plaintext baseline* serving engine, where confidentiality is
/// out of scope and scale is the subject. Do not put
/// access-controlled collections behind it.
pub struct ShardService {
    /// The stores this peer hosts, by logical shard id.
    stores: HashMap<u32, Box<dyn ShardStore>>,
    /// Per-peer reusable query scratch (heap, result buffer), shared
    /// across all hosted stores (requests are serialized per peer).
    scratch: TopKScratch,
}

/// Validates and converts one wire document. Wire input is untrusted:
/// unsorted or duplicate terms would violate `Document`'s invariant
/// (and panic deep in the index), so they bounce as `MALFORMED`.
fn decode_document(wire: WireDocument) -> Option<Document> {
    if !wire.terms.windows(2).all(|w| w[0].0 < w[1].0) {
        return None;
    }
    Some(Document {
        id: wire.doc,
        group: wire.group,
        terms: wire.terms,
        length: wire.length,
    })
}

fn shard_fault(error: ShardStoreError) -> Message {
    Message::Fault {
        code: match error {
            ShardStoreError::Frozen => fault::UNSUPPORTED,
            ShardStoreError::Storage(_) => fault::STORAGE,
        },
        group: GroupId(0),
    }
}

impl ShardService {
    /// Serves a single store as logical shard 0 (the unreplicated
    /// deployment shape).
    pub fn new(shard: Box<dyn ShardStore>) -> Self {
        Self::hosting(std::iter::once((0, shard)))
    }

    /// Serves several shard stores, each addressed by its logical
    /// shard id.
    pub fn hosting(stores: impl IntoIterator<Item = (u32, Box<dyn ShardStore>)>) -> Self {
        Self {
            stores: stores.into_iter().collect(),
            scratch: TopKScratch::new(),
        }
    }

    /// Serves a frozen posting store (any backend) read-only as shard
    /// 0 — the pre-ingest constructor, kept for bulk-built
    /// deployments.
    pub fn frozen(store: Box<dyn PostingStore>) -> Self {
        Self::new(Box::new(FrozenShard::new(store)))
    }
}

impl PeerService for ShardService {
    fn handle(&mut self, _from: NodeId, _auth: AuthToken, request: Message) -> Message {
        let malformed = Message::Fault {
            code: fault::MALFORMED,
            group: GroupId(0),
        };
        let not_hosted = Message::Fault {
            code: fault::UNSUPPORTED,
            group: GroupId(0),
        };
        // Captured before the match consumes `request`: IndexDocs and
        // BulkLoad share one arm and differ only in the write path.
        let offline = matches!(request, Message::BulkLoad { .. });
        match request {
            Message::TopKQuery { shard, terms, k } => {
                // Wire input is untrusted (the transport is designed
                // to be swappable for sockets): a NaN weight would
                // panic this thread inside the result ordering, and a
                // negative one would turn the block maxima into lower
                // bounds and silently corrupt the pruning. Reject both
                // as malformed.
                if terms
                    .iter()
                    .any(|&(_, weight)| !weight.is_finite() || weight < 0.0)
                {
                    return malformed;
                }
                let Some(store) = self.stores.get_mut(&shard) else {
                    return not_hosted;
                };
                // Time the shard-local evaluation and ship the decode
                // accounting back with the candidates: the querying
                // client assembles its trace (and folds the counters
                // into *its* registry) from the response alone, so
                // in-process and remote socket peers report
                // identically.
                let started = std::time::Instant::now();
                let cost = store.query_topk(&terms, k as usize, &mut self.scratch);
                Message::TopKResponse {
                    decode_ns: started.elapsed().as_nanos() as u64,
                    blocks_decoded: cost.blocks_decoded as u32,
                    blocks_total: cost.blocks_total as u32,
                    candidates: self
                        .scratch
                        .ranked
                        .iter()
                        .map(|r| (r.doc, r.score))
                        .collect(),
                }
            }
            Message::PlanQuery {
                shard,
                shape,
                forced,
                terms,
                k,
            } => {
                // Same untrusted-input stance as TopKQuery, plus the
                // two raw bytes the planner consumes: an unknown shape
                // or override is malformed, not a panic.
                if terms
                    .iter()
                    .any(|&(_, weight)| !weight.is_finite() || weight < 0.0)
                {
                    return malformed;
                }
                let (Some(shape), Some(forced)) = (
                    zerber_query::QueryShape::from_u8(shape),
                    zerber_query::Forced::from_u8(forced),
                ) else {
                    return malformed;
                };
                let Some(store) = self.stores.get_mut(&shard) else {
                    return not_hosted;
                };
                let started = std::time::Instant::now();
                let outcome =
                    store.query_planned(shape, &terms, k as usize, forced, &mut self.scratch);
                Message::TopKResponse {
                    decode_ns: started.elapsed().as_nanos() as u64,
                    blocks_decoded: outcome.cost.blocks_decoded as u32,
                    blocks_total: outcome.cost.blocks_total as u32,
                    candidates: outcome.ranked.iter().map(|r| (r.doc, r.score)).collect(),
                }
            }
            Message::IndexDocs { shard, docs } | Message::BulkLoad { shard, docs } => {
                let mut decoded = Vec::with_capacity(docs.len());
                for wire in docs {
                    match decode_document(wire) {
                        Some(doc) => decoded.push(doc),
                        None => return malformed,
                    }
                }
                let Some(store) = self.stores.get_mut(&shard) else {
                    return not_hosted;
                };
                let written = if offline {
                    store.bulk_load_documents(&decoded)
                } else {
                    store.insert_documents(&decoded)
                };
                match written {
                    Ok(_) => Message::InsertOk,
                    Err(e) => shard_fault(e),
                }
            }
            Message::RemoveDoc { shard, doc } => {
                let Some(store) = self.stores.get_mut(&shard) else {
                    return not_hosted;
                };
                match store.delete_document(doc) {
                    Ok(removed) => Message::DeleteOk {
                        removed: u64::from(removed),
                    },
                    Err(e) => shard_fault(e),
                }
            }
            _ => not_hosted,
        }
    }
}

/// A set of peer threads sharing one transport. Dropping the runtime
/// shuts every peer down and joins its thread.
pub struct PeerRuntime {
    transport: Arc<InProcTransport>,
    peers: Vec<(NodeId, thread::JoinHandle<()>)>,
}

impl PeerRuntime {
    /// An empty runtime accounting traffic on `meter`.
    pub fn new(meter: Arc<TrafficMeter>) -> Self {
        Self {
            transport: Arc::new(InProcTransport::new(meter)),
            peers: Vec::new(),
        }
    }

    /// The shared transport (clone the `Arc` into client handles).
    pub fn transport(&self) -> &Arc<InProcTransport> {
        &self.transport
    }

    /// Addresses of all spawned peers, in spawn order.
    pub fn nodes(&self) -> Vec<NodeId> {
        self.peers.iter().map(|(node, _)| *node).collect()
    }

    /// Number of live peers.
    pub fn peer_count(&self) -> usize {
        self.peers.len()
    }

    /// Spawns one peer thread at `node`. `init` runs *on the new
    /// thread* to build the service state, so per-peer construction
    /// (e.g. indexing a document shard) parallelizes across peers.
    pub fn spawn_peer<F, S>(&mut self, node: NodeId, init: F)
    where
        F: FnOnce() -> S + Send + 'static,
        S: PeerService + 'static,
    {
        let (inbox, requests) = mpsc::channel();
        self.transport.register(node, inbox);
        let handle = thread::spawn(move || {
            let mut service = init();
            // Ends on an explicit `Shutdown` or when every sender is
            // dropped.
            while let Ok(PeerInbox::Request(envelope)) = requests.recv() {
                let response = match Message::decode(&envelope.payload) {
                    Ok(request) => service.handle(envelope.from, envelope.auth, request),
                    Err(_) => Message::Fault {
                        code: fault::MALFORMED,
                        group: GroupId(0),
                    },
                };
                envelope.reply.send(response.encode().to_vec());
            }
        });
        self.peers.push((node, handle));
    }
}

impl Drop for PeerRuntime {
    fn drop(&mut self) {
        for (node, _) in &self.peers {
            self.transport.shutdown(*node);
        }
        for (_, handle) in self.peers.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::transport::Transport;
    use zerber_field::Fp;
    use zerber_index::{DocId, Document, InvertedIndex, RawPostingStore, TermId, UserId};
    use zerber_server::TokenAuth;

    #[test]
    fn server_peer_answers_over_the_wire() {
        let auth = Arc::new(TokenAuth::new());
        let server = Arc::new(IndexServer::new(0, Fp::new(5), auth.clone()));
        server.add_user_to_group(UserId(1), GroupId(0));
        let token = auth.issue(UserId(1));

        let mut runtime = PeerRuntime::new(Arc::new(TrafficMeter::new()));
        let node = NodeId::IndexServer(0);
        runtime.spawn_peer(node, move || ServerService::new(server));
        let transport = runtime.transport().clone();

        let share = zerber_net::StoredShare {
            element: zerber_core::ElementId(1),
            group: GroupId(0),
            share: Fp::new(9),
        };
        let insert = Message::InsertBatch {
            entries: vec![(zerber_core::PlId(0), share)],
        };
        let response = transport
            .request(NodeId::Owner(0), node, token, &insert)
            .unwrap();
        assert_eq!(response, Message::InsertOk);

        let query = Message::Query {
            auth: token,
            pl_ids: vec![zerber_core::PlId(0)],
        };
        match transport
            .request(NodeId::User(1), node, token, &query)
            .unwrap()
        {
            Message::QueryResponse { lists } => assert_eq!(lists[0].1.len(), 1),
            other => panic!("unexpected response {other:?}"),
        }

        // An unauthenticated token comes back as a typed fault.
        match transport
            .request(NodeId::Owner(0), node, AuthToken(999), &insert)
            .unwrap()
        {
            Message::Fault { code, group } => {
                assert_eq!(
                    ServerError::from_fault(code, group),
                    Some(ServerError::AuthFailed)
                );
            }
            other => panic!("unexpected response {other:?}"),
        }
    }

    #[test]
    fn shard_peer_ranks_its_documents() {
        let docs: Vec<Document> = (1..=3u32)
            .map(|d| Document::from_term_counts(DocId(d), GroupId(0), vec![(TermId(1), d)]))
            .collect();
        let index = InvertedIndex::from_documents(&docs);
        let mut runtime = PeerRuntime::new(Arc::new(TrafficMeter::new()));
        let node = NodeId::IndexServer(0);
        runtime.spawn_peer(node, move || {
            ShardService::frozen(Box::new(RawPostingStore::from_index(&index)))
        });

        let query = Message::TopKQuery {
            shard: 0,
            terms: vec![(TermId(1), 1.0)],
            k: 2,
        };
        match runtime
            .transport()
            .request(NodeId::User(0), node, AuthToken(0), &query)
            .unwrap()
        {
            Message::TopKResponse { candidates, .. } => {
                assert_eq!(candidates.len(), 2);
                // All three docs have length d, so tf = count/length = 1
                // everywhere and ties break by doc id.
                assert_eq!(candidates[0].0, DocId(1));
            }
            other => panic!("unexpected response {other:?}"),
        }
    }

    #[test]
    fn hostile_weights_are_rejected_not_served() {
        let docs = vec![Document::from_term_counts(DocId(1), GroupId(0), vec![(TermId(1), 1)]); 1];
        let index = InvertedIndex::from_documents(&docs);
        let mut runtime = PeerRuntime::new(Arc::new(TrafficMeter::new()));
        let node = NodeId::IndexServer(0);
        runtime.spawn_peer(node, move || {
            ShardService::frozen(Box::new(RawPostingStore::from_index(&index)))
        });
        for weight in [f64::NAN, f64::INFINITY, -1.0] {
            let query = Message::TopKQuery {
                shard: 0,
                terms: vec![(TermId(1), weight)],
                k: 1,
            };
            match runtime
                .transport()
                .request(NodeId::User(0), node, AuthToken(0), &query)
                .unwrap()
            {
                Message::Fault { code, .. } => assert_eq!(code, fault::MALFORMED),
                other => panic!("weight {weight} produced {other:?}"),
            }
        }
        // The peer survived and still serves valid queries.
        let ok = Message::TopKQuery {
            shard: 0,
            terms: vec![(TermId(1), 1.0)],
            k: 1,
        };
        match runtime
            .transport()
            .request(NodeId::User(0), node, AuthToken(0), &ok)
            .unwrap()
        {
            Message::TopKResponse { candidates, .. } => assert_eq!(candidates.len(), 1),
            other => panic!("unexpected response {other:?}"),
        }
    }

    #[test]
    fn wrong_request_type_is_a_typed_fault() {
        let mut runtime = PeerRuntime::new(Arc::new(TrafficMeter::new()));
        let node = NodeId::IndexServer(0);
        runtime.spawn_peer(node, || {
            ShardService::frozen(Box::new(RawPostingStore::default()))
        });
        match runtime
            .transport()
            .request(NodeId::User(0), node, AuthToken(0), &Message::InsertOk)
            .unwrap()
        {
            Message::Fault { code, .. } => assert_eq!(code, fault::UNSUPPORTED),
            other => panic!("unexpected response {other:?}"),
        }
    }

    #[test]
    fn frozen_shards_fault_on_mutation_frames() {
        let mut runtime = PeerRuntime::new(Arc::new(TrafficMeter::new()));
        let node = NodeId::IndexServer(0);
        runtime.spawn_peer(node, || {
            ShardService::frozen(Box::new(RawPostingStore::default()))
        });
        let insert = Message::IndexDocs {
            shard: 0,
            docs: vec![zerber_net::WireDocument {
                doc: DocId(1),
                group: GroupId(0),
                length: 1,
                terms: vec![(TermId(0), 1)],
            }],
        };
        for request in [
            insert,
            Message::RemoveDoc {
                shard: 0,
                doc: DocId(1),
            },
        ] {
            match runtime
                .transport()
                .request(NodeId::Owner(0), node, AuthToken(0), &request)
                .unwrap()
            {
                Message::Fault { code, .. } => assert_eq!(code, fault::UNSUPPORTED),
                other => panic!("unexpected response {other:?}"),
            }
        }
    }

    #[test]
    fn mutable_shard_takes_inserts_and_deletes_over_the_wire() {
        use crate::runtime::shard::LiveIndexShard;
        let mut runtime = PeerRuntime::new(Arc::new(TrafficMeter::new()));
        let node = NodeId::IndexServer(0);
        runtime.spawn_peer(node, || {
            ShardService::new(Box::new(LiveIndexShard::raw(&[])))
        });
        let transport = runtime.transport().clone();
        let insert = Message::IndexDocs {
            shard: 0,
            docs: vec![zerber_net::WireDocument {
                doc: DocId(4),
                group: GroupId(0),
                length: 3,
                terms: vec![(TermId(2), 3)],
            }],
        };
        assert_eq!(
            transport
                .request(NodeId::Owner(0), node, AuthToken(0), &insert)
                .unwrap(),
            Message::InsertOk
        );
        let query = Message::TopKQuery {
            shard: 0,
            terms: vec![(TermId(2), 1.0)],
            k: 5,
        };
        match transport
            .request(NodeId::User(0), node, AuthToken(0), &query)
            .unwrap()
        {
            Message::TopKResponse { candidates, .. } => {
                assert_eq!(candidates.len(), 1);
                assert_eq!(candidates[0].0, DocId(4));
            }
            other => panic!("unexpected response {other:?}"),
        }
        assert_eq!(
            transport
                .request(
                    NodeId::Owner(0),
                    node,
                    AuthToken(0),
                    &Message::RemoveDoc {
                        shard: 0,
                        doc: DocId(4)
                    }
                )
                .unwrap(),
            Message::DeleteOk { removed: 1 }
        );
        match transport
            .request(NodeId::User(0), node, AuthToken(0), &query)
            .unwrap()
        {
            Message::TopKResponse { candidates, .. } => assert!(candidates.is_empty()),
            other => panic!("unexpected response {other:?}"),
        }
        // Unsorted wire terms violate the Document invariant: rejected,
        // peer survives.
        let hostile = Message::IndexDocs {
            shard: 0,
            docs: vec![zerber_net::WireDocument {
                doc: DocId(5),
                group: GroupId(0),
                length: 2,
                terms: vec![(TermId(3), 1), (TermId(3), 1)],
            }],
        };
        match transport
            .request(NodeId::Owner(0), node, AuthToken(0), &hostile)
            .unwrap()
        {
            Message::Fault { code, .. } => assert_eq!(code, fault::MALFORMED),
            other => panic!("unexpected response {other:?}"),
        }
    }
}
