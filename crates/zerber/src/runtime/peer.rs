//! Peer threads and the services they run.
//!
//! A *peer* is one OS thread with an inbox on the
//! [`InProcTransport`]. The thread
//! decodes each request from its wire bytes, hands it to its
//! [`PeerService`], and replies with the encoded response. Two
//! services exist:
//!
//! * [`ServerService`] hosts a share-holding
//!   [`IndexServer`] — the paper's index-server role
//!   (insert/delete/lookup, Section 5), now executing off the caller's
//!   thread;
//! * [`ShardService`] hosts the *document shards* this peer carries —
//!   its own shard plus, under replication, copies of its
//!   predecessors' — behind the [`PostingStore`] trait, and answers
//!   [`Message::TopKQuery`] with the addressed shard's block-max
//!   top-k.
//!
//! Service state is built *inside* the peer thread (the spawn takes an
//! initializer closure), so expensive shard construction — tokenizing,
//! compressing posting blocks — runs on all peers in parallel and the
//! state never needs to be `Send`.

use std::collections::HashMap;
use std::sync::mpsc;
use std::sync::Arc;
use std::thread;

use parking_lot::Mutex;

use zerber_index::cursor::TopKScratch;
use zerber_index::{DocId, Document, GroupId, PostingStore};
use zerber_net::framing::crc32;
use zerber_net::message::fault;
use zerber_net::{AuthToken, Message, NodeId, TrafficMeter, WireDocument};
use zerber_server::{IndexServer, ServerError};

use crate::runtime::shard::{FrozenShard, ShardStore, ShardStoreError};
use crate::runtime::transport::{InProcTransport, PeerInbox};

/// One peer's request handler. `handle` runs on the peer's own thread;
/// requests from concurrent clients are serialized per peer, which is
/// exactly the contention the scalability experiment measures.
pub trait PeerService {
    /// Produces the response for one decoded request.
    fn handle(&mut self, from: NodeId, auth: AuthToken, request: Message) -> Message;
}

/// Translates a server-side rejection into its wire fault frame
/// (the mapping itself lives with [`ServerError`]).
fn fault_of(error: ServerError) -> Message {
    let (code, group) = error.to_fault();
    Message::Fault { code, group }
}

/// The index-server role as a peer service: the narrow
/// insert/delete/lookup interface, driven by decoded wire messages.
pub struct ServerService {
    server: Arc<IndexServer>,
}

impl ServerService {
    /// Wraps a server. The `Arc` is shared with the control plane
    /// (membership administration, proactive refresh, adversary
    /// views), which stays direct — only the data plane crosses the
    /// transport.
    pub fn new(server: Arc<IndexServer>) -> Self {
        Self { server }
    }
}

impl PeerService for ServerService {
    fn handle(&mut self, _from: NodeId, auth: AuthToken, request: Message) -> Message {
        match request {
            Message::InsertBatch { entries } => match self.server.insert_batch(auth, &entries) {
                Ok(()) => Message::InsertOk,
                Err(e) => fault_of(e),
            },
            Message::Delete { elements } => match self.server.delete(auth, &elements) {
                Ok(removed) => Message::DeleteOk {
                    removed: removed as u64,
                },
                Err(e) => fault_of(e),
            },
            // Queries carry their token in the message body (the wire
            // format of Section 5.4.2); the envelope token is the same
            // session token and is ignored here.
            Message::Query { auth, pl_ids } => match self.server.get_posting_lists(auth, &pl_ids) {
                Ok(lists) => Message::QueryResponse { lists },
                Err(e) => fault_of(e),
            },
            _ => Message::Fault {
                code: fault::UNSUPPORTED,
                group: GroupId(0),
            },
        }
    }
}

/// The document shards one peer hosts: ranked reads plus the live
/// write stream, each request addressed to a logical shard by id.
///
/// Without replication a peer hosts exactly its own shard; with
/// `R`-fold replication it also carries copies of its `R - 1`
/// predecessors' shards (see `zerber_dht::ShardMap::hosted_shards`),
/// and the `shard` field on [`Message::TopKQuery`] /
/// [`Message::IndexDocs`] / [`Message::RemoveDoc`] selects which
/// store serves the request. A request addressed to a shard this peer
/// does not host bounces as an `UNSUPPORTED` fault — reported, never
/// silently misrouted.
///
/// Queries run the lazy [`ShardStore::query_topk`] pipeline — cursor-
/// driven block-max top-k over
/// [`PostingStore::query_cursors`], so the compressed and segmented
/// backends peek their stored block-max skip metadata and only
/// decompress blocks that survive the upper-bound test. The service
/// owns the [`TopKScratch`] (top-k heap + result buffer), reused
/// across every RPC this peer serves: the fan-out hot path stops
/// allocating per query. [`Message::IndexDocs`] and
/// [`Message::RemoveDoc`] mutate the addressed shard; a frozen shard
/// answers them with an `UNSUPPORTED` fault, a durable shard that
/// fails to persist answers `STORAGE`.
///
/// # No access control
///
/// Unlike the share path (where [`ServerService`] authenticates every
/// request and filters by group ACL), a shard peer serves its whole
/// collection to any caller and ignores the session token: it models
/// the *plaintext baseline* serving engine, where confidentiality is
/// out of scope and scale is the subject. Do not put
/// access-controlled collections behind it.
pub struct ShardService {
    /// The stores this peer hosts, by logical shard id.
    stores: HashMap<u32, HostedShard>,
    /// Per-peer reusable query scratch (heap, result buffer), shared
    /// across all hosted stores (requests are serialized per peer).
    scratch: TopKScratch,
    /// Frozen snapshots awaiting [`Message::FetchSegment`] pulls, per
    /// shard (this peer acting as a rebuild *source*). Replaced by the
    /// next [`Message::PrepareSnapshot`] for the same shard.
    pending_snapshot: HashMap<u32, Vec<(String, Vec<u8>)>>,
    /// Builds a shard store from installed snapshot files (this peer
    /// acting as a rebuild *target*). Services launched without one
    /// answer [`Message::InstallShard`] commits with `UNSUPPORTED`.
    restore: Option<RestoreFn>,
}

/// Builds a shard store from a shipped snapshot: `(shard, files)` →
/// store. Runs on the peer's own thread (it is handed to the service
/// inside the spawn initializer), so it needs no `Send` bound of its
/// own.
pub type RestoreFn =
    Box<dyn FnMut(u32, &[(String, Vec<u8>)]) -> Result<Box<dyn ShardStore>, ShardStoreError>>;

/// One write frame buffered while its shard rebuilds, replayed in
/// arrival order at commit. Replay is idempotent — a write that also
/// made the shipped snapshot re-applies as a same-bytes replacement
/// (doc-level shadowing), so the buffer may safely overlap the
/// snapshot.
enum BufferedWrite {
    /// A live [`Message::IndexDocs`] batch.
    Insert(Vec<Document>),
    /// An offline [`Message::BulkLoad`] batch.
    Bulk(Vec<Document>),
    /// A [`Message::RemoveDoc`].
    Remove(DocId),
}

/// The serving state of one hosted shard.
enum HostedShard {
    /// Normal operation: reads and writes hit the store directly.
    Serving(Box<dyn ShardStore>),
    /// Mid-rebuild: snapshot files stage here, reads bounce with
    /// [`fault::REBUILDING`] (the hedged gather fails over to a live
    /// replica), and writes are acknowledged into the replay buffer so
    /// the cluster-wide all-replicas-ack write discipline keeps
    /// working while the copy is shipped.
    Rebuilding {
        staged: Vec<(String, Vec<u8>)>,
        buffered: Vec<BufferedWrite>,
    },
}

/// Validates and converts one wire document. Wire input is untrusted:
/// unsorted or duplicate terms would violate `Document`'s invariant
/// (and panic deep in the index), so they bounce as `MALFORMED`.
fn decode_document(wire: WireDocument) -> Option<Document> {
    if !wire.terms.windows(2).all(|w| w[0].0 < w[1].0) {
        return None;
    }
    Some(Document {
        id: wire.doc,
        group: wire.group,
        terms: wire.terms,
        length: wire.length,
    })
}

fn shard_fault(error: ShardStoreError) -> Message {
    Message::Fault {
        code: match error {
            ShardStoreError::Frozen => fault::UNSUPPORTED,
            ShardStoreError::Storage(_) => fault::STORAGE,
        },
        group: GroupId(0),
    }
}

impl ShardService {
    /// Serves a single store as logical shard 0 (the unreplicated
    /// deployment shape).
    pub fn new(shard: Box<dyn ShardStore>) -> Self {
        Self::hosting(std::iter::once((0, shard)))
    }

    /// Serves several shard stores, each addressed by its logical
    /// shard id.
    pub fn hosting(stores: impl IntoIterator<Item = (u32, Box<dyn ShardStore>)>) -> Self {
        Self {
            stores: stores
                .into_iter()
                .map(|(shard, store)| (shard, HostedShard::Serving(store)))
                .collect(),
            scratch: TopKScratch::new(),
            pending_snapshot: HashMap::new(),
            restore: None,
        }
    }

    /// A service whose every hosted shard starts mid-rebuild: writes
    /// buffer from the first request, reads bounce with
    /// [`fault::REBUILDING`]. This is the *revived replica* launch
    /// shape — a peer respawned after a kill must never serve the
    /// stale (or empty) state it woke up with; it buffers until the
    /// repair controller ships it a snapshot and commits.
    pub fn rebuilding(shards: impl IntoIterator<Item = u32>) -> Self {
        Self {
            stores: shards
                .into_iter()
                .map(|shard| {
                    (
                        shard,
                        HostedShard::Rebuilding {
                            staged: Vec::new(),
                            buffered: Vec::new(),
                        },
                    )
                })
                .collect(),
            scratch: TopKScratch::new(),
            pending_snapshot: HashMap::new(),
            restore: None,
        }
    }

    /// Installs the snapshot-restore factory, enabling this service to
    /// be a rebuild *target* (see [`Message::InstallShard`]).
    /// Builder-style.
    pub fn with_restore(mut self, restore: RestoreFn) -> Self {
        self.restore = Some(restore);
        self
    }

    /// Serves a frozen posting store (any backend) read-only as shard
    /// 0 — the pre-ingest constructor, kept for bulk-built
    /// deployments.
    pub fn frozen(store: Box<dyn PostingStore>) -> Self {
        Self::new(Box::new(FrozenShard::new(store)))
    }
}

impl PeerService for ShardService {
    fn handle(&mut self, _from: NodeId, _auth: AuthToken, request: Message) -> Message {
        let malformed = Message::Fault {
            code: fault::MALFORMED,
            group: GroupId(0),
        };
        let not_hosted = Message::Fault {
            code: fault::UNSUPPORTED,
            group: GroupId(0),
        };
        let rebuilding = Message::Fault {
            code: fault::REBUILDING,
            group: GroupId(0),
        };
        let repair_fault = Message::Fault {
            code: fault::REPAIR,
            group: GroupId(0),
        };
        // Captured before the match consumes `request`: IndexDocs and
        // BulkLoad share one arm and differ only in the write path.
        let offline = matches!(request, Message::BulkLoad { .. });
        match request {
            Message::TopKQuery { shard, terms, k } => {
                // Wire input is untrusted (the transport is designed
                // to be swappable for sockets): a NaN weight would
                // panic this thread inside the result ordering, and a
                // negative one would turn the block maxima into lower
                // bounds and silently corrupt the pruning. Reject both
                // as malformed.
                if terms
                    .iter()
                    .any(|&(_, weight)| !weight.is_finite() || weight < 0.0)
                {
                    return malformed;
                }
                let store = match self.stores.get_mut(&shard) {
                    Some(HostedShard::Serving(store)) => store,
                    Some(HostedShard::Rebuilding { .. }) => return rebuilding,
                    None => return not_hosted,
                };
                // Time the shard-local evaluation and ship the decode
                // accounting back with the candidates: the querying
                // client assembles its trace (and folds the counters
                // into *its* registry) from the response alone, so
                // in-process and remote socket peers report
                // identically.
                let started = std::time::Instant::now();
                let cost = store.query_topk(&terms, k as usize, &mut self.scratch);
                Message::TopKResponse {
                    decode_ns: started.elapsed().as_nanos() as u64,
                    blocks_decoded: cost.blocks_decoded as u32,
                    blocks_total: cost.blocks_total as u32,
                    candidates: self
                        .scratch
                        .ranked
                        .iter()
                        .map(|r| (r.doc, r.score))
                        .collect(),
                }
            }
            Message::PlanQuery {
                shard,
                shape,
                forced,
                terms,
                k,
            } => {
                // Same untrusted-input stance as TopKQuery, plus the
                // two raw bytes the planner consumes: an unknown shape
                // or override is malformed, not a panic.
                if terms
                    .iter()
                    .any(|&(_, weight)| !weight.is_finite() || weight < 0.0)
                {
                    return malformed;
                }
                let (Some(shape), Some(forced)) = (
                    zerber_query::QueryShape::from_u8(shape),
                    zerber_query::Forced::from_u8(forced),
                ) else {
                    return malformed;
                };
                let store = match self.stores.get_mut(&shard) {
                    Some(HostedShard::Serving(store)) => store,
                    Some(HostedShard::Rebuilding { .. }) => return rebuilding,
                    None => return not_hosted,
                };
                let started = std::time::Instant::now();
                let outcome =
                    store.query_planned(shape, &terms, k as usize, forced, &mut self.scratch);
                Message::TopKResponse {
                    decode_ns: started.elapsed().as_nanos() as u64,
                    blocks_decoded: outcome.cost.blocks_decoded as u32,
                    blocks_total: outcome.cost.blocks_total as u32,
                    candidates: outcome.ranked.iter().map(|r| (r.doc, r.score)).collect(),
                }
            }
            Message::IndexDocs { shard, docs } | Message::BulkLoad { shard, docs } => {
                let mut decoded = Vec::with_capacity(docs.len());
                for wire in docs {
                    match decode_document(wire) {
                        Some(doc) => decoded.push(doc),
                        None => return malformed,
                    }
                }
                match self.stores.get_mut(&shard) {
                    Some(HostedShard::Serving(store)) => {
                        let written = if offline {
                            store.bulk_load_documents(&decoded)
                        } else {
                            store.insert_documents(&decoded)
                        };
                        match written {
                            Ok(_) => Message::InsertOk,
                            Err(e) => shard_fault(e),
                        }
                    }
                    Some(HostedShard::Rebuilding { buffered, .. }) => {
                        // Acknowledge into the replay buffer: the
                        // cluster-wide all-replicas-ack discipline keeps
                        // committing while this copy is shipped, and the
                        // buffer replays (idempotently) at commit.
                        buffered.push(if offline {
                            BufferedWrite::Bulk(decoded)
                        } else {
                            BufferedWrite::Insert(decoded)
                        });
                        Message::InsertOk
                    }
                    None => not_hosted,
                }
            }
            Message::RemoveDoc { shard, doc } => {
                match self.stores.get_mut(&shard) {
                    Some(HostedShard::Serving(store)) => match store.delete_document(doc) {
                        Ok(removed) => Message::DeleteOk {
                            removed: u64::from(removed),
                        },
                        Err(e) => shard_fault(e),
                    },
                    Some(HostedShard::Rebuilding { buffered, .. }) => {
                        // `removed: 0` — this copy cannot know whether the
                        // doc exists; a live replica's count wins at the
                        // coordinator.
                        buffered.push(BufferedWrite::Remove(doc));
                        Message::DeleteOk { removed: 0 }
                    }
                    None => not_hosted,
                }
            }
            Message::PrepareSnapshot { shard } => {
                // Rebuild *source* side: freeze a consistent file-set
                // snapshot of the shard and advertise it. The files are
                // cached whole until the next PrepareSnapshot for the
                // same shard, so FetchSegment pulls are repeatable.
                let store = match self.stores.get_mut(&shard) {
                    Some(HostedShard::Serving(store)) => store,
                    Some(HostedShard::Rebuilding { .. }) => return rebuilding,
                    None => return not_hosted,
                };
                match store.export_snapshot() {
                    Ok((epoch, files)) => {
                        let manifest = files
                            .iter()
                            .map(|(name, bytes)| (name.clone(), bytes.len() as u64, crc32(bytes)))
                            .collect();
                        self.pending_snapshot.insert(shard, files);
                        Message::SnapshotManifest {
                            shard,
                            epoch,
                            files: manifest,
                        }
                    }
                    Err(e) => shard_fault(e),
                }
            }
            Message::FetchSegment { shard, name } => {
                let Some(files) = self.pending_snapshot.get(&shard) else {
                    return repair_fault;
                };
                match files.iter().find(|(n, _)| *n == name) {
                    Some((_, bytes)) => Message::SegmentData {
                        crc: crc32(bytes),
                        payload: zerber_net::Bytes::copy_from_slice(bytes),
                    },
                    None => repair_fault,
                }
            }
            Message::InstallShard {
                shard,
                name,
                crc,
                commit,
                payload,
                ..
            } => {
                // Rebuild *target* side. Three frame shapes:
                //   begin  — empty name, commit=false: enter Rebuilding
                //            (writes start buffering *before* the source
                //            snapshots, so no write can fall between),
                //   file   — named, commit=false: stage one CRC-checked
                //            snapshot file,
                //   commit — commit=true: restore a store from the staged
                //            files, replay the buffer, cut over.
                if !commit && name.is_empty() {
                    match self.stores.entry(shard) {
                        std::collections::hash_map::Entry::Occupied(mut slot) => {
                            match slot.get_mut() {
                                // Restart of a failed ship: keep the
                                // buffered writes (they are still owed),
                                // drop stale staged files.
                                HostedShard::Rebuilding { staged, .. } => staged.clear(),
                                serving => {
                                    *serving = HostedShard::Rebuilding {
                                        staged: Vec::new(),
                                        buffered: Vec::new(),
                                    };
                                }
                            }
                        }
                        std::collections::hash_map::Entry::Vacant(slot) => {
                            // A shard this peer is *gaining* (join
                            // rebalance): host it, buffering from now.
                            slot.insert(HostedShard::Rebuilding {
                                staged: Vec::new(),
                                buffered: Vec::new(),
                            });
                        }
                    }
                    return Message::InsertOk;
                }
                if !commit {
                    if crc32(&payload) != crc {
                        return repair_fault;
                    }
                    return match self.stores.get_mut(&shard) {
                        Some(HostedShard::Rebuilding { staged, .. }) => {
                            staged.push((name, payload.to_vec()));
                            Message::InsertOk
                        }
                        // File frame without a begin: protocol error.
                        _ => repair_fault,
                    };
                }
                let Some(restore) = self.restore.as_mut() else {
                    return not_hosted;
                };
                let (staged, buffered) = match self.stores.remove(&shard) {
                    Some(HostedShard::Rebuilding { staged, buffered }) => (staged, buffered),
                    // Commit without a begin (or on a serving shard):
                    // protocol error, and the serving store must stay.
                    Some(serving) => {
                        self.stores.insert(shard, serving);
                        return repair_fault;
                    }
                    None => return repair_fault,
                };
                let mut store = match restore(shard, &staged) {
                    Ok(store) => store,
                    Err(_) => {
                        // Keep the owed writes; the controller re-ships.
                        self.stores.insert(
                            shard,
                            HostedShard::Rebuilding {
                                staged: Vec::new(),
                                buffered,
                            },
                        );
                        return repair_fault;
                    }
                };
                for write in buffered {
                    let applied = match write {
                        BufferedWrite::Insert(docs) => store.insert_documents(&docs).map(|_| ()),
                        BufferedWrite::Bulk(docs) => store.bulk_load_documents(&docs).map(|_| ()),
                        BufferedWrite::Remove(doc) => store.delete_document(doc).map(|_| ()),
                    };
                    if let Err(e) = applied {
                        // Never serve a possibly-diverged store: drop it
                        // and stay rebuilding (the controller restarts the
                        // whole ship, which re-captures these writes in
                        // its fresh snapshot).
                        self.stores.insert(
                            shard,
                            HostedShard::Rebuilding {
                                staged: Vec::new(),
                                buffered: Vec::new(),
                            },
                        );
                        return shard_fault(e);
                    }
                }
                self.stores.insert(shard, HostedShard::Serving(store));
                Message::InsertOk
            }
            _ => not_hosted,
        }
    }
}

/// A set of peer threads sharing one transport. Dropping the runtime
/// shuts every peer down and joins its thread.
///
/// The peer list is interior-mutable so repair — reviving a killed
/// peer, spawning a joining one — works through the `&self` handles
/// the query path already shares (e.g. a bench thread measuring
/// availability while the repair controller respawns a peer).
pub struct PeerRuntime {
    transport: Arc<InProcTransport>,
    peers: Mutex<Vec<(NodeId, thread::JoinHandle<()>)>>,
}

impl PeerRuntime {
    /// An empty runtime accounting traffic on `meter`.
    pub fn new(meter: Arc<TrafficMeter>) -> Self {
        Self {
            transport: Arc::new(InProcTransport::new(meter)),
            peers: Mutex::new(Vec::new()),
        }
    }

    /// The shared transport (clone the `Arc` into client handles).
    pub fn transport(&self) -> &Arc<InProcTransport> {
        &self.transport
    }

    /// Addresses of all spawned peers, in spawn order.
    pub fn nodes(&self) -> Vec<NodeId> {
        self.peers.lock().iter().map(|(node, _)| *node).collect()
    }

    /// Number of live peers.
    pub fn peer_count(&self) -> usize {
        self.peers.lock().len()
    }

    /// Spawns one peer thread at `node`. `init` runs *on the new
    /// thread* to build the service state, so per-peer construction
    /// (e.g. indexing a document shard) parallelizes across peers.
    ///
    /// Respawning a node that was previously shut down re-registers
    /// its inbox — this is the *revive* path of the repair protocol.
    pub fn spawn_peer<F, S>(&self, node: NodeId, init: F)
    where
        F: FnOnce() -> S + Send + 'static,
        S: PeerService + 'static,
    {
        let (inbox, requests) = mpsc::channel();
        self.transport.register(node, inbox);
        let handle = thread::spawn(move || {
            let mut service = init();
            // Ends on an explicit `Shutdown` or when every sender is
            // dropped.
            while let Ok(PeerInbox::Request(envelope)) = requests.recv() {
                let response = match Message::decode(&envelope.payload) {
                    // Liveness probes are answered by the peer *loop*,
                    // not the service: any service type is probeable,
                    // and a Pong proves the thread itself is draining
                    // its inbox.
                    Ok(Message::Ping) => Message::Pong,
                    Ok(request) => service.handle(envelope.from, envelope.auth, request),
                    Err(_) => Message::Fault {
                        code: fault::MALFORMED,
                        group: GroupId(0),
                    },
                };
                envelope.reply.send(response.encode().to_vec());
            }
        });
        self.peers.lock().push((node, handle));
    }
}

impl Drop for PeerRuntime {
    fn drop(&mut self) {
        let mut peers = self.peers.lock();
        for (node, _) in peers.iter() {
            self.transport.shutdown(*node);
        }
        for (_, handle) in peers.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::transport::Transport;
    use zerber_field::Fp;
    use zerber_index::{DocId, Document, InvertedIndex, RawPostingStore, TermId, UserId};
    use zerber_server::TokenAuth;

    #[test]
    fn server_peer_answers_over_the_wire() {
        let auth = Arc::new(TokenAuth::new());
        let server = Arc::new(IndexServer::new(0, Fp::new(5), auth.clone()));
        server.add_user_to_group(UserId(1), GroupId(0));
        let token = auth.issue(UserId(1));

        let runtime = PeerRuntime::new(Arc::new(TrafficMeter::new()));
        let node = NodeId::IndexServer(0);
        runtime.spawn_peer(node, move || ServerService::new(server));
        let transport = runtime.transport().clone();

        let share = zerber_net::StoredShare {
            element: zerber_core::ElementId(1),
            group: GroupId(0),
            share: Fp::new(9),
        };
        let insert = Message::InsertBatch {
            entries: vec![(zerber_core::PlId(0), share)],
        };
        let response = transport
            .request(NodeId::Owner(0), node, token, &insert)
            .unwrap();
        assert_eq!(response, Message::InsertOk);

        let query = Message::Query {
            auth: token,
            pl_ids: vec![zerber_core::PlId(0)],
        };
        match transport
            .request(NodeId::User(1), node, token, &query)
            .unwrap()
        {
            Message::QueryResponse { lists } => assert_eq!(lists[0].1.len(), 1),
            other => panic!("unexpected response {other:?}"),
        }

        // An unauthenticated token comes back as a typed fault.
        match transport
            .request(NodeId::Owner(0), node, AuthToken(999), &insert)
            .unwrap()
        {
            Message::Fault { code, group } => {
                assert_eq!(
                    ServerError::from_fault(code, group),
                    Some(ServerError::AuthFailed)
                );
            }
            other => panic!("unexpected response {other:?}"),
        }
    }

    #[test]
    fn shard_peer_ranks_its_documents() {
        let docs: Vec<Document> = (1..=3u32)
            .map(|d| Document::from_term_counts(DocId(d), GroupId(0), vec![(TermId(1), d)]))
            .collect();
        let index = InvertedIndex::from_documents(&docs);
        let runtime = PeerRuntime::new(Arc::new(TrafficMeter::new()));
        let node = NodeId::IndexServer(0);
        runtime.spawn_peer(node, move || {
            ShardService::frozen(Box::new(RawPostingStore::from_index(&index)))
        });

        let query = Message::TopKQuery {
            shard: 0,
            terms: vec![(TermId(1), 1.0)],
            k: 2,
        };
        match runtime
            .transport()
            .request(NodeId::User(0), node, AuthToken(0), &query)
            .unwrap()
        {
            Message::TopKResponse { candidates, .. } => {
                assert_eq!(candidates.len(), 2);
                // All three docs have length d, so tf = count/length = 1
                // everywhere and ties break by doc id.
                assert_eq!(candidates[0].0, DocId(1));
            }
            other => panic!("unexpected response {other:?}"),
        }
    }

    #[test]
    fn hostile_weights_are_rejected_not_served() {
        let docs = vec![Document::from_term_counts(DocId(1), GroupId(0), vec![(TermId(1), 1)]); 1];
        let index = InvertedIndex::from_documents(&docs);
        let runtime = PeerRuntime::new(Arc::new(TrafficMeter::new()));
        let node = NodeId::IndexServer(0);
        runtime.spawn_peer(node, move || {
            ShardService::frozen(Box::new(RawPostingStore::from_index(&index)))
        });
        for weight in [f64::NAN, f64::INFINITY, -1.0] {
            let query = Message::TopKQuery {
                shard: 0,
                terms: vec![(TermId(1), weight)],
                k: 1,
            };
            match runtime
                .transport()
                .request(NodeId::User(0), node, AuthToken(0), &query)
                .unwrap()
            {
                Message::Fault { code, .. } => assert_eq!(code, fault::MALFORMED),
                other => panic!("weight {weight} produced {other:?}"),
            }
        }
        // The peer survived and still serves valid queries.
        let ok = Message::TopKQuery {
            shard: 0,
            terms: vec![(TermId(1), 1.0)],
            k: 1,
        };
        match runtime
            .transport()
            .request(NodeId::User(0), node, AuthToken(0), &ok)
            .unwrap()
        {
            Message::TopKResponse { candidates, .. } => assert_eq!(candidates.len(), 1),
            other => panic!("unexpected response {other:?}"),
        }
    }

    #[test]
    fn wrong_request_type_is_a_typed_fault() {
        let runtime = PeerRuntime::new(Arc::new(TrafficMeter::new()));
        let node = NodeId::IndexServer(0);
        runtime.spawn_peer(node, || {
            ShardService::frozen(Box::new(RawPostingStore::default()))
        });
        match runtime
            .transport()
            .request(NodeId::User(0), node, AuthToken(0), &Message::InsertOk)
            .unwrap()
        {
            Message::Fault { code, .. } => assert_eq!(code, fault::UNSUPPORTED),
            other => panic!("unexpected response {other:?}"),
        }
    }

    #[test]
    fn frozen_shards_fault_on_mutation_frames() {
        let runtime = PeerRuntime::new(Arc::new(TrafficMeter::new()));
        let node = NodeId::IndexServer(0);
        runtime.spawn_peer(node, || {
            ShardService::frozen(Box::new(RawPostingStore::default()))
        });
        let insert = Message::IndexDocs {
            shard: 0,
            docs: vec![zerber_net::WireDocument {
                doc: DocId(1),
                group: GroupId(0),
                length: 1,
                terms: vec![(TermId(0), 1)],
            }],
        };
        for request in [
            insert,
            Message::RemoveDoc {
                shard: 0,
                doc: DocId(1),
            },
        ] {
            match runtime
                .transport()
                .request(NodeId::Owner(0), node, AuthToken(0), &request)
                .unwrap()
            {
                Message::Fault { code, .. } => assert_eq!(code, fault::UNSUPPORTED),
                other => panic!("unexpected response {other:?}"),
            }
        }
    }

    #[test]
    fn mutable_shard_takes_inserts_and_deletes_over_the_wire() {
        use crate::runtime::shard::LiveIndexShard;
        let runtime = PeerRuntime::new(Arc::new(TrafficMeter::new()));
        let node = NodeId::IndexServer(0);
        runtime.spawn_peer(node, || {
            ShardService::new(Box::new(LiveIndexShard::raw(&[])))
        });
        let transport = runtime.transport().clone();
        let insert = Message::IndexDocs {
            shard: 0,
            docs: vec![zerber_net::WireDocument {
                doc: DocId(4),
                group: GroupId(0),
                length: 3,
                terms: vec![(TermId(2), 3)],
            }],
        };
        assert_eq!(
            transport
                .request(NodeId::Owner(0), node, AuthToken(0), &insert)
                .unwrap(),
            Message::InsertOk
        );
        let query = Message::TopKQuery {
            shard: 0,
            terms: vec![(TermId(2), 1.0)],
            k: 5,
        };
        match transport
            .request(NodeId::User(0), node, AuthToken(0), &query)
            .unwrap()
        {
            Message::TopKResponse { candidates, .. } => {
                assert_eq!(candidates.len(), 1);
                assert_eq!(candidates[0].0, DocId(4));
            }
            other => panic!("unexpected response {other:?}"),
        }
        assert_eq!(
            transport
                .request(
                    NodeId::Owner(0),
                    node,
                    AuthToken(0),
                    &Message::RemoveDoc {
                        shard: 0,
                        doc: DocId(4)
                    }
                )
                .unwrap(),
            Message::DeleteOk { removed: 1 }
        );
        match transport
            .request(NodeId::User(0), node, AuthToken(0), &query)
            .unwrap()
        {
            Message::TopKResponse { candidates, .. } => assert!(candidates.is_empty()),
            other => panic!("unexpected response {other:?}"),
        }
        // Unsorted wire terms violate the Document invariant: rejected,
        // peer survives.
        let hostile = Message::IndexDocs {
            shard: 0,
            docs: vec![zerber_net::WireDocument {
                doc: DocId(5),
                group: GroupId(0),
                length: 2,
                terms: vec![(TermId(3), 1), (TermId(3), 1)],
            }],
        };
        match transport
            .request(NodeId::Owner(0), node, AuthToken(0), &hostile)
            .unwrap()
        {
            Message::Fault { code, .. } => assert_eq!(code, fault::MALFORMED),
            other => panic!("unexpected response {other:?}"),
        }
    }

    fn wire_doc(id: u32, term: u32, count: u32) -> zerber_net::WireDocument {
        zerber_net::WireDocument {
            doc: DocId(id),
            group: GroupId(0),
            length: count,
            terms: vec![(TermId(term), count)],
        }
    }

    fn ranked_docs(transport: &Arc<InProcTransport>, node: NodeId, term: u32) -> Vec<u32> {
        match transport
            .request(
                NodeId::User(0),
                node,
                AuthToken(0),
                &Message::TopKQuery {
                    shard: 0,
                    terms: vec![(TermId(term), 1.0)],
                    k: 16,
                },
            )
            .unwrap()
        {
            Message::TopKResponse { candidates, .. } => {
                candidates.into_iter().map(|(doc, _)| doc.0).collect()
            }
            other => panic!("unexpected response {other:?}"),
        }
    }

    /// The full rebuild protocol over the wire: a fresh peer launched
    /// in `rebuilding` state buffers writes and bounces reads, a live
    /// source snapshots and streams its files, and after commit the
    /// target serves snapshot ∪ buffered writes — including a write
    /// that overlapped the snapshot (idempotent replay).
    #[test]
    fn rebuild_protocol_ships_a_shard_and_replays_buffered_writes() {
        use crate::runtime::shard::{restore_shard_store, LiveIndexShard};
        use zerber_index::PostingBackend;

        let runtime = PeerRuntime::new(Arc::new(TrafficMeter::new()));
        let source = NodeId::IndexServer(0);
        let target = NodeId::IndexServer(1);
        runtime.spawn_peer(source, || {
            ShardService::new(Box::new(LiveIndexShard::raw(&[])))
        });
        runtime.spawn_peer(target, || {
            ShardService::rebuilding([0]).with_restore(Box::new(|_, files| {
                restore_shard_store(&PostingBackend::Raw, files)
            }))
        });
        let transport = runtime.transport().clone();
        let controller = NodeId::Owner(0);
        let rpc = |node, message: &Message| {
            transport
                .request(controller, node, AuthToken(0), message)
                .unwrap()
        };

        // Seed the source, pre-rebuild.
        for id in 1..=3 {
            assert_eq!(
                rpc(
                    source,
                    &Message::IndexDocs {
                        shard: 0,
                        docs: vec![wire_doc(id, 7, id)],
                    }
                ),
                Message::InsertOk
            );
        }

        // Target pre-commit: reads bounce REBUILDING, writes buffer.
        match rpc(
            target,
            &Message::TopKQuery {
                shard: 0,
                terms: vec![(TermId(7), 1.0)],
                k: 4,
            },
        ) {
            Message::Fault { code, .. } => assert_eq!(code, fault::REBUILDING),
            other => panic!("unexpected response {other:?}"),
        }

        // Begin: from here on the target owes every write it acks.
        assert_eq!(
            rpc(
                target,
                &Message::InstallShard {
                    shard: 0,
                    epoch: 0,
                    name: String::new(),
                    crc: 0,
                    commit: false,
                    payload: zerber_net::Bytes::new(),
                }
            ),
            Message::InsertOk
        );
        // A write lands on both the source (pre-snapshot, so it is in
        // the shipped files) and the target's buffer: replay must
        // shadow, not duplicate.
        for node in [source, target] {
            assert_eq!(
                rpc(
                    node,
                    &Message::IndexDocs {
                        shard: 0,
                        docs: vec![wire_doc(4, 7, 2)],
                    }
                ),
                Message::InsertOk
            );
        }
        // A delete during rebuild acks removed=0 on the buffering copy.
        assert_eq!(
            rpc(
                source,
                &Message::RemoveDoc {
                    shard: 0,
                    doc: DocId(2)
                }
            ),
            Message::DeleteOk { removed: 1 }
        );
        assert_eq!(
            rpc(
                target,
                &Message::RemoveDoc {
                    shard: 0,
                    doc: DocId(2)
                }
            ),
            Message::DeleteOk { removed: 0 }
        );

        // Snapshot the source and stream every file to the target.
        let (epoch, manifest) = match rpc(source, &Message::PrepareSnapshot { shard: 0 }) {
            Message::SnapshotManifest {
                shard,
                epoch,
                files,
            } => {
                assert_eq!(shard, 0);
                (epoch, files)
            }
            other => panic!("unexpected response {other:?}"),
        };
        assert!(!manifest.is_empty());
        for (name, len, crc) in manifest {
            let payload = match rpc(
                source,
                &Message::FetchSegment {
                    shard: 0,
                    name: name.clone(),
                },
            ) {
                Message::SegmentData { crc: got, payload } => {
                    assert_eq!(got, crc, "{name} CRC mismatch on fetch");
                    assert_eq!(payload.len() as u64, len);
                    assert_eq!(crc32(&payload), crc);
                    payload
                }
                other => panic!("unexpected response {other:?}"),
            };
            assert_eq!(
                rpc(
                    target,
                    &Message::InstallShard {
                        shard: 0,
                        epoch,
                        name,
                        crc,
                        commit: false,
                        payload,
                    }
                ),
                Message::InsertOk
            );
        }
        // Commit: restore + replay + cut over.
        assert_eq!(
            rpc(
                target,
                &Message::InstallShard {
                    shard: 0,
                    epoch,
                    name: String::new(),
                    crc: 0,
                    commit: true,
                    payload: zerber_net::Bytes::new(),
                }
            ),
            Message::InsertOk
        );

        // The rebuilt copy is bit-identical to the live source.
        assert_eq!(
            ranked_docs(&transport, source, 7),
            ranked_docs(&transport, target, 7)
        );
        let mut docs = ranked_docs(&transport, target, 7);
        docs.sort_unstable();
        assert_eq!(docs, vec![1, 3, 4], "doc 2 deleted, doc 4 not duplicated");
        // And it serves writes like any live replica.
        assert_eq!(
            rpc(
                target,
                &Message::IndexDocs {
                    shard: 0,
                    docs: vec![wire_doc(9, 7, 1)],
                }
            ),
            Message::InsertOk
        );
        assert!(ranked_docs(&transport, target, 7).contains(&9));
    }

    /// Protocol misuse and corruption bounce with typed faults and
    /// never disturb a serving store.
    #[test]
    fn rebuild_frames_reject_corruption_and_misuse() {
        use crate::runtime::shard::{restore_shard_store, LiveIndexShard};
        use zerber_index::PostingBackend;

        let runtime = PeerRuntime::new(Arc::new(TrafficMeter::new()));
        let node = NodeId::IndexServer(0);
        runtime.spawn_peer(node, || {
            ShardService::hosting([(0, Box::new(LiveIndexShard::raw(&[])) as Box<dyn ShardStore>)])
                .with_restore(Box::new(|_, files| {
                    restore_shard_store(&PostingBackend::Raw, files)
                }))
        });
        let transport = runtime.transport().clone();
        let rpc = |message: &Message| {
            transport
                .request(NodeId::Owner(0), node, AuthToken(0), message)
                .unwrap()
        };
        assert_eq!(
            rpc(&Message::IndexDocs {
                shard: 0,
                docs: vec![wire_doc(1, 3, 2)],
            }),
            Message::InsertOk
        );

        // Commit on a *serving* shard is a protocol error — and the
        // store must survive it.
        match rpc(&Message::InstallShard {
            shard: 0,
            epoch: 0,
            name: String::new(),
            crc: 0,
            commit: true,
            payload: zerber_net::Bytes::new(),
        }) {
            Message::Fault { code, .. } => assert_eq!(code, fault::REPAIR),
            other => panic!("unexpected response {other:?}"),
        }
        assert_eq!(ranked_docs(&transport, node, 3), vec![1]);

        // Fetch without a prepared snapshot: REPAIR fault.
        match rpc(&Message::FetchSegment {
            shard: 0,
            name: "MANIFEST.zman".into(),
        }) {
            Message::Fault { code, .. } => assert_eq!(code, fault::REPAIR),
            other => panic!("unexpected response {other:?}"),
        }

        // Begin, then a torn file frame (CRC mismatch): rejected, and
        // the stage stays clean for a clean retry.
        assert_eq!(
            rpc(&Message::InstallShard {
                shard: 0,
                epoch: 0,
                name: String::new(),
                crc: 0,
                commit: false,
                payload: zerber_net::Bytes::new(),
            }),
            Message::InsertOk
        );
        match rpc(&Message::InstallShard {
            shard: 0,
            epoch: 0,
            name: "docs.zdump".into(),
            crc: 0xDEAD_BEEF,
            commit: false,
            payload: zerber_net::Bytes::from_static(b"not the right bytes"),
        }) {
            Message::Fault { code, .. } => assert_eq!(code, fault::REPAIR),
            other => panic!("unexpected response {other:?}"),
        }
        // Committing garbage staged files re-enters Rebuilding rather
        // than serving a broken store.
        match rpc(&Message::InstallShard {
            shard: 0,
            epoch: 0,
            name: String::new(),
            crc: 0,
            commit: true,
            payload: zerber_net::Bytes::new(),
        }) {
            Message::Fault { code, .. } => assert_eq!(code, fault::REPAIR),
            other => panic!("unexpected response {other:?}"),
        }
        match rpc(&Message::TopKQuery {
            shard: 0,
            terms: vec![(TermId(3), 1.0)],
            k: 1,
        }) {
            Message::Fault { code, .. } => assert_eq!(code, fault::REBUILDING),
            other => panic!("unexpected response {other:?}"),
        }
    }

    /// A commit on a service launched without a restore factory is
    /// `UNSUPPORTED` — distinct from retryable `REPAIR` faults.
    #[test]
    fn commit_without_restore_factory_is_unsupported() {
        let runtime = PeerRuntime::new(Arc::new(TrafficMeter::new()));
        let node = NodeId::IndexServer(0);
        runtime.spawn_peer(node, || ShardService::rebuilding([0]));
        match runtime
            .transport()
            .request(
                NodeId::Owner(0),
                node,
                AuthToken(0),
                &Message::InstallShard {
                    shard: 0,
                    epoch: 0,
                    name: String::new(),
                    crc: 0,
                    commit: true,
                    payload: zerber_net::Bytes::new(),
                },
            )
            .unwrap()
        {
            Message::Fault { code, .. } => assert_eq!(code, fault::UNSUPPORTED),
            other => panic!("unexpected response {other:?}"),
        }
    }

    /// Every peer answers `Ping` from its loop — even one whose service
    /// would bounce the frame — and revived nodes re-register.
    #[test]
    fn ping_pong_and_revive_reregistration() {
        let runtime = PeerRuntime::new(Arc::new(TrafficMeter::new()));
        let node = NodeId::IndexServer(0);
        runtime.spawn_peer(node, || {
            ShardService::frozen(Box::new(RawPostingStore::default()))
        });
        let transport = runtime.transport().clone();
        let ping = |t: &Arc<InProcTransport>| {
            t.request(NodeId::Owner(0), node, AuthToken(0), &Message::Ping)
        };
        assert_eq!(ping(&transport).unwrap(), Message::Pong);
        // Kill the peer: probes now fail...
        transport.shutdown(node);
        assert!(ping(&transport).is_err());
        // ...until a respawn re-registers the same address.
        runtime.spawn_peer(node, || ShardService::rebuilding([0]));
        assert_eq!(ping(&transport).unwrap(), Message::Pong);
    }
}
