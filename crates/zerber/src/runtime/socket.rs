//! The real network transport: length-framed TCP links.
//!
//! [`SocketTransport`] implements [`Transport`] over loopback (or any)
//! TCP using the checksummed frames of [`zerber_net::framing`]:
//!
//! ```text
//!  client process                      peer process
//!  ──────────────                     ─────────────
//!  begin() ─ Frame::Request{id,…} ──▶ accept loop ─▶ conn thread
//!                 │ one pooled            │  FrameDecoder ─ Message
//!                 │ connection per        │  PeerService::handle
//!                 ▼ (from, to) link       ▼
//!  reader thread ◀─ Frame::Response{id,…} ────────────────┘
//!   └─ demux by id ─▶ the PendingReply that began it
//! ```
//!
//! One connection is opened per `(from, to)` link and reused for every
//! request on it; requests pipeline (the correlation `id` matches a
//! response to its [`PendingReply`], whatever order answers arrive
//! in). A per-link in-flight cap provides backpressure: `begin` blocks
//! once [`SocketConfig::max_in_flight`] requests are unanswered, so a
//! slow peer throttles its callers instead of buffering unboundedly.
//! Writes carry [`SocketConfig::write_timeout`]; a failed or timed-out
//! write, a torn frame, or a closed socket kills the link — every
//! pending request on it resolves to [`TransportError::PeerGone`], and
//! the next `begin` dials a fresh connection (so a restarted peer is
//! picked up transparently).
//!
//! # Metering
//!
//! Each process accounts its *own* view on its own
//! [`TrafficMeter`]: the client meters request payloads when they are
//! written and response payloads when they arrive; a peer serving via
//! [`serve_peer`] meters the same two directions as it sees them.
//! Metered bytes are the exact [`Message::wire_size`] payload bytes —
//! framing overhead (length prefix, correlation id, CRC) is the
//! socket's envelope, excluded just as the in-process envelope is, so
//! the paper's bandwidth accounting is identical whichever transport
//! carries it. Give the client and the peer *separate* meters when
//! both live in one process, or every payload double-counts.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex};
use std::thread;
use std::time::Duration;

use parking_lot::Mutex;

use zerber_net::{AuthToken, Frame, FrameDecoder, Message, NodeId, TrafficMeter};
use zerber_obs::{Counter, Gauge, MetricsRegistry};

use crate::runtime::peer::PeerService;
use crate::runtime::transport::{
    PendingReply, ReplySink, RequestEnvelope, Transport, TransportError,
};

/// Socket-level knobs.
#[derive(Debug, Clone, Copy)]
pub struct SocketConfig {
    /// Dial timeout for a new link.
    pub connect_timeout: Duration,
    /// Per-write deadline; a link that cannot accept a frame within it
    /// is declared dead.
    pub write_timeout: Duration,
    /// Unanswered requests allowed per link before `begin` blocks
    /// (backpressure toward the caller).
    pub max_in_flight: usize,
    /// Extra attempts after a failed dial or a write that killed the
    /// link; each retry re-dials a fresh connection, so a peer that
    /// restarts mid-burst is picked up without the caller noticing.
    /// `0` restores fail-fast.
    pub retries: u32,
    /// Base delay of the capped-exponential, seeded-jitter backoff
    /// between retries (the cap is eight doublings above it).
    pub retry_backoff: Duration,
}

impl Default for SocketConfig {
    fn default() -> Self {
        Self {
            connect_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            max_in_flight: 64,
            retries: 2,
            retry_backoff: Duration::from_millis(10),
        }
    }
}

/// The in-flight gate of one link: counts unanswered requests and
/// wakes writers as responses drain them. Uses the std primitives
/// because waiting is the point (the vendored `parking_lot` carries no
/// condvar).
struct InFlight {
    state: StdMutex<InFlightState>,
    drained: Condvar,
    /// Aggregated `zerber_socket_in_flight` gauge (shared across
    /// links) when the transport is observed.
    gauge: Option<Gauge>,
}

struct InFlightState {
    count: usize,
    dead: bool,
}

impl InFlight {
    fn new(gauge: Option<Gauge>) -> Self {
        Self {
            state: StdMutex::new(InFlightState {
                count: 0,
                dead: false,
            }),
            drained: Condvar::new(),
            gauge,
        }
    }

    /// Blocks until a slot frees up (or the link dies). Returns
    /// whether the link is still usable.
    fn acquire(&self, cap: usize) -> bool {
        let mut state = self.state.lock().expect("in-flight gate poisoned");
        while state.count >= cap && !state.dead {
            state = self.drained.wait(state).expect("in-flight gate poisoned");
        }
        if state.dead {
            return false;
        }
        state.count += 1;
        if let Some(gauge) = &self.gauge {
            gauge.inc();
        }
        true
    }

    fn release(&self) {
        let mut state = self.state.lock().expect("in-flight gate poisoned");
        // `kill` may already have zeroed the count (and the gauge);
        // never double-decrement.
        if state.count > 0 {
            state.count -= 1;
            if let Some(gauge) = &self.gauge {
                gauge.dec();
            }
        }
        drop(state);
        self.drained.notify_one();
    }

    fn kill(&self) {
        let mut state = self.state.lock().expect("in-flight gate poisoned");
        state.dead = true;
        // Requests still in flight on a dead link will never be
        // released; keep the aggregate gauge honest.
        if let Some(gauge) = &self.gauge {
            gauge.add(-(state.count as i64));
        }
        state.count = 0;
        drop(state);
        self.drained.notify_all();
    }
}

/// The demux table of one link: `request id → reply channel` for
/// unanswered requests; `None` once the link is dead (dropping the
/// senders fails every waiter closed).
type PendingMap = Arc<Mutex<Option<HashMap<u64, std::sync::mpsc::Sender<Vec<u8>>>>>>;

/// One pooled connection: the writer half, the demux table its reader
/// thread feeds, and the in-flight gate.
struct Link {
    writer: Mutex<TcpStream>,
    pending: PendingMap,
    next_id: AtomicU64,
    inflight: Arc<InFlight>,
}

impl Link {
    fn is_dead(&self) -> bool {
        self.pending.lock().is_none()
    }
}

/// Client-side socket instrumentation handles, pre-registered so the
/// hot path never touches the registry's name table.
#[derive(Clone)]
struct SocketMetrics {
    /// `zerber_socket_requests_total`: frames handed to `begin_traced`.
    requests: Counter,
    /// `zerber_socket_write_failures_total`: writes that killed a link
    /// (timeout or error — alignment after a partial write is
    /// unknowable).
    write_failures: Counter,
    /// `zerber_socket_links_dialed_total`: fresh connections dialed
    /// (first use and every reconnect after a link death).
    links_dialed: Counter,
    /// `zerber_socket_in_flight` gauge, shared by every link's gate.
    in_flight: Gauge,
}

/// [`Transport`] over real TCP links. See the [module docs](self).
pub struct SocketTransport {
    meter: Arc<TrafficMeter>,
    config: SocketConfig,
    /// Client-side counters/gauges when observed; `None` costs nothing.
    obs: Option<SocketMetrics>,
    /// Where each peer listens.
    addrs: Mutex<HashMap<NodeId, SocketAddr>>,
    /// Pooled connections, one per `(from, to)` link.
    links: Mutex<HashMap<(NodeId, NodeId), Arc<Link>>>,
}

impl SocketTransport {
    /// A transport accounting on `meter` with default socket knobs.
    pub fn new(meter: Arc<TrafficMeter>) -> Self {
        Self::with_config(meter, SocketConfig::default())
    }

    /// A transport with explicit socket knobs.
    pub fn with_config(meter: Arc<TrafficMeter>, config: SocketConfig) -> Self {
        Self {
            meter,
            config,
            obs: None,
            addrs: Mutex::new(HashMap::new()),
            links: Mutex::new(HashMap::new()),
        }
    }

    /// Registers the client-side socket metric families
    /// (`zerber_socket_*`) on `registry` and records into them from
    /// now on. Call before the first request; builder-style.
    pub fn observed(mut self, registry: &MetricsRegistry) -> Self {
        self.obs = Some(SocketMetrics {
            requests: registry.counter("zerber_socket_requests_total"),
            write_failures: registry.counter("zerber_socket_write_failures_total"),
            links_dialed: registry.counter("zerber_socket_links_dialed_total"),
            in_flight: registry.gauge("zerber_socket_in_flight"),
        });
        self
    }

    /// Registers where `node` listens. Replaces any previous address
    /// (an existing pooled link keeps serving until it dies; the next
    /// reconnect dials the new address).
    pub fn register(&self, node: NodeId, addr: SocketAddr) {
        self.addrs.lock().insert(node, addr);
    }

    /// Returns the live pooled link for `(from, to)`, dialing a fresh
    /// connection if there is none or the pooled one is dead.
    fn link(&self, from: NodeId, to: NodeId) -> Result<Arc<Link>, TransportError> {
        let addr = match self.addrs.lock().get(&to) {
            Some(&addr) => addr,
            None => return Err(TransportError::UnknownPeer(to)),
        };
        {
            let links = self.links.lock();
            if let Some(link) = links.get(&(from, to)) {
                if !link.is_dead() {
                    return Ok(Arc::clone(link));
                }
            }
        }
        // Dial outside the pool lock: a slow connect must not stall
        // every other link.
        let stream = TcpStream::connect_timeout(&addr, self.config.connect_timeout)
            .map_err(|_| TransportError::PeerGone(to))?;
        stream.set_nodelay(true).ok();
        stream
            .set_write_timeout(Some(self.config.write_timeout))
            .ok();
        let reader_stream = stream
            .try_clone()
            .map_err(|_| TransportError::PeerGone(to))?;
        if let Some(obs) = &self.obs {
            obs.links_dialed.inc();
        }
        let link = Arc::new(Link {
            writer: Mutex::new(stream),
            pending: Arc::new(Mutex::new(Some(HashMap::new()))),
            next_id: AtomicU64::new(1),
            inflight: Arc::new(InFlight::new(
                self.obs.as_ref().map(|obs| obs.in_flight.clone()),
            )),
        });
        spawn_link_reader(
            reader_stream,
            Arc::clone(&link.pending),
            Arc::clone(&link.inflight),
            Arc::clone(&self.meter),
            to,
            from,
        );
        let mut links = self.links.lock();
        // Another caller may have raced us to reconnect; keep one.
        let entry = links.entry((from, to)).or_insert_with(|| Arc::clone(&link));
        if entry.is_dead() {
            *entry = Arc::clone(&link);
        }
        Ok(Arc::clone(entry))
    }
}

/// Demuxes one link's responses to their pending requests, metering
/// each payload as it arrives. Exits — failing every outstanding
/// request closed — on EOF, a read error, or a damaged frame (framing
/// is stateful, so a corrupt frame forfeits the whole connection).
fn spawn_link_reader(
    mut stream: TcpStream,
    pending: PendingMap,
    inflight: Arc<InFlight>,
    meter: Arc<TrafficMeter>,
    peer: NodeId,
    client: NodeId,
) {
    thread::spawn(move || {
        let mut decoder = FrameDecoder::new();
        let mut buf = [0u8; 64 * 1024];
        'link: loop {
            let n = match stream.read(&mut buf) {
                Ok(0) | Err(_) => break 'link,
                Ok(n) => n,
            };
            decoder.push(&buf[..n]);
            loop {
                match decoder.next_frame() {
                    Ok(None) => break,
                    Ok(Some(Frame::Response { id, payload })) => {
                        // Response bytes arrived whether or not anyone
                        // is still waiting (the requester may have
                        // hedged away) — they count either way.
                        meter.record(peer, client, payload.len());
                        inflight.release();
                        let waiter = pending.lock().as_mut().and_then(|map| map.remove(&id));
                        if let Some(tx) = waiter {
                            let _ = tx.send(payload);
                        }
                    }
                    // A request frame on the response path, or any
                    // framing damage: protocol violation, drop the
                    // link.
                    Ok(Some(Frame::Request { .. })) | Err(_) => break 'link,
                }
            }
        }
        // Fail everything closed: dropping the senders disconnects
        // every waiting PendingReply (→ PeerGone).
        pending.lock().take();
        inflight.kill();
    });
}

impl SocketTransport {
    /// One begin attempt: take (or dial) the link, gate, register the
    /// pending, write the frame. A `PeerGone` result killed the link,
    /// so the caller may retry on a fresh connection.
    fn begin_attempt(
        &self,
        from: NodeId,
        to: NodeId,
        auth: AuthToken,
        trace: u64,
        payload: &Arc<[u8]>,
    ) -> Result<PendingReply, TransportError> {
        let link = self.link(from, to)?;
        if !link.inflight.acquire(self.config.max_in_flight) {
            return Err(TransportError::PeerGone(to));
        }
        let id = link.next_id.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = std::sync::mpsc::channel();
        {
            let mut pending = link.pending.lock();
            match pending.as_mut() {
                Some(map) => {
                    map.insert(id, tx);
                }
                None => {
                    link.inflight.release();
                    return Err(TransportError::PeerGone(to));
                }
            }
        }
        let frame = Frame::Request {
            id,
            from,
            auth,
            trace,
            payload: payload.to_vec(),
        };
        // The request leaves the client here: meter the payload (not
        // the framing envelope), then write the frame.
        self.meter.record(from, to, payload.len());
        let wrote = {
            let mut writer = link.writer.lock();
            let result = writer
                .write_all(&frame.encode())
                .and_then(|()| writer.flush());
            if result.is_err() {
                // Kill the whole link: record alignment after a
                // partial write is unknowable, so every request on it
                // is lost. Closing the socket also unblocks the reader
                // thread, which fails the other pendings closed.
                writer.shutdown(std::net::Shutdown::Both).ok();
            }
            result
        };
        if wrote.is_err() {
            if let Some(obs) = &self.obs {
                obs.write_failures.inc();
            }
            link.pending.lock().take();
            link.inflight.kill();
            return Err(TransportError::PeerGone(to));
        }
        Ok(PendingReply::from_channel(to, rx))
    }
}

impl Transport for SocketTransport {
    fn meter(&self) -> &Arc<TrafficMeter> {
        &self.meter
    }

    fn begin_traced(
        &self,
        from: NodeId,
        to: NodeId,
        auth: AuthToken,
        trace: u64,
        payload: Arc<[u8]>,
    ) -> PendingReply {
        if let Some(obs) = &self.obs {
            obs.requests.inc();
        }
        let mut backoff = crate::runtime::repair::Backoff::new(
            self.config.retry_backoff,
            self.config.retry_backoff.saturating_mul(1 << 8),
            link_seed(from, to),
        );
        let mut last = TransportError::PeerGone(to);
        for attempt in 0..=self.config.retries {
            if attempt > 0 {
                thread::sleep(backoff.next_delay());
            }
            match self.begin_attempt(from, to, auth, trace, &payload) {
                Ok(pending) => return pending,
                // An unregistered peer cannot be retried into
                // existence; everything else killed the link, so the
                // next attempt dials fresh.
                Err(error @ TransportError::UnknownPeer(_)) => {
                    return PendingReply::failed(to, error)
                }
                Err(error) => last = error,
            }
        }
        PendingReply::failed(to, last)
    }
}

/// A per-link jitter seed: distinct links never share a retry
/// schedule, and the same link reproduces it exactly.
fn link_seed(from: NodeId, to: NodeId) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    (from, to).hash(&mut hasher);
    hasher.finish()
}

/// A running socket peer: its accept loop, service thread, connection
/// threads, and listen address. Dropping (or [`SocketPeer::shutdown`])
/// closes the listener and every live connection — clients observe
/// [`TransportError::PeerGone`], which is exactly what the
/// kill-a-peer scenario injects.
pub struct SocketPeer {
    addr: SocketAddr,
    closing: Arc<AtomicBool>,
    conns: Arc<Mutex<Vec<TcpStream>>>,
    accept: Option<thread::JoinHandle<()>>,
}

impl SocketPeer {
    /// The address this peer accepts on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, severs every live connection, and joins the
    /// accept loop.
    pub fn shutdown(&mut self) {
        self.closing.store(true, Ordering::SeqCst);
        for conn in self.conns.lock().iter() {
            conn.shutdown(std::net::Shutdown::Both).ok();
        }
        // Wake the accept loop with a throwaway dial.
        TcpStream::connect_timeout(&self.addr, Duration::from_millis(200)).ok();
        if let Some(handle) = self.accept.take() {
            handle.join().ok();
        }
    }
}

impl Drop for SocketPeer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Serves a [`PeerService`] as node `node` on `listener`.
///
/// `init` runs on a dedicated *service thread* — the same
/// one-thread-per-peer discipline as the in-process runtime, so the
/// service state never needs to be `Send` and expensive construction
/// (indexing a shard) happens off the accept path. Each accepted
/// connection gets a reader thread that forwards decoded request
/// frames to the service thread and writes back the correlated
/// response frames; requests from concurrent connections are
/// serialized by the service inbox exactly as the in-process peers
/// serialize theirs. Payload bytes both ways land on `meter`.
pub fn serve_peer<S, F>(
    listener: TcpListener,
    node: NodeId,
    init: F,
    meter: Arc<TrafficMeter>,
) -> std::io::Result<SocketPeer>
where
    S: PeerService + 'static,
    F: FnOnce() -> S + Send + 'static,
{
    let addr = listener.local_addr()?;
    let closing = Arc::new(AtomicBool::new(false));
    let conns: Arc<Mutex<Vec<TcpStream>>> = Arc::new(Mutex::new(Vec::new()));

    // The service thread: owns the state, drains the shared inbox.
    let (inbox, requests) = std::sync::mpsc::channel::<RequestEnvelope>();
    thread::spawn(move || {
        let mut service = init();
        while let Ok(envelope) = requests.recv() {
            let response = match Message::decode(&envelope.payload) {
                // Liveness probes answer ahead of the service: any
                // socket peer is probeable, whatever role it hosts.
                Ok(Message::Ping) => Message::Pong,
                Ok(request) => service.handle(envelope.from, envelope.auth, request),
                Err(_) => Message::Fault {
                    code: zerber_net::message::fault::MALFORMED,
                    group: zerber_index::GroupId(0),
                },
            };
            // The ReplySink meters the response on the peer's meter
            // before handing it to the connection thread for framing.
            envelope.reply.send(response.encode().to_vec());
        }
    });

    let accept = {
        let closing = Arc::clone(&closing);
        let conns = Arc::clone(&conns);
        thread::spawn(move || {
            // Transient accept() failures (EMFILE pressure, a
            // connection aborted in the backlog) must not take the
            // whole peer down: note the error, back off briefly, and
            // keep accepting. Only a deliberate shutdown exits.
            let mut consecutive_errors = 0u32;
            loop {
                match listener.accept() {
                    Ok((stream, _)) => {
                        if closing.load(Ordering::SeqCst) {
                            break;
                        }
                        consecutive_errors = 0;
                        stream.set_nodelay(true).ok();
                        if let Ok(watch) = stream.try_clone() {
                            conns.lock().push(watch);
                        }
                        let inbox = inbox.clone();
                        let meter = Arc::clone(&meter);
                        thread::spawn(move || serve_connection(stream, node, inbox, meter));
                    }
                    Err(_) if closing.load(Ordering::SeqCst) => break,
                    Err(error) => {
                        eprintln!("zerber: accept() on {node:?} failed transiently: {error}");
                        consecutive_errors = consecutive_errors.saturating_add(1);
                        // Linear backoff, capped: enough to ride out fd
                        // exhaustion without going silent for long.
                        thread::sleep(Duration::from_millis(
                            (10 * u64::from(consecutive_errors)).min(500),
                        ));
                    }
                }
            }
        })
    };
    Ok(SocketPeer {
        addr,
        closing,
        conns,
        accept: Some(accept),
    })
}

/// One client connection: decode request frames, forward them to the
/// service thread, answer with correlated response frames. Any
/// framing damage drops the connection (fail closed) — the client's
/// reader resolves its pendings to `PeerGone` and a fresh connection
/// re-dials.
fn serve_connection(
    mut stream: TcpStream,
    node: NodeId,
    inbox: std::sync::mpsc::Sender<RequestEnvelope>,
    meter: Arc<TrafficMeter>,
) {
    let mut decoder = FrameDecoder::new();
    let mut buf = [0u8; 64 * 1024];
    'conn: loop {
        let n = match stream.read(&mut buf) {
            Ok(0) | Err(_) => break 'conn,
            Ok(n) => n,
        };
        decoder.push(&buf[..n]);
        loop {
            match decoder.next_frame() {
                Ok(None) => break,
                Ok(Some(Frame::Request {
                    id,
                    from,
                    auth,
                    trace,
                    payload,
                })) => {
                    meter.record(from, node, payload.len());
                    let (tx, rx) = std::sync::mpsc::channel();
                    let envelope = RequestEnvelope {
                        from,
                        auth,
                        trace,
                        payload: Arc::from(payload.as_slice()),
                        reply: ReplySink::new(Arc::clone(&meter), node, from, tx),
                    };
                    if inbox.send(envelope).is_err() {
                        break 'conn;
                    }
                    // One request at a time per connection: the
                    // service inbox is shared with other connections,
                    // but this link's answers go out in request order.
                    let Ok(encoded) = rx.recv() else { break 'conn };
                    let frame = Frame::Response {
                        id,
                        payload: encoded,
                    };
                    if stream.write_all(&frame.encode()).is_err() {
                        break 'conn;
                    }
                }
                Ok(Some(Frame::Response { .. })) | Err(_) => break 'conn,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::peer::ShardService;
    use crate::runtime::shard::LiveIndexShard;
    use zerber_index::{DocId, Document, GroupId, TermId};

    fn shard_peer(docs: &[Document], node: NodeId, meter: Arc<TrafficMeter>) -> SocketPeer {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let docs = docs.to_vec();
        serve_peer(
            listener,
            node,
            move || ShardService::new(Box::new(LiveIndexShard::raw(&docs))),
            meter,
        )
        .unwrap()
    }

    fn corpus(n: u32) -> Vec<Document> {
        (0..n)
            .map(|d| {
                Document::from_term_counts(
                    DocId(d),
                    GroupId(0),
                    vec![(TermId(d % 3), 1 + d % 2), (TermId(7), 1)],
                )
            })
            .collect()
    }

    #[test]
    fn rpc_round_trip_over_real_tcp() {
        let node = NodeId::IndexServer(0);
        let peer_meter = Arc::new(TrafficMeter::new());
        let peer = shard_peer(&corpus(8), node, Arc::clone(&peer_meter));

        let client_meter = Arc::new(TrafficMeter::new());
        let transport = SocketTransport::new(Arc::clone(&client_meter));
        transport.register(node, peer.addr());

        let user = NodeId::User(1);
        let query = Message::TopKQuery {
            shard: 0,
            terms: vec![(TermId(7), 1.0)],
            k: 3,
        };
        match transport.request(user, node, AuthToken(0), &query).unwrap() {
            Message::TopKResponse { candidates, .. } => assert_eq!(candidates.len(), 3),
            other => panic!("unexpected response {other:?}"),
        }
        // Both processes' meters saw the same payload bytes, framing
        // excluded: request on user→peer, response on peer→user.
        assert_eq!(
            client_meter.link_bytes(user, node),
            query.wire_size() as u64
        );
        assert_eq!(
            client_meter.link_bytes(user, node),
            peer_meter.link_bytes(user, node)
        );
        assert_eq!(
            client_meter.link_bytes(node, user),
            peer_meter.link_bytes(node, user)
        );
        assert!(client_meter.link_bytes(node, user) > 0);
    }

    #[test]
    fn one_connection_carries_many_requests() {
        let node = NodeId::IndexServer(3);
        let peer = shard_peer(&corpus(20), node, Arc::new(TrafficMeter::new()));
        let transport = SocketTransport::new(Arc::new(TrafficMeter::new()));
        transport.register(node, peer.addr());
        for k in 1..=10u32 {
            let query = Message::TopKQuery {
                shard: 0,
                terms: vec![(TermId(7), 1.0)],
                k,
            };
            match transport
                .request(NodeId::User(0), node, AuthToken(0), &query)
                .unwrap()
            {
                Message::TopKResponse { candidates, .. } => {
                    assert_eq!(candidates.len(), k.min(20) as usize)
                }
                other => panic!("unexpected response {other:?}"),
            }
        }
        assert_eq!(transport.links.lock().len(), 1, "the link was reused");
    }

    #[test]
    fn pipelined_requests_demux_by_id() {
        let node = NodeId::IndexServer(0);
        let peer = shard_peer(&corpus(30), node, Arc::new(TrafficMeter::new()));
        let transport = SocketTransport::new(Arc::new(TrafficMeter::new()));
        transport.register(node, peer.addr());
        let user = NodeId::User(0);
        // Begin many before waiting on any; answers must route to the
        // right pending whatever order they land in.
        let queries: Vec<Message> = (1..=8u32)
            .map(|k| Message::TopKQuery {
                shard: 0,
                terms: vec![(TermId(7), 1.0)],
                k,
            })
            .collect();
        let mut pendings: Vec<PendingReply> = queries
            .iter()
            .map(|q| transport.begin(user, node, AuthToken(0), Arc::from(q.encode().as_ref())))
            .collect();
        for (k, pending) in (1..=8usize).zip(pendings.iter_mut()) {
            match pending.wait(Duration::from_secs(10)).unwrap() {
                Message::TopKResponse { candidates, .. } => assert_eq!(candidates.len(), k),
                other => panic!("unexpected response {other:?}"),
            }
        }
    }

    #[test]
    fn unknown_peer_and_dead_peer_fail_typed() {
        let transport = SocketTransport::new(Arc::new(TrafficMeter::new()));
        let node = NodeId::IndexServer(9);
        assert_eq!(
            transport.request(NodeId::User(0), node, AuthToken(0), &Message::InsertOk),
            Err(TransportError::UnknownPeer(node))
        );
        // A registered but unreachable address: dial fails → PeerGone.
        let vacated = {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            listener.local_addr().unwrap()
        };
        transport.register(node, vacated);
        assert_eq!(
            transport.request(NodeId::User(0), node, AuthToken(0), &Message::InsertOk),
            Err(TransportError::PeerGone(node))
        );
    }

    #[test]
    fn killed_peer_fails_pending_and_later_requests_closed() {
        let node = NodeId::IndexServer(1);
        let mut peer = shard_peer(&corpus(5), node, Arc::new(TrafficMeter::new()));
        let transport = SocketTransport::new(Arc::new(TrafficMeter::new()));
        transport.register(node, peer.addr());
        let ok = Message::TopKQuery {
            shard: 0,
            terms: vec![(TermId(7), 1.0)],
            k: 1,
        };
        transport
            .request(NodeId::User(0), node, AuthToken(0), &ok)
            .unwrap();
        peer.shutdown();
        // The pooled link dies; requests fail typed rather than hang.
        let mut saw_gone = false;
        for _ in 0..10 {
            match transport.request(NodeId::User(0), node, AuthToken(0), &ok) {
                Err(TransportError::PeerGone(n)) => {
                    assert_eq!(n, node);
                    saw_gone = true;
                    break;
                }
                Err(TransportError::Timeout(_)) | Ok(_) => {
                    // The OS may briefly accept into a dying backlog;
                    // retry until the death is visible.
                    thread::sleep(Duration::from_millis(10));
                }
                Err(other) => panic!("unexpected error {other:?}"),
            }
        }
        assert!(saw_gone, "peer death never surfaced as PeerGone");
    }

    #[test]
    fn malformed_payload_comes_back_as_fault_frame() {
        let node = NodeId::IndexServer(0);
        let peer = shard_peer(&corpus(5), node, Arc::new(TrafficMeter::new()));
        let transport = SocketTransport::new(Arc::new(TrafficMeter::new()));
        transport.register(node, peer.addr());
        // Valid frame, garbage payload: the peer answers MALFORMED
        // instead of dropping the link.
        let mut pending = transport.begin(
            NodeId::User(0),
            node,
            AuthToken(0),
            Arc::from(&b"\xFF\xFE\xFD"[..]),
        );
        match pending.wait(Duration::from_secs(10)).unwrap() {
            Message::Fault { code, .. } => {
                assert_eq!(code, zerber_net::message::fault::MALFORMED)
            }
            other => panic!("unexpected response {other:?}"),
        }
    }
}
