//! Heartbeat-driven peer health: who is `Up`, who looks `Suspect`,
//! who is declared `Down` and needs repair.
//!
//! The table is deliberately dumb — it is a *local* failure detector,
//! not a consensus protocol. One controller (the deployment facade or
//! the bench harness) probes peers with [`Message::Ping`] and feeds
//! the outcomes in; the table debounces them into a three-state
//! health machine:
//!
//! ```text
//!            failure                 failure × DOWN_AFTER
//!   Up ────────────────▶ Suspect ────────────────────────▶ Down
//!    ▲                      │                                │
//!    └──────── success ─────┴──────────── success ───────────┘
//! ```
//!
//! `Suspect` exists so one dropped probe (a slow peer, an injected
//! timeout) does not trigger a multi-megabyte shard re-ship; only a
//! *streak* of failures does. Any success snaps the peer straight back
//! to `Up` — a peer that answers is healthy, whatever its history.
//!
//! [`Message::Ping`]: zerber_net::Message::Ping

use std::collections::HashMap;

use zerber_net::NodeId;

/// Consecutive probe failures after which a `Suspect` peer is
/// declared `Down` (the first failure already makes it `Suspect`).
pub const DEFAULT_DOWN_AFTER: u32 = 3;

/// One peer's health as this controller sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PeerStatus {
    /// Answering probes.
    Up,
    /// Missed at least one probe; queries still try it (hedging
    /// covers the risk) but no repair is triggered yet.
    Suspect,
    /// Missed [`MembershipTable::down_after`] consecutive probes:
    /// eligible for replacement and shard rebuild.
    Down,
}

#[derive(Debug, Clone, Copy)]
struct PeerHealth {
    status: PeerStatus,
    /// Consecutive failures since the last success.
    failures: u32,
}

/// The controller's view of every peer's health.
#[derive(Debug, Clone)]
pub struct MembershipTable {
    peers: HashMap<NodeId, PeerHealth>,
    down_after: u32,
}

impl MembershipTable {
    /// A table tracking `peers`, all initially `Up`, with the default
    /// failure-streak threshold.
    pub fn new(peers: impl IntoIterator<Item = NodeId>) -> Self {
        Self::with_down_after(peers, DEFAULT_DOWN_AFTER)
    }

    /// A table declaring peers `Down` after `down_after` consecutive
    /// failures (clamped to ≥ 1: a zero threshold would declare
    /// healthy peers dead).
    pub fn with_down_after(peers: impl IntoIterator<Item = NodeId>, down_after: u32) -> Self {
        Self {
            peers: peers
                .into_iter()
                .map(|node| {
                    (
                        node,
                        PeerHealth {
                            status: PeerStatus::Up,
                            failures: 0,
                        },
                    )
                })
                .collect(),
            down_after: down_after.max(1),
        }
    }

    /// The failure-streak threshold in force.
    pub fn down_after(&self) -> u32 {
        self.down_after
    }

    /// Starts (or resets) tracking `node` as `Up` — the join /
    /// post-repair path.
    pub fn admit(&mut self, node: NodeId) {
        self.peers.insert(
            node,
            PeerHealth {
                status: PeerStatus::Up,
                failures: 0,
            },
        );
    }

    /// Stops tracking `node` — the planned-leave path.
    pub fn evict(&mut self, node: NodeId) {
        self.peers.remove(&node);
    }

    /// Records a successful probe (or any successful RPC — data-plane
    /// traffic is evidence of life too). Returns the new status,
    /// always [`PeerStatus::Up`] for a tracked peer.
    pub fn note_success(&mut self, node: NodeId) -> Option<PeerStatus> {
        let health = self.peers.get_mut(&node)?;
        health.failures = 0;
        health.status = PeerStatus::Up;
        Some(health.status)
    }

    /// Records a failed probe and returns the new status. The first
    /// failure demotes `Up` → `Suspect`; a streak of
    /// [`Self::down_after`] declares `Down`.
    pub fn note_failure(&mut self, node: NodeId) -> Option<PeerStatus> {
        let down_after = self.down_after;
        let health = self.peers.get_mut(&node)?;
        health.failures = health.failures.saturating_add(1);
        health.status = if health.failures >= down_after {
            PeerStatus::Down
        } else {
            PeerStatus::Suspect
        };
        Some(health.status)
    }

    /// The tracked status of `node`.
    pub fn status(&self, node: NodeId) -> Option<PeerStatus> {
        self.peers.get(&node).map(|h| h.status)
    }

    /// Peers currently believed `Up` (feeds the
    /// `zerber_membership_up` gauge).
    pub fn up_count(&self) -> usize {
        self.peers
            .values()
            .filter(|h| h.status == PeerStatus::Up)
            .count()
    }

    /// Peers declared `Down`, sorted for deterministic repair order.
    pub fn down_peers(&self) -> Vec<NodeId> {
        let mut down: Vec<NodeId> = self
            .peers
            .iter()
            .filter(|(_, h)| h.status == PeerStatus::Down)
            .map(|(&node, _)| node)
            .collect();
        down.sort_by_key(|node| format!("{node:?}"));
        down
    }

    /// Every tracked peer with its status, in arbitrary order.
    pub fn statuses(&self) -> impl Iterator<Item = (NodeId, PeerStatus)> + '_ {
        self.peers.iter().map(|(&node, h)| (node, h.status))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn failure_streaks_walk_up_suspect_down() {
        let node = NodeId::IndexServer(0);
        let mut table = MembershipTable::with_down_after([node], 3);
        assert_eq!(table.status(node), Some(PeerStatus::Up));
        assert_eq!(table.note_failure(node), Some(PeerStatus::Suspect));
        assert_eq!(table.note_failure(node), Some(PeerStatus::Suspect));
        assert_eq!(table.note_failure(node), Some(PeerStatus::Down));
        // Still down on further failures; one success fully recovers.
        assert_eq!(table.note_failure(node), Some(PeerStatus::Down));
        assert_eq!(table.note_success(node), Some(PeerStatus::Up));
        assert_eq!(table.status(node), Some(PeerStatus::Up));
        // The streak counter reset: one new failure is only Suspect.
        assert_eq!(table.note_failure(node), Some(PeerStatus::Suspect));
    }

    #[test]
    fn up_count_and_down_list_track_transitions() {
        let a = NodeId::IndexServer(0);
        let b = NodeId::IndexServer(1);
        let mut table = MembershipTable::with_down_after([a, b], 1);
        assert_eq!(table.up_count(), 2);
        table.note_failure(b);
        assert_eq!(table.up_count(), 1);
        assert_eq!(table.down_peers(), vec![b]);
        table.admit(b);
        assert_eq!(table.up_count(), 2);
        assert!(table.down_peers().is_empty());
        table.evict(a);
        assert_eq!(table.up_count(), 1);
        assert_eq!(table.status(a), None);
    }

    #[test]
    fn untracked_peers_are_ignored_not_invented() {
        let mut table = MembershipTable::new([NodeId::IndexServer(0)]);
        assert_eq!(table.note_failure(NodeId::IndexServer(9)), None);
        assert_eq!(table.note_success(NodeId::IndexServer(9)), None);
        assert_eq!(table.status(NodeId::IndexServer(9)), None);
    }
}
