//! The concurrent sharded peer runtime.
//!
//! The paper's deployment model (Section 5) is a set of *untrusted
//! peers*, each doing its own work: index servers hold share columns,
//! DHT peers hold fractions of the index (Section 3's future-work
//! direction), and clients talk to all of them over a network. This
//! module makes that structure real inside one process:
//!
//! * [`transport`] — the message-passing substrate: every RPC is
//!   serialized to its exact [`zerber_net::Message`] wire bytes,
//!   metered per link on a [`zerber_net::TrafficMeter`], and handed to
//!   the destination peer's inbox ([`InProcTransport`] today; the
//!   trait is wire-shaped so sockets can replace it).
//! * [`peer`] — one OS thread per peer. [`ServerService`] runs the
//!   share-holding index-server role (`ZerberSystem` hosts its `n`
//!   servers this way); [`ShardService`] serves one *document shard*
//!   of a plaintext collection behind the
//!   [`zerber_index::PostingStore`] trait and answers top-k queries
//!   with the lazy cursor-driven
//!   [`zerber_index::block_max_topk_cursors`] over
//!   [`zerber_index::PostingStore::query_cursors`] — only blocks that
//!   survive the block-max bound ever decompress.
//! * [`gather`] — merges per-peer top-k candidates under the
//!   threshold-algorithm bound; with document sharding the merge is
//!   provably identical to single-node evaluation (property-tested in
//!   `tests/sharded_topk.rs`).
//! * [`ShardedSearch`] — the facade: place documents on `P` peers via
//!   the consistent-hash ring ([`zerber_dht::ShardMap`]), build every
//!   shard's posting store in parallel on its own thread, fan queries
//!   out, gather.
//!
//! # Query path
//!
//! ```text
//!  client thread                    peer threads (one per shard)
//!  ─────────────                    ────────────────────────────
//!  idf weights (global df)
//!  TopKQuery ── fan_out ──┬──────▶  shard 0: lazy block-max topk ─┐
//!      (wire bytes        ├──────▶  shard 1: lazy block-max topk ─┤
//!       metered per link) └──────▶  shard P: lazy block-max topk ─┤
//!                                                            ▼
//!  ranked top-k  ◀── gather (TA bound) ◀── TopKResponse (sorted)
//! ```

pub mod gather;
pub mod handle;
pub mod peer;
pub mod shard;
pub mod transport;

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;

use zerber_dht::ShardMap;
use zerber_index::{DocId, Document, InvertedIndex, PostingBackend, RankedDoc, TermId};
use zerber_net::{AuthToken, Message, NodeId, TrafficMeter, WireDocument};

pub use gather::{gather_topk, gather_topk_with, GatherOutcome, GatherScratch};
pub use handle::RuntimeHandle;
pub use peer::{PeerRuntime, PeerService, ServerService, ShardService};
pub use shard::{build_shard_store, ShardStore, ShardStoreError};
pub use transport::{InProcTransport, Transport, TransportError};

use crate::config::{ConfigError, ZerberConfig};

thread_local! {
    /// Per-client-thread gather scratch: concurrent clients each keep
    /// their own, so `query_from` stays `&self` without a lock and the
    /// gather stage stops allocating per query.
    static GATHER_SCRATCH: std::cell::RefCell<GatherScratch> =
        std::cell::RefCell::new(GatherScratch::default());
}

/// Global collection statistics driving IDF weights: total documents
/// and per-term document frequency. Computed over the *full*
/// collection before sharding, so every shard scores with the same
/// weights a single node would use.
#[derive(Debug, Clone, Default)]
pub struct TermStats {
    /// Total documents in the collection.
    pub doc_count: usize,
    /// Documents containing each term.
    pub df: HashMap<TermId, u32>,
}

impl TermStats {
    /// Gathers statistics from a document set.
    pub fn from_documents(docs: &[Document]) -> Self {
        let mut df: HashMap<TermId, u32> = HashMap::new();
        for doc in docs {
            for &(term, _) in &doc.terms {
                *df.entry(term).or_insert(0) += 1;
            }
        }
        Self {
            doc_count: docs.len(),
            df,
        }
    }

    /// The IDF factor of one term (0 for unseen terms) — delegates to
    /// the shared [`zerber_index::idf`] every ranking path uses.
    pub fn idf(&self, term: TermId) -> f64 {
        let df = self.df.get(&term).copied().unwrap_or(0) as usize;
        zerber_index::idf(self.doc_count, df)
    }

    /// Per-term `(term, idf)` weights for a query, in query order.
    pub fn weights(&self, terms: &[TermId]) -> Vec<(TermId, f64)> {
        terms.iter().map(|&t| (t, self.idf(t))).collect()
    }

    /// Accounts one newly indexed document (its distinct terms).
    /// Exact-integer df/doc-count updates keep incrementally
    /// maintained statistics *identical* to a from-scratch rebuild —
    /// the invariant that keeps live-mutated deployments bit-identical
    /// to the oracle.
    pub fn add_document(&mut self, terms: impl IntoIterator<Item = TermId>) {
        self.doc_count += 1;
        for term in terms {
            *self.df.entry(term).or_insert(0) += 1;
        }
    }

    /// Reverses [`TermStats::add_document`] for a removed document.
    pub fn remove_document(&mut self, terms: impl IntoIterator<Item = TermId>) {
        self.doc_count = self.doc_count.saturating_sub(1);
        for term in terms {
            if let Some(df) = self.df.get_mut(&term) {
                *df -= 1;
                if *df == 0 {
                    self.df.remove(&term);
                }
            }
        }
    }
}

/// What one sharded query produced.
#[derive(Debug, Clone)]
pub struct ShardedQueryOutcome {
    /// The global top-k, identical to single-node evaluation.
    pub ranked: Vec<RankedDoc>,
    /// Peers the query fanned out to.
    pub peers_contacted: usize,
    /// Candidates shipped back by all peers.
    pub candidates_received: usize,
    /// Candidates the gather merge examined before the threshold
    /// bound cut it off.
    pub candidates_examined: usize,
}

/// A concurrent, document-sharded top-k search deployment.
///
/// Documents are placed on `config.peers` peer threads by the
/// consistent-hash ring; each peer indexes its shard on its own
/// thread (parallel build) and serves [`Message::TopKQuery`] with the
/// block-max Threshold Algorithm over the configured
/// [`zerber_index::PostingStore`] backend. `query` is `&self` and
/// thread-safe: concurrent clients fan out and gather independently,
/// which is what the `scalability` repro experiment measures.
///
/// This is the *plaintext* serving engine: shard peers enforce no
/// authentication or group ACLs (see [`ShardService`]) — use the
/// share-based [`crate::ZerberSystem`] path for access-controlled
/// collections.
///
/// # Example: a 4-peer deployment, end to end
///
/// ```
/// use zerber::runtime::{local_topk, ShardedSearch};
/// use zerber::ZerberConfig;
/// use zerber_index::{DocId, Document, GroupId, TermId};
///
/// // 40 documents; term 9 is everywhere, terms 0–6 rotate.
/// let docs: Vec<Document> = (0..40u32)
///     .map(|d| {
///         Document::from_term_counts(
///             DocId(d),
///             GroupId(0),
///             vec![(TermId(d % 7), 1 + d % 3), (TermId(9), 1)],
///         )
///     })
///     .collect();
///
/// let config = ZerberConfig::default().with_peers(4);
/// let search = ShardedSearch::launch(&config, &docs).unwrap();
/// assert_eq!(search.peer_count(), 4);
///
/// let query = [TermId(3), TermId(9)];
/// let outcome = search.query(&query, 5).unwrap();
/// assert_eq!(outcome.ranked.len(), 5);
/// assert_eq!(outcome.peers_contacted, 4);
///
/// // The sharded result is identical to single-node evaluation…
/// assert_eq!(outcome.ranked, local_topk(&config, &docs, &query, 5));
/// // …and every byte that crossed a link was accounted for.
/// assert!(search.traffic().total() > 0);
/// ```
pub struct ShardedSearch {
    runtime: PeerRuntime,
    peer_nodes: Vec<NodeId>,
    map: ShardMap,
    /// Global statistics plus the per-document term registry that
    /// keeps them incrementally exact under inserts and deletes.
    stats: RwLock<StatsState>,
}

struct StatsState {
    stats: TermStats,
    doc_terms: HashMap<DocId, Vec<TermId>>,
}

/// Why a live mutation did not land.
#[derive(Debug)]
pub enum IngestError {
    /// The transport failed (peer gone, wire damage).
    Transport(TransportError),
    /// The shard peer refused the mutation — `code` is the
    /// `zerber_net::message::fault` discriminant (frozen shard,
    /// storage failure, malformed document).
    Rejected {
        /// Fault code from the peer.
        code: u8,
    },
}

impl std::fmt::Display for IngestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IngestError::Transport(e) => write!(f, "ingest transport failure: {e}"),
            IngestError::Rejected { code } => write!(f, "shard rejected mutation (fault {code})"),
        }
    }
}

impl std::error::Error for IngestError {}

impl From<TransportError> for IngestError {
    fn from(e: TransportError) -> Self {
        IngestError::Transport(e)
    }
}

/// The backend one shard peer should build: the segmented backend
/// gets a per-shard subdirectory so stores never collide on disk; the
/// in-memory backends are borrowed as-is (no clone).
fn shard_backend(backend: &PostingBackend, peer: usize) -> std::borrow::Cow<'_, PostingBackend> {
    match backend {
        PostingBackend::Segmented { dir, compaction } => {
            std::borrow::Cow::Owned(PostingBackend::Segmented {
                dir: dir.join(format!("shard-{peer:03}")),
                compaction: *compaction,
            })
        }
        other => std::borrow::Cow::Borrowed(other),
    }
}

fn to_wire(doc: &Document) -> WireDocument {
    WireDocument {
        doc: doc.id,
        group: doc.group,
        length: doc.length,
        terms: doc.terms.clone(),
    }
}

impl ShardedSearch {
    /// Places `docs` on `config.peers` shards and spawns one
    /// indexing/serving thread per shard.
    ///
    /// The plaintext sharded engine places no Shamir shares, so the
    /// only ring requirement is `peers ≥ 1` — a single-peer deployment
    /// is the legitimate scaling baseline. (Share-placement rings are
    /// validated by [`ZerberConfig::validate`] at
    /// `ZerberSystem::bootstrap`.) Like the share path, this engine
    /// honors `config.postings` for the per-shard store backend; with
    /// [`PostingBackend::Segmented`], each peer owns a durable store
    /// in a `shard-<i>` subdirectory and the deployment supports live
    /// [`ShardedSearch::insert_documents`] /
    /// [`ShardedSearch::delete_document`] traffic. The segmented
    /// directories must be *fresh*: global statistics are computed
    /// from `docs`, so a shard peer panics rather than silently merge
    /// previously recovered state (reopen such stores with
    /// `zerber_segment::SegmentStore` directly).
    pub fn launch(config: &ZerberConfig, docs: &[Document]) -> Result<Self, ConfigError> {
        if config.peers == 0 {
            return Err(ConfigError::NoPeers);
        }
        let map = ShardMap::new(config.peers as u32);
        let shards = map.partition(docs, |doc| doc.id);
        let stats = TermStats::from_documents(docs);
        let doc_terms: HashMap<DocId, Vec<TermId>> = docs
            .iter()
            .map(|doc| (doc.id, doc.terms.iter().map(|&(t, _)| t).collect()))
            .collect();

        let mut runtime = PeerRuntime::new(Arc::new(TrafficMeter::new()));
        let mut peer_nodes = Vec::with_capacity(shards.len());
        // One shared backend description for every peer; the
        // per-shard variant (a subdirectory for the segmented engine)
        // is derived on the peer's own thread without cloning the
        // in-memory backends.
        let backend = Arc::new(config.postings.clone());
        for (peer, shard) in shards.into_iter().enumerate() {
            let node = NodeId::IndexServer(peer as u32);
            let backend = Arc::clone(&backend);
            // The initializer runs on the peer's thread: shard stores
            // build (index, compress, or seed the durable engine) in
            // parallel across all peers.
            runtime.spawn_peer(node, move || {
                ShardService::new(build_shard_store(
                    shard_backend(&backend, peer).as_ref(),
                    &shard,
                ))
            });
            peer_nodes.push(node);
        }
        Ok(Self {
            runtime,
            peer_nodes,
            map,
            stats: RwLock::new(StatsState { stats, doc_terms }),
        })
    }

    /// Number of shard peers.
    pub fn peer_count(&self) -> usize {
        self.peer_nodes.len()
    }

    /// A copy of the current global collection statistics (the IDF
    /// source).
    pub fn stats(&self) -> TermStats {
        self.stats.read().stats.clone()
    }

    /// Number of live documents across all shards.
    pub fn document_count(&self) -> usize {
        self.stats.read().stats.doc_count
    }

    /// The per-link wire-byte accounting for this deployment.
    pub fn traffic(&self) -> &Arc<TrafficMeter> {
        self.runtime.transport().meter()
    }

    /// Inserts (or replaces) documents live, as owner node `owner`:
    /// each document is routed to the shard peer the consistent-hash
    /// ring assigns it, and the global statistics are updated exactly
    /// once the shards acknowledge. Returns the number of documents
    /// shipped.
    ///
    /// Concurrent queries keep running against whichever side of the
    /// mutation they catch — a query observes either the old or the
    /// new state of each document, never a torn one.
    pub fn insert_documents(&self, owner: u32, docs: &[Document]) -> Result<usize, IngestError> {
        if docs.is_empty() {
            return Ok(0);
        }
        // Group per owning peer, preserving arrival order within each
        // group (later copies of a doc id must win).
        let mut per_peer: HashMap<u32, Vec<&Document>> = HashMap::new();
        for doc in docs {
            per_peer
                .entry(self.map.shard_of(doc.id).0)
                .or_default()
                .push(doc);
        }
        for (peer, group) in per_peer {
            let request = Message::IndexDocs {
                docs: group.iter().map(|doc| to_wire(doc)).collect(),
            };
            let response = self.runtime.transport().request(
                NodeId::Owner(owner),
                NodeId::IndexServer(peer),
                AuthToken(0),
                &request,
            )?;
            match response {
                Message::InsertOk => {}
                Message::Fault { code, .. } => return Err(IngestError::Rejected { code }),
                other => panic!("protocol violation: unexpected response {other:?}"),
            }
            // Account this peer's documents the moment it acknowledges:
            // if a later peer fails, the statistics still describe
            // exactly the documents that actually landed.
            let mut state = self.stats.write();
            for doc in &group {
                let terms: Vec<TermId> = doc.terms.iter().map(|&(t, _)| t).collect();
                state.stats.add_document(terms.iter().copied());
                if let Some(old) = state.doc_terms.insert(doc.id, terms) {
                    state.stats.remove_document(old);
                }
            }
        }
        Ok(docs.len())
    }

    /// Deletes one document live (routed like
    /// [`ShardedSearch::insert_documents`]). Returns whether the
    /// document existed.
    pub fn delete_document(&self, owner: u32, doc: DocId) -> Result<bool, IngestError> {
        let peer = self.map.shard_of(doc).0;
        let response = self.runtime.transport().request(
            NodeId::Owner(owner),
            NodeId::IndexServer(peer),
            AuthToken(0),
            &Message::RemoveDoc { doc },
        )?;
        let removed = match response {
            Message::DeleteOk { removed } => removed > 0,
            Message::Fault { code, .. } => return Err(IngestError::Rejected { code }),
            other => panic!("protocol violation: unexpected response {other:?}"),
        };
        if removed {
            let mut state = self.stats.write();
            if let Some(old) = state.doc_terms.remove(&doc) {
                state.stats.remove_document(old);
            }
        }
        Ok(removed)
    }

    /// Executes a top-`k` query as anonymous client 0.
    pub fn query(&self, terms: &[TermId], k: usize) -> Result<ShardedQueryOutcome, TransportError> {
        self.query_from(0, terms, k)
    }

    /// Executes a top-`k` query as client `client` (distinct clients
    /// get distinct links in the traffic accounting).
    pub fn query_from(
        &self,
        client: u32,
        terms: &[TermId],
        k: usize,
    ) -> Result<ShardedQueryOutcome, TransportError> {
        let request = Message::TopKQuery {
            terms: self.stats.read().stats.weights(terms),
            // Saturate rather than truncate: document ids are 32-bit,
            // so no shard can hold more than u32::MAX results anyway.
            k: u32::try_from(k).unwrap_or(u32::MAX),
        };
        let from = NodeId::User(client);
        let responses =
            self.runtime
                .transport()
                .fan_out(from, &self.peer_nodes, AuthToken(0), &request);
        let mut per_peer: Vec<Vec<RankedDoc>> = Vec::with_capacity(responses.len());
        for response in responses {
            match response? {
                Message::TopKResponse { candidates } => per_peer.push(
                    candidates
                        .into_iter()
                        .map(|(doc, score)| RankedDoc { doc, score })
                        .collect(),
                ),
                other => panic!("protocol violation: unexpected response {other:?}"),
            }
        }
        let gathered = GATHER_SCRATCH
            .with(|scratch| gather_topk_with(&mut scratch.borrow_mut(), &per_peer, k));
        Ok(ShardedQueryOutcome {
            ranked: gathered.ranked,
            peers_contacted: self.peer_nodes.len(),
            candidates_received: gathered.candidates_received,
            candidates_examined: gathered.candidates_examined,
        })
    }
}

/// The single-node reference: the same store backend, the same global
/// IDF weights, the same lazy cursor-driven block-max Threshold
/// Algorithm — without sharding. [`ShardedSearch::query`] returns
/// exactly this (the `sharded_topk` property test proves bit-identity
/// for arbitrary corpora, peer counts, and `k`).
pub fn local_topk(
    config: &ZerberConfig,
    docs: &[Document],
    terms: &[TermId],
    k: usize,
) -> Vec<RankedDoc> {
    let index = InvertedIndex::from_documents(docs);
    let store = config.posting_store(&index);
    let stats = TermStats::from_documents(docs);
    let mut cursors = store.query_cursors(&stats.weights(terms));
    let mut scratch = zerber_index::TopKScratch::new();
    zerber_index::block_max_topk_cursors(&mut cursors, k, &mut scratch);
    drop(cursors);
    scratch.take_ranked()
}

#[cfg(test)]
mod tests {
    use super::*;
    use zerber_index::{DocId, GroupId};

    fn corpus(docs: u32, terms: u32) -> Vec<Document> {
        (0..docs)
            .map(|d| {
                Document::from_term_counts(
                    DocId(d),
                    GroupId(0),
                    (0..3)
                        .map(|i| (TermId((d + i) % terms), 1 + (d * 7 + i) % 4))
                        .collect(),
                )
            })
            .collect()
    }

    #[test]
    fn sharded_query_matches_local_reference() {
        let docs = corpus(120, 17);
        let config = ZerberConfig::default().with_peers(5);
        let search = ShardedSearch::launch(&config, &docs).unwrap();
        for terms in [
            vec![TermId(0)],
            vec![TermId(3), TermId(8)],
            vec![TermId(1), TermId(1), TermId(16)],
        ] {
            let outcome = search.query(&terms, 10).unwrap();
            assert_eq!(outcome.ranked, local_topk(&config, &docs, &terms, 10));
            assert!(outcome.candidates_examined <= 10);
            assert!(outcome.candidates_received >= outcome.candidates_examined);
        }
    }

    #[test]
    fn compressed_backend_serves_identically() {
        let docs = corpus(200, 9);
        let raw = ZerberConfig::default().with_peers(4);
        let compressed = raw.clone().with_postings(PostingBackend::Compressed);
        let a = ShardedSearch::launch(&raw, &docs).unwrap();
        let b = ShardedSearch::launch(&compressed, &docs).unwrap();
        let terms = [TermId(2), TermId(5)];
        assert_eq!(
            a.query(&terms, 15).unwrap().ranked,
            b.query(&terms, 15).unwrap().ranked
        );
    }

    #[test]
    fn concurrent_clients_share_one_deployment() {
        let docs = corpus(150, 11);
        let config = ZerberConfig::default().with_peers(4);
        let search = ShardedSearch::launch(&config, &docs).unwrap();
        let reference = local_topk(&config, &docs, &[TermId(4)], 8);
        std::thread::scope(|scope| {
            for client in 0..6u32 {
                let search = &search;
                let reference = &reference;
                scope.spawn(move || {
                    for _ in 0..10 {
                        let outcome = search.query_from(client, &[TermId(4)], 8).unwrap();
                        assert_eq!(&outcome.ranked, reference);
                    }
                });
            }
        });
        // Each client got its own metered links.
        for client in 0..6u32 {
            assert!(search.traffic().sent_by(NodeId::User(client)) > 0);
        }
    }

    #[test]
    fn unknown_terms_and_empty_queries_are_harmless() {
        let docs = corpus(30, 5);
        let config = ZerberConfig::default().with_peers(3);
        let search = ShardedSearch::launch(&config, &docs).unwrap();
        assert!(search.query(&[], 5).unwrap().ranked.is_empty());
        assert!(search.query(&[TermId(999)], 5).unwrap().ranked.is_empty());
        assert!(search.query(&[TermId(1)], 0).unwrap().ranked.is_empty());
    }

    #[test]
    fn live_mutation_tracks_the_rebuild_oracle_on_every_backend() {
        let initial = corpus(90, 13);
        let dir = zerber_segment::scratch_dir("sharded-mutation-unit");
        let backends = vec![
            PostingBackend::Raw,
            PostingBackend::Compressed,
            PostingBackend::Segmented {
                dir: dir.clone(),
                compaction: zerber_index::SegmentPolicy {
                    flush_postings: 32,
                    max_segments: 2,
                    background: true,
                    sync_wal: false,
                },
            },
        ];
        for backend in backends {
            let config = ZerberConfig::default().with_peers(3).with_postings(backend);
            let search = ShardedSearch::launch(&config, &initial).unwrap();
            let mut live = initial.clone();
            // Replace one doc (dropping terms), delete one, add one.
            let replacement =
                Document::from_term_counts(DocId(4), GroupId(0), vec![(TermId(12), 2)]);
            let addition = Document::from_term_counts(DocId(500), GroupId(0), vec![(TermId(0), 1)]);
            search
                .insert_documents(0, std::slice::from_ref(&replacement))
                .unwrap();
            assert!(search.delete_document(0, DocId(7)).unwrap());
            assert!(!search.delete_document(0, DocId(7777)).unwrap());
            search
                .insert_documents(0, std::slice::from_ref(&addition))
                .unwrap();
            live.retain(|d| d.id != DocId(4) && d.id != DocId(7));
            live.push(replacement.clone());
            live.push(addition.clone());

            let raw_reference = ZerberConfig::default();
            for terms in [vec![TermId(0)], vec![TermId(12), TermId(3)]] {
                let outcome = search.query(&terms, 10).unwrap();
                let expected = local_topk(&raw_reference, &live, &terms, 10);
                assert_eq!(outcome.ranked.len(), expected.len());
                for (got, want) in outcome.ranked.iter().zip(&expected) {
                    assert_eq!(got.doc, want.doc);
                    assert_eq!(got.score.to_bits(), want.score.to_bits());
                }
            }
            assert_eq!(search.document_count(), live.len());
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn frozen_rejection_surfaces_as_ingest_error() {
        // A deployment whose shards were bulk-built frozen takes no
        // writes; the typed rejection must reach the caller.
        let docs = corpus(20, 4);
        let config = ZerberConfig::default().with_peers(2);
        let mut runtime = PeerRuntime::new(Arc::new(TrafficMeter::new()));
        let map = ShardMap::new(2);
        let shards = map.partition(&docs, |doc| doc.id);
        let mut peer_nodes = Vec::new();
        for (peer, shard) in shards.into_iter().enumerate() {
            let node = NodeId::IndexServer(peer as u32);
            let frozen_config = config.clone();
            runtime.spawn_peer(node, move || {
                let index = InvertedIndex::from_documents(&shard);
                ShardService::frozen(frozen_config.posting_store(&index))
            });
            peer_nodes.push(node);
        }
        let search = ShardedSearch {
            runtime,
            peer_nodes,
            map,
            stats: RwLock::new(StatsState {
                stats: TermStats::from_documents(&docs),
                doc_terms: HashMap::new(),
            }),
        };
        let doc = Document::from_term_counts(DocId(900), GroupId(0), vec![(TermId(1), 1)]);
        assert!(matches!(
            search.insert_documents(0, &[doc]),
            Err(IngestError::Rejected { .. })
        ));
    }

    #[test]
    fn single_peer_is_valid_and_zero_peers_fail_fast() {
        let docs = corpus(20, 4);
        let single = ZerberConfig::default().with_peers(1);
        let search = ShardedSearch::launch(&single, &docs).unwrap();
        assert_eq!(
            search.query(&[TermId(1)], 3).unwrap().ranked,
            local_topk(&single, &docs, &[TermId(1)], 3)
        );
        let zero = ZerberConfig::default().with_peers(0);
        assert!(ShardedSearch::launch(&zero, &docs).is_err());
    }
}
