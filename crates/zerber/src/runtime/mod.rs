//! The concurrent sharded peer runtime.
//!
//! The paper's deployment model (Section 5) is a set of *untrusted
//! peers*, each doing its own work: index servers hold share columns,
//! DHT peers hold fractions of the index (Section 3's future-work
//! direction), and clients talk to all of them over a network. This
//! module makes that structure real inside one process:
//!
//! * [`transport`] — the message-passing substrate: every RPC is
//!   serialized to its exact [`zerber_net::Message`] wire bytes,
//!   metered per link on a [`zerber_net::TrafficMeter`], and handed to
//!   the destination peer ([`InProcTransport`] in one process,
//!   [`socket::SocketTransport`] over real length-framed TCP). The
//!   trait hands back a [`transport::PendingReply`] per request, which
//!   is what hedging and failover are built from.
//! * [`fault`] — the deterministic chaos harness:
//!   [`fault::FaultInjectTransport`] wraps any transport and injects
//!   seeded drops, delays, duplicates, torn writes, and peer kills,
//!   reproducible from a single seed.
//! * [`peer`] — one OS thread per peer. [`ServerService`] runs the
//!   share-holding index-server role (`ZerberSystem` hosts its `n`
//!   servers this way); [`ShardService`] serves one *document shard*
//!   of a plaintext collection behind the
//!   [`zerber_index::PostingStore`] trait and answers top-k queries
//!   with the lazy cursor-driven
//!   [`zerber_index::block_max_topk_cursors`] over
//!   [`zerber_index::PostingStore::query_cursors`] — only blocks that
//!   survive the block-max bound ever decompress.
//! * [`gather`] — merges per-peer top-k candidates under the
//!   threshold-algorithm bound; with document sharding the merge is
//!   provably identical to single-node evaluation (property-tested in
//!   `tests/sharded_topk.rs`). Its [`gather::hedged_fan_out`] drives
//!   the replicated fetch: first live replica per shard wins, slow or
//!   dead replicas are hedged around and *reported*.
//! * [`ShardedSearch`] — the facade: place documents on `P` peers via
//!   the consistent-hash ring ([`zerber_dht::ShardMap`]), replicate
//!   each shard on `R` successor peers, build every shard store in
//!   parallel on its peer's thread, fan queries out, gather.
//!
//! # Query path
//!
//! ```text
//!  client thread                    peer threads (R replicas/shard)
//!  ─────────────                    ───────────────────────────────
//!  idf weights (global df)
//!  TopKQuery ─ hedged fan-out ─┬─▶  shard 0 @ peer 0 ─ block-max ─┐
//!      (wire bytes             ├─▶  shard 1 @ peer 1 ─ block-max ─┤
//!       metered per link;      └─▶  shard 2 @ peer 2 ✗ dead       │
//!       silent replica ⇒ hedge)  └▶ shard 2 @ peer 3 ─ block-max ─┤
//!                                                             ▼
//!  ranked top-k  ◀── gather (TA bound) ◀── TopKResponse (sorted)
//! ```

pub mod fault;
pub mod gather;
pub mod handle;
pub mod membership;
pub mod obs;
pub mod peer;
pub mod repair;
pub mod shard;
pub mod socket;
pub mod transport;

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Mutex, RwLock};

use zerber_dht::ShardMap;
use zerber_index::{DocId, Document, InvertedIndex, PostingBackend, RankedDoc, TermId};
use zerber_net::{AuthToken, Message, NodeId, TrafficMeter, WireDocument};
use zerber_obs::{QueryTrace, SpanRecord, TraceId};
use zerber_query::{CacheConfig, Forced, Query, ResultCache};

pub use fault::{ChaosAction, FaultInjectTransport, FaultPlan};
pub use gather::{
    gather_topk, gather_topk_with, hedged_fan_out, AttemptOutcome, AttemptRecord, GatherOutcome,
    GatherScratch, HedgePolicy, ShardFetch, ShardUnavailable,
};
pub use handle::RuntimeHandle;
pub use membership::{MembershipTable, PeerStatus};
pub use obs::RuntimeObs;
pub use peer::{PeerRuntime, PeerService, RestoreFn, ServerService, ShardService};
pub use repair::{rebuild_shard, Backoff, RepairError, RepairStats};
pub use shard::{
    build_shard_store, build_shard_store_observed, restore_shard_store, ShardStore, ShardStoreError,
};
pub use transport::{InProcTransport, PendingReply, Transport, TransportError};

use crate::runtime::transport::DEFAULT_RPC_TIMEOUT;

use crate::config::{ConfigError, ZerberConfig};

thread_local! {
    /// Per-client-thread gather scratch: concurrent clients each keep
    /// their own, so `query_from` stays `&self` without a lock and the
    /// gather stage stops allocating per query.
    static GATHER_SCRATCH: std::cell::RefCell<GatherScratch> =
        std::cell::RefCell::new(GatherScratch::default());
}

/// Global collection statistics driving IDF weights: total documents
/// and per-term document frequency. Computed over the *full*
/// collection before sharding, so every shard scores with the same
/// weights a single node would use.
#[derive(Debug, Clone, Default)]
pub struct TermStats {
    /// Total documents in the collection.
    pub doc_count: usize,
    /// Documents containing each term.
    pub df: HashMap<TermId, u32>,
}

impl TermStats {
    /// Gathers statistics from a document set.
    pub fn from_documents(docs: &[Document]) -> Self {
        let mut df: HashMap<TermId, u32> = HashMap::new();
        for doc in docs {
            for &(term, _) in &doc.terms {
                *df.entry(term).or_insert(0) += 1;
            }
        }
        Self {
            doc_count: docs.len(),
            df,
        }
    }

    /// The IDF factor of one term (0 for unseen terms) — delegates to
    /// the shared [`zerber_index::idf`] every ranking path uses.
    pub fn idf(&self, term: TermId) -> f64 {
        let df = self.df.get(&term).copied().unwrap_or(0) as usize;
        zerber_index::idf(self.doc_count, df)
    }

    /// Per-term `(term, idf)` weights for a query, in query order.
    pub fn weights(&self, terms: &[TermId]) -> Vec<(TermId, f64)> {
        terms.iter().map(|&t| (t, self.idf(t))).collect()
    }

    /// Accounts one newly indexed document (its distinct terms).
    /// Exact-integer df/doc-count updates keep incrementally
    /// maintained statistics *identical* to a from-scratch rebuild —
    /// the invariant that keeps live-mutated deployments bit-identical
    /// to the oracle.
    pub fn add_document(&mut self, terms: impl IntoIterator<Item = TermId>) {
        self.doc_count += 1;
        for term in terms {
            *self.df.entry(term).or_insert(0) += 1;
        }
    }

    /// Reverses [`TermStats::add_document`] for a removed document.
    pub fn remove_document(&mut self, terms: impl IntoIterator<Item = TermId>) {
        self.doc_count = self.doc_count.saturating_sub(1);
        for term in terms {
            if let Some(df) = self.df.get_mut(&term) {
                *df -= 1;
                if *df == 0 {
                    self.df.remove(&term);
                }
            }
        }
    }
}

/// What one sharded query produced.
///
/// Hedge, duplicate-response, and failed-attempt *counts* moved off
/// this struct and into the deployment's metrics registry
/// ([`ShardedSearch::obs`], `zerber_gather_*` counter families); the
/// per-query evidence — per-stage wall clock, per-attempt RPC spans,
/// decode accounting — rides along as the full [`QueryTrace`].
#[derive(Debug, Clone)]
pub struct ShardedQueryOutcome {
    /// The global top-k, identical to single-node evaluation.
    pub ranked: Vec<RankedDoc>,
    /// Primary peers the query fanned out to (one per shard; hedged
    /// retries are counted in `zerber_gather_hedges_total`).
    pub peers_contacted: usize,
    /// Candidates shipped back by all peers.
    pub candidates_received: usize,
    /// Candidates the gather merge examined before the threshold
    /// bound cut it off.
    pub candidates_examined: usize,
    /// Replicas that failed or stayed silent before their shard
    /// settled, each with its terminal error (timeout vs. dead link
    /// vs. fault) — the dead are reported, never silently dropped.
    pub failed_peers: Vec<(NodeId, TransportError)>,
    /// Shards *no* replica answered for, served as empty under
    /// [`DegradedMode::FlaggedPartial`]. Empty on a complete answer —
    /// and always empty under [`DegradedMode::FailClosed`], which
    /// turns the first uncovered shard into a [`QueryError`].
    pub partial_shards: Vec<u32>,
    /// The assembled span tree of this query: fan-out, per-shard RPC
    /// attempts (with hedges, failures, and duplicates), peer-side
    /// decode, and gather merge.
    pub trace: Arc<QueryTrace>,
}

/// What a query does when a shard has no answering replica.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DegradedMode {
    /// Fail the whole query with the per-replica evidence
    /// ([`QueryError::Unavailable`]). The default: a silently partial
    /// top-k is a *wrong* top-k.
    #[default]
    FailClosed,
    /// Serve the covered shards and *flag* the uncovered ones in
    /// [`ShardedQueryOutcome::partial_shards`]. Partial answers never
    /// fill the result cache.
    FlaggedPartial,
}

/// A concurrent, document-sharded top-k search deployment.
///
/// Documents are placed on `config.peers` peer threads by the
/// consistent-hash ring; each peer indexes its shard on its own
/// thread (parallel build) and serves [`Message::TopKQuery`] with the
/// block-max Threshold Algorithm over the configured
/// [`zerber_index::PostingStore`] backend. `query` is `&self` and
/// thread-safe: concurrent clients fan out and gather independently,
/// which is what the `scalability` repro experiment measures.
///
/// This is the *plaintext* serving engine: shard peers enforce no
/// authentication or group ACLs (see [`ShardService`]) — use the
/// share-based [`crate::ZerberSystem`] path for access-controlled
/// collections.
///
/// # Example: a 4-peer deployment, end to end
///
/// ```
/// use zerber::runtime::{local_topk, ShardedSearch};
/// use zerber::ZerberConfig;
/// use zerber_index::{DocId, Document, GroupId, TermId};
///
/// // 40 documents; term 9 is everywhere, terms 0–6 rotate.
/// let docs: Vec<Document> = (0..40u32)
///     .map(|d| {
///         Document::from_term_counts(
///             DocId(d),
///             GroupId(0),
///             vec![(TermId(d % 7), 1 + d % 3), (TermId(9), 1)],
///         )
///     })
///     .collect();
///
/// let config = ZerberConfig::default().with_peers(4);
/// let search = ShardedSearch::launch(&config, &docs).unwrap();
/// assert_eq!(search.peer_count(), 4);
///
/// let query = [TermId(3), TermId(9)];
/// let outcome = search.query(&query, 5).unwrap();
/// assert_eq!(outcome.ranked.len(), 5);
/// assert_eq!(outcome.peers_contacted, 4);
///
/// // The sharded result is identical to single-node evaluation…
/// assert_eq!(outcome.ranked, local_topk(&config, &docs, &query, 5));
/// // …and every byte that crossed a link was accounted for.
/// assert!(search.traffic().total() > 0);
/// ```
pub struct ShardedSearch {
    runtime: PeerRuntime,
    /// The transport clients speak through. Normally the runtime's own
    /// [`InProcTransport`]; [`ShardedSearch::launch_with_transport`]
    /// lets a caller wrap it (the chaos harness injects faults here
    /// without the peers knowing).
    transport: Arc<dyn Transport>,
    /// The serving shard → peer assignment. Queries read it; only a
    /// join/leave cutover writes it.
    map: RwLock<ShardMap>,
    /// The *next* assignment while a join/leave migration is in
    /// flight: writes fan to the union of old and new placement (so
    /// no acknowledged write misses a future replica), while queries
    /// keep serving from the old assignment until cutover.
    transition: Mutex<Option<ShardMap>>,
    /// Peers that missed an acknowledged write (their replica fan-out
    /// leg kept failing after retries): queries skip them until
    /// [`ShardedSearch::repair_peer`] re-ships their shards, because a
    /// replica that missed a write may not serve — bit-identity over
    /// availability.
    tainted: Mutex<HashSet<u32>>,
    /// Heartbeat-driven peer health (feeds `zerber_membership_up`).
    membership: Mutex<MembershipTable>,
    /// What queries do about a shard with no live replica.
    degraded: RwLock<DegradedMode>,
    /// The per-replica store backend — kept so repaired/joining peers
    /// rebuild their stores from shipped snapshots.
    backend: Arc<PostingBackend>,
    /// Copies per shard (`1` = unreplicated).
    replicas: u32,
    /// When queries hedge to the next replica.
    policy: HedgePolicy,
    /// Global statistics plus the per-document term registry that
    /// keeps them incrementally exact under inserts and deletes.
    stats: RwLock<StatsState>,
    /// Per-deployment metrics registry, trace allocator, and query
    /// forensics (slow-query log, flight recorder).
    obs: RuntimeObs,
    /// The epoch-keyed result cache behind
    /// [`ShardedSearch::query_shaped`].
    cache: ResultCache,
    /// Serving epoch: bumped after every acknowledged visible mutation
    /// (insert, bulk load, effective delete). Cache keys embed it, so
    /// entries minted before a write can never be looked up after it.
    epoch: AtomicU64,
}

struct StatsState {
    stats: TermStats,
    doc_terms: HashMap<DocId, Vec<TermId>>,
}

/// Why a live mutation did not land.
#[derive(Debug)]
pub enum IngestError {
    /// The transport failed (peer gone, wire damage).
    Transport(TransportError),
    /// The shard peer refused the mutation — `code` is the
    /// `zerber_net::message::fault` discriminant (frozen shard,
    /// storage failure, malformed document).
    Rejected {
        /// Fault code from the peer.
        code: u8,
    },
}

impl std::fmt::Display for IngestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IngestError::Transport(e) => write!(f, "ingest transport failure: {e}"),
            IngestError::Rejected { code } => write!(f, "shard rejected mutation (fault {code})"),
        }
    }
}

impl std::error::Error for IngestError {}

impl From<TransportError> for IngestError {
    fn from(e: TransportError) -> Self {
        IngestError::Transport(e)
    }
}

/// Why a query could not complete. With the hedged gather, individual
/// replica failures never surface here — only a shard *none* of whose
/// replicas answered fails the query, and it fails closed with the
/// per-replica evidence rather than returning a silently partial
/// top-k.
#[derive(Debug)]
pub enum QueryError {
    /// A shard no replica answered for.
    Unavailable(ShardUnavailable),
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::Unavailable(s) => {
                write!(
                    f,
                    "shard {} unavailable after {} attempts",
                    s.shard,
                    s.attempts.len()
                )?;
                // The per-replica terminal evidence: a timeout reads
                // differently from a dead link or a fault frame, and
                // the operator debugging an outage needs to know which.
                for attempt in &s.attempts {
                    if let AttemptOutcome::Failed(error) = attempt.outcome {
                        write!(f, "; {:?}: {error}", attempt.peer)?;
                    }
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for QueryError {}

/// The backend one replica store should build: the segmented backend
/// gets a per-(peer, shard) subdirectory so replica stores never
/// collide on disk; the in-memory backends are borrowed as-is (no
/// clone).
fn replica_backend(
    backend: &PostingBackend,
    peer: usize,
    shard: u32,
) -> std::borrow::Cow<'_, PostingBackend> {
    match backend {
        PostingBackend::Segmented { dir, compaction } => {
            std::borrow::Cow::Owned(PostingBackend::Segmented {
                dir: dir.join(format!("peer-{peer:03}-shard-{shard:03}")),
                compaction: *compaction,
            })
        }
        other => std::borrow::Cow::Borrowed(other),
    }
}

fn to_wire(doc: &Document) -> WireDocument {
    WireDocument {
        doc: doc.id,
        group: doc.group,
        length: doc.length,
        terms: doc.terms.clone(),
    }
}

/// Merges one replica's write acknowledgement into the settled
/// response, preferring the highest `DeleteOk.removed` — a
/// mid-rebuild replica buffers deletes and acks `removed: 0`, so a
/// live replica's observation must win.
fn merge_write_ack(best: &mut Option<Message>, response: Message) {
    match (best.as_mut(), response) {
        (Some(Message::DeleteOk { removed }), Message::DeleteOk { removed: other }) => {
            *removed = (*removed).max(other);
        }
        (Some(_), _) => {}
        (None, response) => *best = Some(response),
    }
}

/// The snapshot-restore factory one peer's [`ShardService`] uses to
/// become a rebuild target: installed files build a fresh store on the
/// peer's own backend (and, for the segmented engine, in the peer's
/// own replica directory).
fn restore_factory(backend: Arc<PostingBackend>, peer: u32) -> peer::RestoreFn {
    Box::new(move |shard, files| {
        shard::restore_shard_store(
            replica_backend(&backend, peer as usize, shard).as_ref(),
            files,
        )
    })
}

impl ShardedSearch {
    /// Places `docs` on `config.peers` shards and spawns one
    /// indexing/serving thread per shard.
    ///
    /// The plaintext sharded engine places no Shamir shares, so the
    /// only ring requirement is `peers ≥ 1` — a single-peer deployment
    /// is the legitimate scaling baseline. (Share-placement rings are
    /// validated by [`ZerberConfig::validate`] at
    /// `ZerberSystem::bootstrap`.) Like the share path, this engine
    /// honors `config.postings` for the per-shard store backend; with
    /// [`PostingBackend::Segmented`], each replica owns a durable
    /// store in a `peer-<p>-shard-<s>` subdirectory — created only for
    /// the shards that peer actually hosts — and the deployment
    /// supports live
    /// [`ShardedSearch::insert_documents`] /
    /// [`ShardedSearch::delete_document`] traffic. The segmented
    /// directories must be *fresh*: global statistics are computed
    /// from `docs`, so a shard peer panics rather than silently merge
    /// previously recovered state (reopen such stores with
    /// `zerber_segment::SegmentStore` directly).
    ///
    /// With `config.replication = R > 1`, every logical shard is also
    /// copied onto the `R - 1` successor peers on the ring
    /// ([`ShardMap::replica_peers`]): writes fan to all copies, and
    /// queries hedge to a successor when a replica is slow or dead —
    /// any single peer can be lost without losing a shard.
    pub fn launch(config: &ZerberConfig, docs: &[Document]) -> Result<Self, ConfigError> {
        Self::launch_with_transport(config, docs, |transport| transport)
    }

    /// [`ShardedSearch::launch`] with a transport wrapper: `wrap`
    /// receives the runtime's [`InProcTransport`] and returns the
    /// transport *clients* will speak through. Peers always reply via
    /// the inner transport; only the client side is wrapped — which is
    /// exactly where the fault-injection harness
    /// ([`FaultInjectTransport`]) sits.
    pub fn launch_with_transport<F>(
        config: &ZerberConfig,
        docs: &[Document],
        wrap: F,
    ) -> Result<Self, ConfigError>
    where
        F: FnOnce(Arc<InProcTransport>) -> Arc<dyn Transport>,
    {
        if config.peers == 0 {
            return Err(ConfigError::NoPeers);
        }
        if config.replication == 0 {
            return Err(ConfigError::NoReplicas);
        }
        let replicas = (config.replication as u32).min(config.peers as u32);
        let map = ShardMap::new(config.peers as u32);
        // Every peer needs read access to the shards it hosts (its own
        // plus, under replication, its predecessors'), so the
        // partition is shared rather than moved into one initializer.
        let shards = Arc::new(map.partition(docs, |doc| doc.id));
        let stats = TermStats::from_documents(docs);
        let doc_terms: HashMap<DocId, Vec<TermId>> = docs
            .iter()
            .map(|doc| (doc.id, doc.terms.iter().map(|&(t, _)| t).collect()))
            .collect();

        let obs = RuntimeObs::new();
        let runtime = PeerRuntime::new(Arc::new(TrafficMeter::new()));
        // One shared backend description for every peer; the
        // per-replica variant (a subdirectory for the segmented
        // engine) is derived on the peer's own thread without cloning
        // the in-memory backends.
        let backend = Arc::new(config.postings.clone());
        for peer in 0..config.peers {
            let node = NodeId::IndexServer(peer as u32);
            let backend = Arc::clone(&backend);
            let shards = Arc::clone(&shards);
            let hosted = map.hosted_shards(peer as u32, replicas);
            // Segmented stores report WAL/flush/compaction timings
            // into the deployment's registry; the registry is shared
            // across all peers (instruments aggregate).
            let registry = obs.registry().clone();
            // The initializer runs on the peer's thread: every hosted
            // replica store builds (index, compress, or seed the
            // durable engine) in parallel across all peers.
            runtime.spawn_peer(node, move || {
                let restore = restore_factory(Arc::clone(&backend), peer as u32);
                ShardService::hosting(hosted.into_iter().map(|shard| {
                    let store = shard::build_shard_store_observed(
                        replica_backend(&backend, peer, shard).as_ref(),
                        &shards[shard as usize],
                        Some(&registry),
                    );
                    (shard, store)
                }))
                .with_restore(restore)
            });
        }
        let transport = wrap(Arc::clone(runtime.transport()));
        let membership =
            MembershipTable::new(map.peer_ids().iter().map(|&p| NodeId::IndexServer(p)));
        obs.metrics()
            .membership_up
            .set(membership.up_count() as i64);
        Ok(Self {
            runtime,
            transport,
            map: RwLock::new(map),
            transition: Mutex::new(None),
            tainted: Mutex::new(HashSet::new()),
            membership: Mutex::new(membership),
            degraded: RwLock::new(DegradedMode::default()),
            backend,
            replicas,
            policy: HedgePolicy::default(),
            stats: RwLock::new(StatsState { stats, doc_terms }),
            obs,
            cache: ResultCache::new(CacheConfig::default()),
            epoch: AtomicU64::new(0),
        })
    }

    /// Number of live shard peers (changes under join/leave).
    pub fn peer_count(&self) -> usize {
        self.map.read().peer_count() as usize
    }

    /// Number of logical shards (fixed at launch).
    pub fn shard_count(&self) -> u32 {
        self.map.read().shard_count()
    }

    /// A copy of the current serving shard → peer assignment.
    pub fn shard_map(&self) -> ShardMap {
        self.map.read().clone()
    }

    /// Copies of each shard (clamped to the peer count at launch).
    pub fn replication(&self) -> u32 {
        self.replicas
    }

    /// What queries do when a shard has no answering replica.
    pub fn set_degraded_mode(&self, mode: DegradedMode) {
        *self.degraded.write() = mode;
    }

    /// The peers currently excluded from query fan-out because they
    /// missed an acknowledged write (sorted; empty when healthy).
    pub fn tainted_peers(&self) -> Vec<u32> {
        let mut peers: Vec<u32> = self.tainted.lock().iter().copied().collect();
        peers.sort_unstable();
        peers
    }

    /// Replaces the hedging policy (when to give up on a replica and
    /// try its successor). Chaos tests tighten this to keep injected
    /// delays from dominating wall-clock time.
    pub fn set_hedge_policy(&mut self, policy: HedgePolicy) {
        self.policy = policy;
    }

    /// The transport clients of this deployment speak through.
    pub fn transport(&self) -> &Arc<dyn Transport> {
        &self.transport
    }

    /// This deployment's observability handle: metrics registry,
    /// slow-query log, and flight recorder. Snapshot its registry for
    /// the `zerber_*` counter/gauge/histogram families the query,
    /// gather, and segment layers record into.
    pub fn obs(&self) -> &RuntimeObs {
        &self.obs
    }

    /// Kills one peer: its thread shuts down and every later request
    /// to it fails. With replication, queries keep answering from the
    /// survivors; without, its shard becomes unavailable. (The
    /// availability experiment and the failover tests use this.)
    pub fn kill_peer(&self, peer: u32) {
        self.runtime.transport().shutdown(NodeId::IndexServer(peer));
    }

    /// A copy of the current global collection statistics (the IDF
    /// source).
    pub fn stats(&self) -> TermStats {
        self.stats.read().stats.clone()
    }

    /// Number of live documents across all shards.
    pub fn document_count(&self) -> usize {
        self.stats.read().stats.doc_count
    }

    /// The per-link wire-byte accounting for this deployment.
    pub fn traffic(&self) -> &Arc<TrafficMeter> {
        self.runtime.transport().meter()
    }

    /// The peers one write to `shard` must reach: the current replica
    /// set, plus — during a join/leave migration — the new
    /// assignment's replicas, so no acknowledged write can miss a
    /// peer that is about to start serving the shard.
    fn write_peers(&self, shard: u32) -> Vec<u32> {
        let mut peers: Vec<u32> = self
            .map
            .read()
            .replica_peers(shard, self.replicas)
            .into_iter()
            .map(|p| p.0)
            .collect();
        if let Some(next) = self.transition.lock().as_ref() {
            for p in next.replica_peers(shard, self.replicas) {
                if !peers.contains(&p.0) {
                    peers.push(p.0);
                }
            }
        }
        peers
    }

    /// Begins one write on every peer in `peers` (all sends leave
    /// before any wait, so the round trip costs the slowest replica).
    fn begin_write(&self, from: NodeId, peers: &[u32], payload: &Arc<[u8]>) -> Vec<PendingReply> {
        peers
            .iter()
            .map(|&peer| {
                self.transport.begin(
                    from,
                    NodeId::IndexServer(peer),
                    AuthToken(0),
                    Arc::clone(payload),
                )
            })
            .collect()
    }

    /// Settles one shard's replica write fan-out under the
    /// retry-then-repair discipline:
    ///
    /// * a **fault** from any replica fails the write closed
    ///   ([`IngestError::Rejected`], no epoch bump, cache intact) —
    ///   the store itself said no, and retrying cannot change that;
    /// * a **transport failure** retries briefly with jittered
    ///   backoff; a replica that still will not take the write is
    ///   *tainted* — excluded from query fan-out until
    ///   [`ShardedSearch::repair_peer`] re-ships it the shard
    ///   (re-shipping is idempotent: replay applies documents by id);
    /// * the write **succeeds** while at least one replica
    ///   acknowledged — availability is preserved without ever letting
    ///   a stale replica answer queries.
    ///
    /// Responses are merged preferring the highest `DeleteOk.removed`:
    /// a mid-rebuild replica buffers the delete and acks `removed: 0`,
    /// so a live replica's count must win.
    fn settle_write(
        &self,
        from: NodeId,
        shard: u32,
        request: &Message,
        peers: &[u32],
        pendings: Vec<PendingReply>,
    ) -> Result<Message, IngestError> {
        let mut best: Option<Message> = None;
        let mut acked = 0usize;
        let mut last_error: Option<TransportError> = None;
        let mut retry: Vec<u32> = Vec::new();
        for (&peer, mut pending) in peers.iter().zip(pendings) {
            match pending.wait(DEFAULT_RPC_TIMEOUT) {
                Ok(Message::Fault { code, .. }) => return Err(IngestError::Rejected { code }),
                Ok(response) => {
                    acked += 1;
                    merge_write_ack(&mut best, response);
                }
                Err(error) => {
                    last_error = Some(error);
                    retry.push(peer);
                }
            }
        }
        if !retry.is_empty() {
            let mut backoff = repair::Backoff::for_seed(u64::from(shard) ^ 0x57A7_E0F5_ED11_BEEF);
            for peer in retry {
                let mut landed = false;
                for _ in 0..2 {
                    std::thread::sleep(backoff.next_delay());
                    match self.transport.request(
                        from,
                        NodeId::IndexServer(peer),
                        AuthToken(0),
                        request,
                    ) {
                        Ok(Message::Fault { code, .. }) => {
                            return Err(IngestError::Rejected { code })
                        }
                        Ok(response) => {
                            acked += 1;
                            merge_write_ack(&mut best, response);
                            landed = true;
                            break;
                        }
                        Err(error) => last_error = Some(error),
                    }
                }
                if !landed {
                    // The replica missed an acknowledged write: it may
                    // not serve queries again until repaired.
                    self.tainted.lock().insert(peer);
                }
            }
        }
        if acked == 0 {
            return Err(IngestError::Transport(
                last_error.expect("zero acks imply at least one error"),
            ));
        }
        Ok(best.expect("acked responses were merged"))
    }

    /// Fans one write to every replica of `shard` under the
    /// retry-then-repair discipline of
    /// [`ShardedSearch::settle_write`].
    fn fan_write(
        &self,
        from: NodeId,
        shard: u32,
        request: &Message,
    ) -> Result<Message, IngestError> {
        let payload: Arc<[u8]> = Arc::from(request.encode().as_ref());
        let peers = self.write_peers(shard);
        let pendings = self.begin_write(from, &peers, &payload);
        self.settle_write(from, shard, request, &peers, pendings)
    }

    /// Inserts (or replaces) documents live, as owner node `owner`:
    /// each document is routed to its shard by the consistent-hash
    /// ring, shipped to *every* replica of that shard, and the global
    /// statistics are updated exactly once all replicas acknowledge.
    /// Returns the number of documents shipped.
    ///
    /// Concurrent queries keep running against whichever side of the
    /// mutation they catch — a query observes either the old or the
    /// new state of each document, never a torn one.
    pub fn insert_documents(&self, owner: u32, docs: &[Document]) -> Result<usize, IngestError> {
        if docs.is_empty() {
            return Ok(0);
        }
        // Group per shard, preserving arrival order within each group
        // (later copies of a doc id must win).
        let mut per_shard: HashMap<u32, Vec<&Document>> = HashMap::new();
        {
            let map = self.map.read();
            for doc in docs {
                per_shard
                    .entry(map.shard_of(doc.id).0)
                    .or_default()
                    .push(doc);
            }
        }
        for (shard, group) in per_shard {
            let request = Message::IndexDocs {
                shard,
                docs: group.iter().map(|doc| to_wire(doc)).collect(),
            };
            match self.fan_write(NodeId::Owner(owner), shard, &request)? {
                Message::InsertOk => {}
                other => panic!("protocol violation: unexpected response {other:?}"),
            }
            // Account this shard's documents the moment its replicas
            // acknowledge: if a later shard fails, the statistics
            // still describe exactly the documents that landed.
            let mut state = self.stats.write();
            for doc in &group {
                let terms: Vec<TermId> = doc.terms.iter().map(|&(t, _)| t).collect();
                state.stats.add_document(terms.iter().copied());
                if let Some(old) = state.doc_terms.insert(doc.id, terms) {
                    state.stats.remove_document(old);
                }
            }
            drop(state);
            // Bump per acknowledged group, not once at the end: if a
            // later shard fails, the groups that *did* land must still
            // have invalidated the cache.
            self.epoch.fetch_add(1, Ordering::Release);
        }
        Ok(docs.len())
    }

    /// Bulk-loads documents along the offline path, as owner node
    /// `owner`. Routing and replacement semantics are identical to
    /// [`ShardedSearch::insert_documents`] — each document goes to its
    /// ring shard, every replica must acknowledge, and the global
    /// statistics account each shard once all its replicas ack — but
    /// the batch ships as [`Message::BulkLoad`], so a segmented
    /// replica builds block-compressed segments through the parallel
    /// SPIMI path (no WAL write) instead of journaling every posting.
    /// Each replica builds its *own* copy of the shard from the same
    /// wire batch, so replicas stay bit-identical without shipping
    /// segment files.
    ///
    /// Unlike the live path, every shard's replica fan-out is begun
    /// before any reply is awaited: bulk load is the throughput path,
    /// and all hosting peers should be building concurrently. The
    /// load costs the slowest replica, not the sum across shards.
    /// Returns the number of documents shipped.
    pub fn bulk_load(&self, owner: u32, docs: &[Document]) -> Result<usize, IngestError> {
        if docs.is_empty() {
            return Ok(0);
        }
        // Group per shard, preserving arrival order within each group
        // (later copies of a doc id must win).
        let mut per_shard: HashMap<u32, Vec<&Document>> = HashMap::new();
        {
            let map = self.map.read();
            for doc in docs {
                per_shard
                    .entry(map.shard_of(doc.id).0)
                    .or_default()
                    .push(doc);
            }
        }
        #[allow(clippy::type_complexity)]
        let mut inflight: Vec<(u32, Message, Vec<&Document>, Vec<u32>, Vec<PendingReply>)> =
            Vec::with_capacity(per_shard.len());
        for (shard, group) in per_shard {
            let request = Message::BulkLoad {
                shard,
                docs: group.iter().map(|doc| to_wire(doc)).collect(),
            };
            let payload: Arc<[u8]> = Arc::from(request.encode().as_ref());
            let peers = self.write_peers(shard);
            let pendings = self.begin_write(NodeId::Owner(owner), &peers, &payload);
            inflight.push((shard, request, group, peers, pendings));
        }
        for (shard, request, group, peers, pendings) in inflight {
            match self.settle_write(NodeId::Owner(owner), shard, &request, &peers, pendings)? {
                Message::InsertOk => {}
                other => panic!("protocol violation: unexpected response {other:?}"),
            }
            // Account this shard's documents the moment its replicas
            // all acknowledge — exactly the live-insert discipline, so
            // a failed shard leaves statistics describing only the
            // documents that actually landed.
            let mut state = self.stats.write();
            for doc in &group {
                let terms: Vec<TermId> = doc.terms.iter().map(|&(t, _)| t).collect();
                state.stats.add_document(terms.iter().copied());
                if let Some(old) = state.doc_terms.insert(doc.id, terms) {
                    state.stats.remove_document(old);
                }
            }
            drop(state);
            self.epoch.fetch_add(1, Ordering::Release);
        }
        Ok(docs.len())
    }

    /// Deletes one document live (routed like
    /// [`ShardedSearch::insert_documents`], fanned to every replica).
    /// Returns whether the document existed.
    pub fn delete_document(&self, owner: u32, doc: DocId) -> Result<bool, IngestError> {
        let shard = self.map.read().shard_of(doc).0;
        let request = Message::RemoveDoc { shard, doc };
        let removed = match self.fan_write(NodeId::Owner(owner), shard, &request)? {
            Message::DeleteOk { removed } => removed > 0,
            other => panic!("protocol violation: unexpected response {other:?}"),
        };
        if removed {
            let mut state = self.stats.write();
            if let Some(old) = state.doc_terms.remove(&doc) {
                state.stats.remove_document(old);
            }
            drop(state);
            // A miss (the doc never existed) changes no visible
            // result, so it keeps the epoch — and the cache — intact.
            self.epoch.fetch_add(1, Ordering::Release);
        }
        Ok(removed)
    }

    /// Builds one query's fan-out list: one request per shard, fanned
    /// to that shard's replicas *minus* any tainted peer — a replica
    /// that missed an acknowledged write may hold stale postings, so
    /// it must not answer queries until repaired (correctness over
    /// availability). The map is read once, so a concurrent cutover
    /// flips between queries, never inside one.
    fn query_shards(&self, build: impl Fn(u32) -> Message) -> Vec<gather::ShardRequest> {
        let map = self.map.read();
        let tainted = self.tainted.lock();
        (0..map.shard_count())
            .map(|shard| {
                let replicas = map
                    .replica_peers(shard, self.replicas)
                    .into_iter()
                    .filter(|peer| !tainted.contains(&peer.0))
                    .map(|peer| NodeId::IndexServer(peer.0))
                    .collect();
                (shard, replicas, Arc::from(build(shard).encode().as_ref()))
            })
            .collect()
    }

    /// Executes a top-`k` query as anonymous client 0.
    pub fn query(&self, terms: &[TermId], k: usize) -> Result<ShardedQueryOutcome, QueryError> {
        self.query_from(0, terms, k)
    }

    /// Executes a top-`k` query as client `client` (distinct clients
    /// get distinct links in the traffic accounting).
    ///
    /// The fan-out is *hedged*: each shard's request goes to its
    /// primary replica first, and only a replica that is silent for
    /// [`HedgePolicy::hedge_after`] (or answers with a fault) costs a
    /// retry on the next replica. Replica stores are identical copies,
    /// so whichever one answers, the gathered top-k is bit-identical
    /// to the single-node oracle — a dead peer changes availability
    /// accounting, never results.
    pub fn query_from(
        &self,
        client: u32,
        terms: &[TermId],
        k: usize,
    ) -> Result<ShardedQueryOutcome, QueryError> {
        let weights = self.stats.read().stats.weights(terms);
        // Saturate rather than truncate: document ids are 32-bit, so
        // no shard can hold more than u32::MAX results anyway.
        let wire_k = u32::try_from(k).unwrap_or(u32::MAX);
        let shards = self.query_shards(|shard| Message::TopKQuery {
            shard,
            terms: weights.clone(),
            k: wire_k,
        });
        let from = NodeId::User(client);
        let started = Instant::now();
        let trace_id = self.obs.next_trace_id();
        let (fetches, fanout_span) = traced_topk_fanout(
            &self.obs,
            self.transport.as_ref(),
            from,
            AuthToken(0),
            trace_id,
            &shards,
            &self.policy,
        );

        let degraded = *self.degraded.read();
        let mut per_shard: Vec<Vec<RankedDoc>> = Vec::with_capacity(fetches.len());
        let mut failed_peers: Vec<(NodeId, TransportError)> = Vec::new();
        let mut partial_shards: Vec<u32> = Vec::new();
        let mut unavailable_err: Option<ShardUnavailable> = None;
        for fetch in fetches {
            let fetch = match fetch {
                Ok(fetch) => fetch,
                Err(unavailable) => match degraded {
                    DegradedMode::FailClosed => {
                        unavailable_err = Some(unavailable);
                        break;
                    }
                    DegradedMode::FlaggedPartial => {
                        partial_shards.push(unavailable.shard);
                        failed_peers.extend(unavailable.attempts.iter().filter_map(|a| {
                            match a.outcome {
                                AttemptOutcome::Failed(error) => Some((a.peer, error)),
                                _ => None,
                            }
                        }));
                        continue;
                    }
                },
            };
            failed_peers.extend(fetch.failed());
            match fetch.response {
                Message::TopKResponse { candidates, .. } => per_shard.push(
                    candidates
                        .into_iter()
                        .map(|(doc, score)| RankedDoc { doc, score })
                        .collect(),
                ),
                other => panic!("protocol violation: unexpected response {other:?}"),
            }
        }
        if let Some(unavailable) = unavailable_err {
            // A failed-closed query still counts: record its latency,
            // completion, and a *failure trace* (the slow-query log is
            // exactly where an operator looks for the terminal
            // per-replica errors) before surfacing the loss.
            let total = started.elapsed();
            let metrics = self.obs.metrics();
            metrics.latency.record(total.as_nanos() as u64);
            metrics.total.inc();
            let root = SpanRecord::new("query", Duration::ZERO, total)
                .with_counter("k", k as u64)
                .failed(format!("shard {} unavailable", unavailable.shard))
                .with_child(fanout_span);
            self.obs.record_trace(Arc::new(QueryTrace {
                id: trace_id,
                label: format!("terms={terms:?} k={k}"),
                total,
                root,
            }));
            return Err(QueryError::Unavailable(unavailable));
        }
        let gather_started = Instant::now();
        let gathered = GATHER_SCRATCH
            .with(|scratch| gather_topk_with(&mut scratch.borrow_mut(), &per_shard, k));
        let gather_span = SpanRecord::new(
            "gather",
            gather_started.duration_since(started),
            gather_started.elapsed(),
        )
        .with_counter("candidates_received", gathered.candidates_received as u64)
        .with_counter("candidates_examined", gathered.candidates_examined as u64);

        let metrics = self.obs.metrics();
        metrics
            .candidates_received
            .add(gathered.candidates_received as u64);
        metrics
            .candidates_examined
            .add(gathered.candidates_examined as u64);
        let total = started.elapsed();
        metrics.latency.record(total.as_nanos() as u64);
        metrics.total.inc();
        self.obs.sync_traffic(self.traffic());

        let root = SpanRecord::new("query", Duration::ZERO, total)
            .with_counter("k", k as u64)
            .with_child(fanout_span)
            .with_child(gather_span);
        let trace = Arc::new(QueryTrace {
            id: trace_id,
            label: format!("terms={terms:?} k={k}"),
            total,
            root,
        });
        self.obs.record_trace(Arc::clone(&trace));

        Ok(ShardedQueryOutcome {
            ranked: gathered.ranked,
            peers_contacted: per_shard.len(),
            candidates_received: gathered.candidates_received,
            candidates_examined: gathered.candidates_examined,
            failed_peers,
            partial_shards,
            trace,
        })
    }

    /// The current serving epoch (the cache-key component writes bump).
    pub fn serving_epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// The epoch-keyed result cache behind
    /// [`ShardedSearch::query_shaped`].
    pub fn result_cache(&self) -> &ResultCache {
        &self.cache
    }

    /// Executes a shaped top-`k` query ([`Query::Terms`] /
    /// [`Query::And`] / [`Query::Phrase`]) as client `client`.
    ///
    /// The query is normalized, then probed against the epoch-keyed
    /// result cache; a hit answers without touching any peer (the
    /// trace records a `cache` span instead of a fan-out). A miss
    /// ships [`Message::PlanQuery`] to every shard — each peer runs
    /// the planned evaluator (block-max TA, MaxScore, conjunctive
    /// leapfrog, or phrase) over its backend — gathers exactly like
    /// [`ShardedSearch::query_from`], and fills the cache under the
    /// epoch the probe used. Because writes bump the epoch *after*
    /// every replica acknowledges, a key minted before a write can
    /// never be looked up after it: stale hits are structurally
    /// impossible, not scrubbed.
    ///
    /// `forced` overrides the disjunctive planner choice
    /// ([`Forced::BlockMaxTa`] / [`Forced::MaxScore`]) so benchmarks
    /// can pit the evaluators against each other; every evaluator is
    /// bit-identical to the exhaustive oracle, so `forced` changes
    /// cost, never results.
    pub fn query_shaped(
        &self,
        client: u32,
        query: Query,
        forced: Forced,
    ) -> Result<ShardedQueryOutcome, QueryError> {
        let started = Instant::now();
        let normalized = query.normalized();
        let k = normalized.k();
        let label = format!(
            "{:?} terms={:?} k={k} forced={forced:?}",
            normalized.shape(),
            normalized.terms()
        );
        let epoch = self.epoch.load(Ordering::Acquire);
        let key = normalized.cache_key(epoch);
        let metrics = self.obs.metrics();
        if let Some(ranked) = self.cache.get(&key) {
            metrics.cache_hits.inc();
            let total = started.elapsed();
            metrics.latency.record(total.as_nanos() as u64);
            metrics.total.inc();
            let cache_span = SpanRecord::new("cache", Duration::ZERO, total)
                .with_counter("hit", 1)
                .with_counter("epoch", epoch);
            let root = SpanRecord::new("query", Duration::ZERO, total)
                .with_counter("k", k as u64)
                .with_child(cache_span);
            let trace = Arc::new(QueryTrace {
                id: self.obs.next_trace_id(),
                label,
                total,
                root,
            });
            self.obs.record_trace(Arc::clone(&trace));
            return Ok(ShardedQueryOutcome {
                ranked: ranked.as_ref().clone(),
                peers_contacted: 0,
                candidates_received: 0,
                candidates_examined: 0,
                failed_peers: Vec::new(),
                partial_shards: Vec::new(),
                trace,
            });
        }
        metrics.cache_misses.inc();
        metrics
            .plan_counter(zerber_query::plan(
                normalized.shape(),
                normalized.terms().len(),
                forced,
            ))
            .inc();

        let weights = self.stats.read().stats.weights(normalized.terms());
        let wire_k = u32::try_from(k).unwrap_or(u32::MAX);
        let shape = normalized.shape().as_u8();
        let shards = self.query_shards(|shard| Message::PlanQuery {
            shard,
            shape,
            forced: forced.as_u8(),
            terms: weights.clone(),
            k: wire_k,
        });
        let from = NodeId::User(client);
        let trace_id = self.obs.next_trace_id();
        let (fetches, fanout_span) = traced_topk_fanout(
            &self.obs,
            self.transport.as_ref(),
            from,
            AuthToken(0),
            trace_id,
            &shards,
            &self.policy,
        );

        let degraded = *self.degraded.read();
        let mut per_shard: Vec<Vec<RankedDoc>> = Vec::with_capacity(fetches.len());
        let mut failed_peers: Vec<(NodeId, TransportError)> = Vec::new();
        let mut partial_shards: Vec<u32> = Vec::new();
        let mut unavailable_err: Option<ShardUnavailable> = None;
        for fetch in fetches {
            let fetch = match fetch {
                Ok(fetch) => fetch,
                Err(unavailable) => match degraded {
                    DegradedMode::FailClosed => {
                        unavailable_err = Some(unavailable);
                        break;
                    }
                    DegradedMode::FlaggedPartial => {
                        partial_shards.push(unavailable.shard);
                        failed_peers.extend(unavailable.attempts.iter().filter_map(|a| {
                            match a.outcome {
                                AttemptOutcome::Failed(error) => Some((a.peer, error)),
                                _ => None,
                            }
                        }));
                        continue;
                    }
                },
            };
            failed_peers.extend(fetch.failed());
            match fetch.response {
                Message::TopKResponse { candidates, .. } => per_shard.push(
                    candidates
                        .into_iter()
                        .map(|(doc, score)| RankedDoc { doc, score })
                        .collect(),
                ),
                other => panic!("protocol violation: unexpected response {other:?}"),
            }
        }
        if let Some(unavailable) = unavailable_err {
            let total = started.elapsed();
            metrics.latency.record(total.as_nanos() as u64);
            metrics.total.inc();
            let root = SpanRecord::new("query", Duration::ZERO, total)
                .with_counter("k", k as u64)
                .failed(format!("shard {} unavailable", unavailable.shard))
                .with_child(fanout_span);
            self.obs.record_trace(Arc::new(QueryTrace {
                id: trace_id,
                label,
                total,
                root,
            }));
            return Err(QueryError::Unavailable(unavailable));
        }
        let gather_started = Instant::now();
        let gathered = GATHER_SCRATCH
            .with(|scratch| gather_topk_with(&mut scratch.borrow_mut(), &per_shard, k));
        let gather_span = SpanRecord::new(
            "gather",
            gather_started.duration_since(started),
            gather_started.elapsed(),
        )
        .with_counter("candidates_received", gathered.candidates_received as u64)
        .with_counter("candidates_examined", gathered.candidates_examined as u64);

        // Fill the cache under the epoch the probe used: if a write
        // landed mid-flight the epoch has moved on, this key names a
        // dead epoch, and no future probe can ever read it. A partial
        // answer (flagged-degraded mode with shards missing) never
        // fills the cache — it is not *the* answer for this epoch.
        if partial_shards.is_empty() {
            let evicted = self.cache.insert(key, Arc::new(gathered.ranked.clone()));
            metrics.cache_evictions.add(evicted);
        }
        metrics
            .candidates_received
            .add(gathered.candidates_received as u64);
        metrics
            .candidates_examined
            .add(gathered.candidates_examined as u64);
        let total = started.elapsed();
        metrics.latency.record(total.as_nanos() as u64);
        metrics.total.inc();
        self.obs.sync_traffic(self.traffic());

        let root = SpanRecord::new("query", Duration::ZERO, total)
            .with_counter("k", k as u64)
            .with_child(fanout_span)
            .with_child(gather_span);
        let trace = Arc::new(QueryTrace {
            id: trace_id,
            label,
            total,
            root,
        });
        self.obs.record_trace(Arc::clone(&trace));

        Ok(ShardedQueryOutcome {
            ranked: gathered.ranked,
            peers_contacted: per_shard.len(),
            candidates_received: gathered.candidates_received,
            candidates_examined: gathered.candidates_examined,
            failed_peers,
            partial_shards,
            trace,
        })
    }

    /// The identity control-plane RPCs (heartbeats, shard rebuilds)
    /// travel as.
    const CONTROLLER: NodeId = NodeId::Owner(0);

    /// Probes every mapped peer with [`Message::Ping`] and feeds the
    /// outcomes into the membership table, returning each peer's
    /// debounced status. One missed probe makes a peer `Suspect`;
    /// a streak declares it `Down` (repair-eligible); any answer —
    /// including a fault — snaps it back to `Up`. Also refreshes the
    /// `zerber_membership_up` gauge.
    pub fn heartbeat(&self) -> Vec<(NodeId, PeerStatus)> {
        let peers: Vec<NodeId> = self
            .map
            .read()
            .peer_ids()
            .iter()
            .map(|&p| NodeId::IndexServer(p))
            .collect();
        let mut membership = self.membership.lock();
        for &node in &peers {
            let alive = repair::probe(self.transport.as_ref(), Self::CONTROLLER, node);
            if membership.status(node).is_none() {
                membership.admit(node);
            }
            if alive {
                membership.note_success(node);
            } else {
                membership.note_failure(node);
            }
        }
        self.obs
            .metrics()
            .membership_up
            .set(membership.up_count() as i64);
        peers
            .iter()
            .map(|&node| {
                (
                    node,
                    membership.status(node).expect("probed peers are tracked"),
                )
            })
            .collect()
    }

    /// Respawns a killed peer and rebuilds every shard it hosts from
    /// live replicas. The revived service starts mid-rebuild — it
    /// buffers writes and bounces reads from its very first request,
    /// so it can never serve the stale state it died with — and each
    /// shard starts serving again only when its snapshot commit (plus
    /// buffered-write replay) succeeds. Returns the total shipped.
    pub fn revive_peer(&self, peer: u32) -> Result<RepairStats, RepairError> {
        let hosted = self.map.read().hosted_shards(peer, self.replicas);
        let backend = Arc::clone(&self.backend);
        self.runtime.spawn_peer(NodeId::IndexServer(peer), move || {
            ShardService::rebuilding(hosted).with_restore(restore_factory(backend, peer))
        });
        self.repair_peer(peer)
    }

    /// Re-ships every shard hosted by `peer` from a live replica and,
    /// on success, clears the peer's taint and readmits it to
    /// membership. Safe to run on a currently-serving peer (the begin
    /// frame flips each shard to write-buffering) and idempotent:
    /// snapshot replay applies documents by id, so re-shipping state
    /// the peer already holds changes nothing.
    ///
    /// While the repair runs the peer is tainted — queries skip it —
    /// and it is untainted only once *every* hosted shard has cut
    /// over, so a half-repaired peer never answers.
    pub fn repair_peer(&self, peer: u32) -> Result<RepairStats, RepairError> {
        let map = self.map.read().clone();
        if !map.contains_peer(peer) {
            return Err(RepairError::Protocol(format!("peer {peer} is not mapped")));
        }
        let target = NodeId::IndexServer(peer);
        self.tainted.lock().insert(peer);
        let mut total = RepairStats::default();
        for shard in map.hosted_shards(peer, self.replicas) {
            let source = map
                .replica_peers(shard, self.replicas)
                .into_iter()
                .map(|p| p.0)
                .find(|&p| p != peer && !self.tainted.lock().contains(&p))
                .ok_or_else(|| {
                    RepairError::Protocol(format!("shard {shard} has no live replica to ship from"))
                })?;
            let stats = rebuild_shard(
                self.transport.as_ref(),
                Self::CONTROLLER,
                AuthToken(0),
                NodeId::IndexServer(source),
                target,
                shard,
                Some(&self.obs),
            )?;
            total.segments += stats.segments;
            total.bytes += stats.bytes;
        }
        self.tainted.lock().remove(&peer);
        let mut membership = self.membership.lock();
        membership.admit(target);
        self.obs
            .metrics()
            .membership_up
            .set(membership.up_count() as i64);
        Ok(total)
    }

    /// Tells `target` to start write-buffering `shard` (the begin
    /// frame of the rebuild protocol) — sent to every peer *gaining* a
    /// shard in a join/leave migration before writes start fanning to
    /// the new placement, so a gained peer acks (buffers) writes it
    /// cannot yet serve instead of rejecting them.
    fn begin_buffering(&self, shard: u32, target: NodeId) -> Result<(), RepairError> {
        let begin = Message::InstallShard {
            shard,
            epoch: 0,
            name: String::new(),
            crc: 0,
            commit: false,
            payload: zerber_net::Bytes::new(),
        };
        let mut backoff = Backoff::for_seed(u64::from(shard) ^ 0x0B5E_55ED_B00F_FEED);
        let response = repair::retry_request(
            self.transport.as_ref(),
            Self::CONTROLLER,
            target,
            AuthToken(0),
            &begin,
            3,
            &mut backoff,
        )
        .map_err(RepairError::Transport)?;
        match response {
            Message::InsertOk => Ok(()),
            Message::Fault { code, .. } => Err(RepairError::Refused { node: target, code }),
            other => Err(RepairError::Protocol(format!("begin answered {other:?}"))),
        }
    }

    /// Ships every [`zerber_dht::ShardMove`] of a computed transition:
    /// begin frames to all gaining peers, then the transition becomes
    /// the write fan-out union, then each moved shard streams from a
    /// live old-assignment source, and finally queries cut over to the
    /// new assignment atomically. On failure the transition stays
    /// installed — writes keep reaching both placements (so a retry
    /// ships a superset snapshot and loses nothing) and queries keep
    /// serving the old assignment.
    fn migrate(
        &self,
        next: ShardMap,
        moves: &[zerber_dht::ShardMove],
    ) -> Result<RepairStats, RepairError> {
        for mv in moves {
            for gained in &mv.gained {
                self.begin_buffering(mv.shard, NodeId::IndexServer(gained.0))?;
            }
        }
        *self.transition.lock() = Some(next.clone());
        let mut total = RepairStats::default();
        for mv in moves {
            let source = mv
                .sources
                .iter()
                .map(|p| p.0)
                .find(|p| !mv.gained.iter().any(|g| g.0 == *p) && !self.tainted.lock().contains(p))
                .ok_or_else(|| {
                    RepairError::Protocol(format!(
                        "shard {} has no live source to migrate from",
                        mv.shard
                    ))
                })?;
            for gained in &mv.gained {
                let stats = rebuild_shard(
                    self.transport.as_ref(),
                    Self::CONTROLLER,
                    AuthToken(0),
                    NodeId::IndexServer(source),
                    NodeId::IndexServer(gained.0),
                    mv.shard,
                    Some(&self.obs),
                )?;
                total.segments += stats.segments;
                total.bytes += stats.bytes;
            }
        }
        *self.map.write() = next;
        *self.transition.lock() = None;
        Ok(total)
    }

    /// Adds `peer` to the ring and rebalances: the joiner spawns
    /// mid-rebuild (buffering every shard it will host from its first
    /// request), every moved shard ships from a live source while
    /// queries keep serving the old assignment, and the cutover flips
    /// atomically once all copies are installed. Returns the total
    /// shipped across all moves.
    pub fn join_peer(&self, peer: u32) -> Result<RepairStats, RepairError> {
        let mut next = {
            let map = self.map.read();
            if map.contains_peer(peer) {
                return Err(RepairError::Protocol(format!("peer {peer} already mapped")));
            }
            map.clone()
        };
        let moves = next.join(peer, self.replicas);
        let hosted = next.hosted_shards(peer, self.replicas);
        let backend = Arc::clone(&self.backend);
        self.runtime.spawn_peer(NodeId::IndexServer(peer), move || {
            ShardService::rebuilding(hosted).with_restore(restore_factory(backend, peer))
        });
        let total = self.migrate(next, &moves)?;
        let mut membership = self.membership.lock();
        membership.admit(NodeId::IndexServer(peer));
        self.obs
            .metrics()
            .membership_up
            .set(membership.up_count() as i64);
        Ok(total)
    }

    /// Gracefully removes `peer` from the ring: its shards re-home
    /// onto the survivors, every moved copy ships (the leaver is a
    /// valid source until cutover), queries flip to the new
    /// assignment, and only then is the leaver shut down and evicted
    /// from membership. Returns the total shipped across all moves.
    pub fn leave_peer(&self, peer: u32) -> Result<RepairStats, RepairError> {
        let mut next = {
            let map = self.map.read();
            if !map.contains_peer(peer) {
                return Err(RepairError::Protocol(format!("peer {peer} is not mapped")));
            }
            if map.peer_count() <= 1 {
                return Err(RepairError::Protocol(
                    "cannot remove the last peer".to_string(),
                ));
            }
            map.clone()
        };
        let moves = next.leave(peer, self.replicas);
        let total = self.migrate(next, &moves)?;
        let mut membership = self.membership.lock();
        membership.evict(NodeId::IndexServer(peer));
        self.obs
            .metrics()
            .membership_up
            .set(membership.up_count() as i64);
        drop(membership);
        self.kill_peer(peer);
        Ok(total)
    }
}

/// Runs [`hedged_fan_out`] under `trace`, folds the per-attempt RPC
/// timings and the peers' decode accounting into `obs`'s registry, and
/// builds the `fan_out` span (one child per shard, one grandchild per
/// replica attempt, a `decode` great-grandchild under each winning
/// attempt).
///
/// Shared by [`ShardedSearch::query_from`] and hand-wired clusters
/// (`examples/socket_cluster.rs`, the observability tests) so the
/// in-process and multi-process socket paths assemble identical trace
/// shapes.
pub fn traced_topk_fanout(
    obs: &RuntimeObs,
    transport: &dyn Transport,
    from: NodeId,
    auth: AuthToken,
    trace: TraceId,
    shards: &[gather::ShardRequest],
    policy: &HedgePolicy,
) -> (Vec<Result<ShardFetch, ShardUnavailable>>, SpanRecord) {
    let started = Instant::now();
    let fetches = hedged_fan_out(transport, from, auth, trace.0, shards, policy);
    let fanout_wall = started.elapsed();
    let metrics = obs.metrics();

    let mut span = SpanRecord::new("fan_out", Duration::ZERO, fanout_wall);
    for fetch in &fetches {
        let (shard, attempts, settled_peer) = match fetch {
            Ok(fetch) => (fetch.shard, &fetch.attempts, Some(fetch.peer)),
            Err(unavailable) => (unavailable.shard, &unavailable.attempts, None),
        };
        let shard_wall = attempts
            .iter()
            .map(|a| a.started + a.duration)
            .max()
            .unwrap_or(Duration::ZERO);
        let mut shard_span = SpanRecord::new(format!("shard {shard}"), Duration::ZERO, shard_wall);
        if settled_peer.is_none() {
            shard_span = shard_span.failed("no replica answered");
        }
        for attempt in attempts {
            metrics
                .rpc_latency
                .record(attempt.duration.as_nanos() as u64);
            let mut rpc = SpanRecord::new(
                format!("rpc {:?}", attempt.peer),
                attempt.started,
                attempt.duration,
            );
            match attempt.outcome {
                AttemptOutcome::Answered => {
                    if let Some(Ok(fetch)) = (settled_peer == Some(attempt.peer))
                        .then_some(fetch)
                        .map(|f| f.as_ref())
                    {
                        if let Message::TopKResponse {
                            decode_ns,
                            blocks_decoded,
                            blocks_total,
                            ..
                        } = fetch.response
                        {
                            metrics.decode_latency.record(decode_ns);
                            metrics.blocks_decoded.add(u64::from(blocks_decoded));
                            metrics
                                .blocks_skipped
                                .add(u64::from(blocks_total.saturating_sub(blocks_decoded)));
                            rpc = rpc.with_child(
                                SpanRecord::new(
                                    "decode",
                                    attempt.started,
                                    Duration::from_nanos(decode_ns),
                                )
                                .with_counter("blocks_decoded", u64::from(blocks_decoded))
                                .with_counter("blocks_total", u64::from(blocks_total)),
                            );
                        }
                    }
                }
                AttemptOutcome::Failed(error) => {
                    metrics.failed_attempts.inc();
                    rpc = rpc.failed(format!("{error}"));
                }
                AttemptOutcome::Duplicate => {
                    metrics.duplicate_responses.inc();
                    rpc = rpc.with_counter("duplicate", 1);
                }
            }
            shard_span = shard_span.with_child(rpc);
        }
        if let Ok(fetch) = fetch {
            metrics.hedges.add(fetch.hedges() as u64);
        }
        span = span.with_child(shard_span);
    }
    (fetches, span)
}

/// The single-node reference: the same store backend, the same global
/// IDF weights, the same lazy cursor-driven block-max Threshold
/// Algorithm — without sharding. [`ShardedSearch::query`] returns
/// exactly this (the `sharded_topk` property test proves bit-identity
/// for arbitrary corpora, peer counts, and `k`).
pub fn local_topk(
    config: &ZerberConfig,
    docs: &[Document],
    terms: &[TermId],
    k: usize,
) -> Vec<RankedDoc> {
    let index = InvertedIndex::from_documents(docs);
    let store = config.posting_store(&index);
    let stats = TermStats::from_documents(docs);
    let mut cursors = store.query_cursors(&stats.weights(terms));
    let mut scratch = zerber_index::TopKScratch::new();
    zerber_index::block_max_topk_cursors(&mut cursors, k, &mut scratch);
    drop(cursors);
    scratch.take_ranked()
}

/// The single-node reference for the shaped-query path: the same
/// backend, the same global IDF weights, the same planned evaluator —
/// without sharding, caching, or the wire.
/// [`ShardedSearch::query_shaped`] returns exactly this (the
/// `sharded_topk` shaped properties prove bit-identity for arbitrary
/// corpora, shapes, peer counts, and `k`).
pub fn local_planned(
    config: &ZerberConfig,
    docs: &[Document],
    query: &Query,
    forced: Forced,
) -> Vec<RankedDoc> {
    let index = InvertedIndex::from_documents(docs);
    let store = config.posting_store(&index);
    let stats = TermStats::from_documents(docs);
    let normalized = query.clone().normalized();
    let slots = stats.weights(normalized.terms());
    let mut scratch = zerber_index::TopKScratch::new();
    zerber_query::execute(
        store.as_ref(),
        normalized.shape(),
        &slots,
        normalized.k(),
        forced,
        &mut scratch,
    )
    .ranked
}

#[cfg(test)]
mod tests {
    use super::*;
    use zerber_index::{DocId, GroupId};

    fn corpus(docs: u32, terms: u32) -> Vec<Document> {
        (0..docs)
            .map(|d| {
                Document::from_term_counts(
                    DocId(d),
                    GroupId(0),
                    (0..3)
                        .map(|i| (TermId((d + i) % terms), 1 + (d * 7 + i) % 4))
                        .collect(),
                )
            })
            .collect()
    }

    #[test]
    fn sharded_query_matches_local_reference() {
        let docs = corpus(120, 17);
        let config = ZerberConfig::default().with_peers(5);
        let search = ShardedSearch::launch(&config, &docs).unwrap();
        for terms in [
            vec![TermId(0)],
            vec![TermId(3), TermId(8)],
            vec![TermId(1), TermId(1), TermId(16)],
        ] {
            let outcome = search.query(&terms, 10).unwrap();
            assert_eq!(outcome.ranked, local_topk(&config, &docs, &terms, 10));
            assert!(outcome.candidates_examined <= 10);
            assert!(outcome.candidates_received >= outcome.candidates_examined);
        }
    }

    #[test]
    fn compressed_backend_serves_identically() {
        let docs = corpus(200, 9);
        let raw = ZerberConfig::default().with_peers(4);
        let compressed = raw.clone().with_postings(PostingBackend::Compressed);
        let a = ShardedSearch::launch(&raw, &docs).unwrap();
        let b = ShardedSearch::launch(&compressed, &docs).unwrap();
        let terms = [TermId(2), TermId(5)];
        assert_eq!(
            a.query(&terms, 15).unwrap().ranked,
            b.query(&terms, 15).unwrap().ranked
        );
    }

    #[test]
    fn concurrent_clients_share_one_deployment() {
        let docs = corpus(150, 11);
        let config = ZerberConfig::default().with_peers(4);
        let search = ShardedSearch::launch(&config, &docs).unwrap();
        let reference = local_topk(&config, &docs, &[TermId(4)], 8);
        std::thread::scope(|scope| {
            for client in 0..6u32 {
                let search = &search;
                let reference = &reference;
                scope.spawn(move || {
                    for _ in 0..10 {
                        let outcome = search.query_from(client, &[TermId(4)], 8).unwrap();
                        assert_eq!(&outcome.ranked, reference);
                    }
                });
            }
        });
        // Each client got its own metered links.
        for client in 0..6u32 {
            assert!(search.traffic().sent_by(NodeId::User(client)) > 0);
        }
    }

    #[test]
    fn unknown_terms_and_empty_queries_are_harmless() {
        let docs = corpus(30, 5);
        let config = ZerberConfig::default().with_peers(3);
        let search = ShardedSearch::launch(&config, &docs).unwrap();
        assert!(search.query(&[], 5).unwrap().ranked.is_empty());
        assert!(search.query(&[TermId(999)], 5).unwrap().ranked.is_empty());
        assert!(search.query(&[TermId(1)], 0).unwrap().ranked.is_empty());
    }

    #[test]
    fn live_mutation_tracks_the_rebuild_oracle_on_every_backend() {
        let initial = corpus(90, 13);
        let dir = zerber_segment::scratch_dir("sharded-mutation-unit");
        let backends = vec![
            PostingBackend::Raw,
            PostingBackend::Compressed,
            PostingBackend::Segmented {
                dir: dir.clone(),
                compaction: zerber_index::SegmentPolicy {
                    flush_postings: 32,
                    max_segments: 2,
                    background: true,
                    sync_wal: false,
                },
            },
        ];
        for backend in backends {
            let config = ZerberConfig::default().with_peers(3).with_postings(backend);
            let search = ShardedSearch::launch(&config, &initial).unwrap();
            let mut live = initial.clone();
            // Replace one doc (dropping terms), delete one, add one.
            let replacement =
                Document::from_term_counts(DocId(4), GroupId(0), vec![(TermId(12), 2)]);
            let addition = Document::from_term_counts(DocId(500), GroupId(0), vec![(TermId(0), 1)]);
            search
                .insert_documents(0, std::slice::from_ref(&replacement))
                .unwrap();
            assert!(search.delete_document(0, DocId(7)).unwrap());
            assert!(!search.delete_document(0, DocId(7777)).unwrap());
            search
                .insert_documents(0, std::slice::from_ref(&addition))
                .unwrap();
            live.retain(|d| d.id != DocId(4) && d.id != DocId(7));
            live.push(replacement.clone());
            live.push(addition.clone());

            let raw_reference = ZerberConfig::default();
            for terms in [vec![TermId(0)], vec![TermId(12), TermId(3)]] {
                let outcome = search.query(&terms, 10).unwrap();
                let expected = local_topk(&raw_reference, &live, &terms, 10);
                assert_eq!(outcome.ranked.len(), expected.len());
                for (got, want) in outcome.ranked.iter().zip(&expected) {
                    assert_eq!(got.doc, want.doc);
                    assert_eq!(got.score.to_bits(), want.score.to_bits());
                }
            }
            assert_eq!(search.document_count(), live.len());
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn frozen_rejection_surfaces_as_ingest_error() {
        // A deployment whose shards were bulk-built frozen takes no
        // writes; the typed rejection must reach the caller.
        let docs = corpus(20, 4);
        let config = ZerberConfig::default().with_peers(2);
        let runtime = PeerRuntime::new(Arc::new(TrafficMeter::new()));
        let map = ShardMap::new(2);
        let shards = map.partition(&docs, |doc| doc.id);
        for (peer, shard) in shards.into_iter().enumerate() {
            let node = NodeId::IndexServer(peer as u32);
            let frozen_config = config.clone();
            runtime.spawn_peer(node, move || {
                let index = InvertedIndex::from_documents(&shard);
                ShardService::frozen(frozen_config.posting_store(&index))
            });
        }
        let transport: Arc<dyn Transport> = Arc::clone(runtime.transport()) as Arc<dyn Transport>;
        let membership =
            MembershipTable::new(map.peer_ids().iter().map(|&p| NodeId::IndexServer(p)));
        let search = ShardedSearch {
            runtime,
            transport,
            map: RwLock::new(map),
            transition: Mutex::new(None),
            tainted: Mutex::new(HashSet::new()),
            membership: Mutex::new(membership),
            degraded: RwLock::new(DegradedMode::default()),
            backend: Arc::new(config.postings.clone()),
            replicas: 1,
            policy: HedgePolicy::default(),
            stats: RwLock::new(StatsState {
                stats: TermStats::from_documents(&docs),
                doc_terms: HashMap::new(),
            }),
            obs: RuntimeObs::new(),
            cache: ResultCache::new(CacheConfig::default()),
            epoch: AtomicU64::new(0),
        };
        let doc = Document::from_term_counts(DocId(900), GroupId(0), vec![(TermId(1), 1)]);
        assert!(matches!(
            search.insert_documents(0, &[doc]),
            Err(IngestError::Rejected { .. })
        ));
    }

    #[test]
    fn single_peer_is_valid_and_zero_peers_fail_fast() {
        let docs = corpus(20, 4);
        let single = ZerberConfig::default().with_peers(1);
        let search = ShardedSearch::launch(&single, &docs).unwrap();
        assert_eq!(
            search.query(&[TermId(1)], 3).unwrap().ranked,
            local_topk(&single, &docs, &[TermId(1)], 3)
        );
        let zero = ZerberConfig::default().with_peers(0);
        assert!(ShardedSearch::launch(&zero, &docs).is_err());
    }
}
