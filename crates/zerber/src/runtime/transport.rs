//! Message-passing transport between runtime nodes.
//!
//! Every data-plane RPC crosses a [`Transport`]: the request is
//! serialized to its exact [`Message`] wire bytes, the per-link byte
//! count lands on the shared [`TrafficMeter`], and the peer decodes,
//! executes, and replies the same way. [`InProcTransport`] is the
//! in-process implementation — one mpsc inbox per peer thread — but
//! the trait is deliberately wire-shaped (opaque byte buffers, node
//! addressing, fan-out) so a socket transport can slot in without
//! touching the peers or the clients.
//!
//! The [`AuthToken`] accompanying a request models the authenticated
//! session (the enterprise authentication layer of Section 5.4.2); it
//! is carried by the envelope, not the message body, and is therefore
//! *not* counted in wire bytes — matching the paper's accounting,
//! which sizes payloads only.

use std::collections::HashMap;
use std::sync::mpsc;
use std::sync::Arc;

use parking_lot::Mutex;

use zerber_net::{AuthToken, Message, NodeId, TrafficMeter, WireError};

/// Transport-level failures (distinct from server-side
/// [`zerber_server::ServerError`]s, which travel as
/// [`Message::Fault`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportError {
    /// No peer is registered under this address.
    UnknownPeer(NodeId),
    /// The peer's inbox or reply channel is closed (its thread exited).
    PeerGone(NodeId),
    /// The response bytes did not decode.
    Wire(WireError),
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::UnknownPeer(node) => write!(f, "unknown peer {node:?}"),
            TransportError::PeerGone(node) => write!(f, "peer {node:?} is gone"),
            TransportError::Wire(e) => write!(f, "wire error: {e}"),
        }
    }
}

impl std::error::Error for TransportError {}

/// A request as a peer thread receives it.
pub struct RequestEnvelope {
    /// The calling node (per-link accounting and reply routing).
    pub from: NodeId,
    /// The caller's session token.
    pub auth: AuthToken,
    /// Encoded request [`Message`]. Shared, not copied: a fan-out
    /// serializes the message once and every peer's envelope holds the
    /// same buffer.
    pub payload: Arc<[u8]>,
    /// Channel for the encoded response [`Message`].
    pub reply: mpsc::Sender<Vec<u8>>,
}

/// What arrives in a peer's inbox.
pub enum PeerInbox {
    /// A client request awaiting a reply.
    Request(RequestEnvelope),
    /// Orderly shutdown: drain nothing further and exit the thread.
    Shutdown,
}

/// Request/response messaging between nodes, with per-link wire-byte
/// accounting.
pub trait Transport: Send + Sync {
    /// Sends one request and blocks for the response.
    fn request(
        &self,
        from: NodeId,
        to: NodeId,
        auth: AuthToken,
        message: &Message,
    ) -> Result<Message, TransportError>;

    /// Scatter-gathers one request to many peers: all sends complete
    /// before any receive blocks, so the round trip costs the *slowest
    /// peer*, not the sum. Responses align with `peers` order.
    fn fan_out(
        &self,
        from: NodeId,
        peers: &[NodeId],
        auth: AuthToken,
        message: &Message,
    ) -> Vec<Result<Message, TransportError>>;
}

/// The in-process transport: one mpsc inbox per registered peer.
#[derive(Default)]
pub struct InProcTransport {
    meter: Arc<TrafficMeter>,
    inboxes: Mutex<HashMap<NodeId, mpsc::Sender<PeerInbox>>>,
}

impl InProcTransport {
    /// A transport accounting on `meter`.
    pub fn new(meter: Arc<TrafficMeter>) -> Self {
        Self {
            meter,
            inboxes: Mutex::new(HashMap::new()),
        }
    }

    /// The shared traffic meter.
    pub fn meter(&self) -> &Arc<TrafficMeter> {
        &self.meter
    }

    /// Registers a peer's inbox under its address. Replaces any
    /// previous registration.
    pub fn register(&self, node: NodeId, inbox: mpsc::Sender<PeerInbox>) {
        self.inboxes.lock().insert(node, inbox);
    }

    /// Sends a shutdown signal to a peer's inbox (ignored if the peer
    /// is already gone).
    pub fn shutdown(&self, node: NodeId) {
        if let Some(inbox) = self.inboxes.lock().remove(&node) {
            let _ = inbox.send(PeerInbox::Shutdown);
        }
    }

    fn inbox_of(&self, node: NodeId) -> Result<mpsc::Sender<PeerInbox>, TransportError> {
        self.inboxes
            .lock()
            .get(&node)
            .cloned()
            .ok_or(TransportError::UnknownPeer(node))
    }

    /// Dispatches one pre-encoded request, returning the receiver its
    /// response will arrive on. (Encoding stays with the callers, and
    /// the buffer is reference-counted, so a fan-out serializes *and
    /// allocates* the message once, not once per peer.)
    fn dispatch(
        &self,
        from: NodeId,
        to: NodeId,
        auth: AuthToken,
        payload: Arc<[u8]>,
    ) -> Result<mpsc::Receiver<Vec<u8>>, TransportError> {
        let inbox = self.inbox_of(to)?;
        self.meter.record(from, to, payload.len());
        let (reply, response) = mpsc::channel();
        inbox
            .send(PeerInbox::Request(RequestEnvelope {
                from,
                auth,
                payload,
                reply,
            }))
            .map_err(|_| TransportError::PeerGone(to))?;
        Ok(response)
    }

    /// Receives, meters, and decodes one response.
    fn collect(
        &self,
        from: NodeId,
        to: NodeId,
        response: mpsc::Receiver<Vec<u8>>,
    ) -> Result<Message, TransportError> {
        let bytes = response.recv().map_err(|_| TransportError::PeerGone(to))?;
        self.meter.record(to, from, bytes.len());
        Message::decode(&bytes).map_err(TransportError::Wire)
    }
}

impl Transport for InProcTransport {
    fn request(
        &self,
        from: NodeId,
        to: NodeId,
        auth: AuthToken,
        message: &Message,
    ) -> Result<Message, TransportError> {
        let response = self.dispatch(from, to, auth, Arc::from(message.encode().as_ref()))?;
        self.collect(from, to, response)
    }

    fn fan_out(
        &self,
        from: NodeId,
        peers: &[NodeId],
        auth: AuthToken,
        message: &Message,
    ) -> Vec<Result<Message, TransportError>> {
        // One serialization and one allocation for the whole fan-out;
        // each peer's envelope bumps a refcount instead of copying.
        let payload: Arc<[u8]> = Arc::from(message.encode().as_ref());
        let pending: Vec<_> = peers
            .iter()
            .map(|&to| self.dispatch(from, to, auth, Arc::clone(&payload)))
            .collect();
        pending
            .into_iter()
            .zip(peers)
            .map(|(dispatched, &to)| dispatched.and_then(|rx| self.collect(from, to, rx)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    /// Spawns an echo peer that replies with the request bytes.
    fn echo_peer(transport: &InProcTransport, node: NodeId) -> thread::JoinHandle<()> {
        let (tx, rx) = mpsc::channel();
        transport.register(node, tx);
        thread::spawn(move || {
            while let Ok(PeerInbox::Request(envelope)) = rx.recv() {
                let _ = envelope.reply.send(envelope.payload.to_vec());
            }
        })
    }

    #[test]
    fn round_trip_meters_both_directions() {
        let meter = Arc::new(TrafficMeter::new());
        let transport = InProcTransport::new(meter.clone());
        let peer = NodeId::IndexServer(0);
        let handle = echo_peer(&transport, peer);

        let user = NodeId::User(1);
        let message = Message::SnippetRequest {
            doc: zerber_index::DocId(7),
        };
        let echoed = transport
            .request(user, peer, AuthToken(1), &message)
            .unwrap();
        assert_eq!(echoed, message);
        assert_eq!(meter.link_bytes(user, peer), message.wire_size() as u64);
        assert_eq!(meter.link_bytes(peer, user), message.wire_size() as u64);

        transport.shutdown(peer);
        handle.join().unwrap();
    }

    #[test]
    fn unknown_peer_is_an_error() {
        let transport = InProcTransport::new(Arc::new(TrafficMeter::new()));
        let result = transport.request(
            NodeId::User(0),
            NodeId::IndexServer(9),
            AuthToken(0),
            &Message::InsertOk,
        );
        assert_eq!(
            result,
            Err(TransportError::UnknownPeer(NodeId::IndexServer(9)))
        );
    }

    #[test]
    fn fan_out_reaches_every_peer_in_order() {
        let transport = InProcTransport::new(Arc::new(TrafficMeter::new()));
        let peers: Vec<NodeId> = (0..4).map(NodeId::IndexServer).collect();
        let handles: Vec<_> = peers.iter().map(|&p| echo_peer(&transport, p)).collect();
        let message = Message::DeleteOk { removed: 3 };
        let responses = transport.fan_out(NodeId::User(0), &peers, AuthToken(0), &message);
        assert_eq!(responses.len(), 4);
        for response in responses {
            assert_eq!(response.unwrap(), message);
        }
        for peer in peers {
            transport.shutdown(peer);
        }
        for handle in handles {
            handle.join().unwrap();
        }
    }
}
