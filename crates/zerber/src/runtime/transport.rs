//! Message-passing transport between runtime nodes.
//!
//! Every data-plane RPC crosses a [`Transport`]: the request is
//! serialized to its exact [`Message`] wire bytes, the per-link byte
//! count lands on the shared [`TrafficMeter`], and the peer decodes,
//! executes, and replies the same way. [`InProcTransport`] is the
//! in-process implementation — one mpsc inbox per peer thread — and
//! `runtime::socket::SocketTransport` is the real length-framed TCP
//! implementation; both speak through the same trait, so peers and
//! clients never know which one carries them.
//!
//! The trait is *asynchronous at the edges*: [`Transport::begin`]
//! sends one request and returns a [`PendingReply`] the caller waits
//! on with a timeout. That split is what failover is built from — the
//! hedged gather starts a pending reply per replica and takes the
//! first that answers, and the fault-injection harness fabricates
//! pendings that fail, stall, or deliver late, all without the peers
//! or the clients knowing.
//!
//! # Metering
//!
//! Request bytes are metered when the client sends; response bytes
//! are metered when the *peer* sends (the [`ReplySink`] records before
//! delivery). A response nobody waits for — the client hedged away,
//! the harness dropped it — still crossed the link and still counts,
//! which is exactly the honesty the hedging accounting needs:
//! duplicate sends are real wire bytes even though the gather uses
//! only one response per shard.
//!
//! The [`AuthToken`] accompanying a request models the authenticated
//! session (the enterprise authentication layer of Section 5.4.2); it
//! is carried by the envelope, not the message body, and is therefore
//! *not* counted in wire bytes — matching the paper's accounting,
//! which sizes payloads only.

use std::collections::HashMap;
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use zerber_net::{AuthToken, Message, NodeId, TrafficMeter, WireError};

/// How long the blocking convenience calls ([`Transport::request`],
/// [`Transport::fan_out`]) wait before declaring a peer unresponsive.
/// Deliberately generous: a healthy in-process peer answers in
/// microseconds, and a *dead* one is detected immediately through the
/// closed channel — the timeout only catches a peer that is alive but
/// wedged.
pub const DEFAULT_RPC_TIMEOUT: Duration = Duration::from_secs(30);

/// Transport-level failures (distinct from server-side
/// [`zerber_server::ServerError`]s, which travel as
/// [`Message::Fault`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportError {
    /// No peer is registered under this address.
    UnknownPeer(NodeId),
    /// The peer's inbox or reply channel is closed (its thread exited
    /// or its connection dropped).
    PeerGone(NodeId),
    /// The peer did not answer within the caller's deadline. The
    /// request may still be executing — the caller must treat the
    /// outcome as unknown.
    Timeout(NodeId),
    /// The peer answered with a fault frame where the protocol
    /// expected data — surfaced by the hedged gather as a failed
    /// attempt so another replica can be tried.
    Rejected(u8),
    /// The response bytes did not decode.
    Wire(WireError),
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::UnknownPeer(node) => write!(f, "unknown peer {node:?}"),
            TransportError::PeerGone(node) => write!(f, "peer {node:?} is gone"),
            TransportError::Timeout(node) => write!(f, "peer {node:?} timed out"),
            TransportError::Rejected(code) => write!(f, "peer rejected the request (fault {code})"),
            TransportError::Wire(e) => write!(f, "wire error: {e}"),
        }
    }
}

impl std::error::Error for TransportError {}

/// The response path of one request: meters the bytes on the
/// `peer → client` link *before* delivery, so a response the client
/// abandoned (hedged away, timed out) is still accounted — it crossed
/// the wire regardless of who was listening.
pub struct ReplySink {
    meter: Arc<TrafficMeter>,
    /// The responding peer (source of the response link).
    peer: NodeId,
    /// The requesting node (destination of the response link).
    client: NodeId,
    tx: mpsc::Sender<Vec<u8>>,
}

impl ReplySink {
    /// A sink delivering to `tx`, metering `peer → client` response
    /// bytes on `meter`. Transport implementations (in-process and
    /// socket alike) build one per request.
    pub fn new(
        meter: Arc<TrafficMeter>,
        peer: NodeId,
        client: NodeId,
        tx: mpsc::Sender<Vec<u8>>,
    ) -> Self {
        Self {
            meter,
            peer,
            client,
            tx,
        }
    }

    /// Meters and delivers one encoded response. A vanished requester
    /// is not the peer's problem — the send outcome is ignored.
    pub fn send(&self, bytes: Vec<u8>) {
        self.meter.record(self.peer, self.client, bytes.len());
        let _ = self.tx.send(bytes);
    }
}

/// A request as a peer thread receives it.
pub struct RequestEnvelope {
    /// The calling node (per-link accounting and reply routing).
    pub from: NodeId,
    /// The caller's session token.
    pub auth: AuthToken,
    /// The caller's query-trace id (zero = untraced). Carried by the
    /// envelope — and by the socket transport's request frames — so
    /// peer-side work can be correlated with the client-side span
    /// tree even when the peer is a separate process. Like the auth
    /// token it is envelope metadata, not payload, and is not counted
    /// in wire bytes.
    pub trace: u64,
    /// Encoded request [`Message`]. Shared, not copied: a fan-out
    /// serializes the message once and every peer's envelope holds the
    /// same buffer.
    pub payload: Arc<[u8]>,
    /// Channel for the encoded response [`Message`].
    pub reply: ReplySink,
}

/// What arrives in a peer's inbox.
pub enum PeerInbox {
    /// A client request awaiting a reply.
    Request(RequestEnvelope),
    /// Orderly shutdown: drain nothing further and exit the thread.
    Shutdown,
}

enum PendingState {
    /// The response will arrive on this channel.
    Channel(mpsc::Receiver<Vec<u8>>),
    /// The request already failed (unknown peer, dead peer, injected
    /// fault); every wait reports the same error.
    Failed(TransportError),
    /// The response is withheld until an instant (an injected network
    /// delay); after that it behaves as the inner pending.
    Delayed {
        until: Instant,
        inner: Box<PendingState>,
    },
}

/// One in-flight request: the handle [`Transport::begin`] returns.
///
/// The caller decides how long to wait — and may wait *again* after a
/// [`TransportError::Timeout`]: the response channel stays open, so a
/// hedged gather can come back to a laggard after trying another
/// replica and still collect its (late) answer.
pub struct PendingReply {
    peer: NodeId,
    state: PendingState,
}

impl PendingReply {
    /// A pending whose response arrives on `rx` (the transport
    /// implementations' normal case).
    pub fn from_channel(peer: NodeId, rx: mpsc::Receiver<Vec<u8>>) -> Self {
        Self {
            peer,
            state: PendingState::Channel(rx),
        }
    }

    /// A pending that already failed. Used for dead peers and by the
    /// fault harness for dropped requests/responses.
    pub fn failed(peer: NodeId, error: TransportError) -> Self {
        Self {
            peer,
            state: PendingState::Failed(error),
        }
    }

    /// Wraps this pending so its response is withheld for `delay`
    /// (the fault harness's injected network delay).
    pub fn delayed(self, delay: Duration) -> Self {
        Self {
            peer: self.peer,
            state: PendingState::Delayed {
                until: Instant::now() + delay,
                inner: Box::new(self.state),
            },
        }
    }

    /// The peer this request went to.
    pub fn peer(&self) -> NodeId {
        self.peer
    }

    /// Unwraps elapsed delay layers. Returns the instant the caller
    /// must not wait past for the *remaining* delay, if any.
    fn settle_delay(&mut self) -> Option<Instant> {
        loop {
            match &self.state {
                PendingState::Delayed { until, .. } => {
                    let until = *until;
                    if Instant::now() < until {
                        return Some(until);
                    }
                    // Delay elapsed: splice the inner state in.
                    let placeholder = PendingState::Failed(TransportError::Timeout(self.peer));
                    if let PendingState::Delayed { inner, .. } =
                        std::mem::replace(&mut self.state, placeholder)
                    {
                        self.state = *inner;
                    }
                }
                _ => return None,
            }
        }
    }

    /// Blocks up to `timeout` for the response.
    ///
    /// `Err(Timeout)` leaves the pending intact — call `wait` or
    /// [`PendingReply::try_take`] again later to collect a late
    /// answer. Other errors are terminal and repeat on every call.
    pub fn wait(&mut self, timeout: Duration) -> Result<Message, TransportError> {
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(until) = self.settle_delay() {
                if until >= deadline {
                    // The injected delay outlasts the caller's
                    // patience: behave exactly like a slow peer.
                    std::thread::sleep(deadline.saturating_duration_since(Instant::now()));
                    return Err(TransportError::Timeout(self.peer));
                }
                std::thread::sleep(until.saturating_duration_since(Instant::now()));
                continue;
            }
            match &mut self.state {
                PendingState::Failed(error) => return Err(*error),
                PendingState::Channel(rx) => {
                    let budget = deadline.saturating_duration_since(Instant::now());
                    return match rx.recv_timeout(budget) {
                        Ok(bytes) => Message::decode(&bytes).map_err(TransportError::Wire),
                        Err(mpsc::RecvTimeoutError::Timeout) => {
                            Err(TransportError::Timeout(self.peer))
                        }
                        Err(mpsc::RecvTimeoutError::Disconnected) => {
                            let error = TransportError::PeerGone(self.peer);
                            self.state = PendingState::Failed(error);
                            Err(error)
                        }
                    };
                }
                PendingState::Delayed { .. } => unreachable!("settled above"),
            }
        }
    }

    /// Non-blocking poll: `Some` once the request has resolved (a
    /// response or a terminal error), `None` while still in flight.
    pub fn try_take(&mut self) -> Option<Result<Message, TransportError>> {
        if self.settle_delay().is_some() {
            return None;
        }
        match &mut self.state {
            PendingState::Failed(error) => Some(Err(*error)),
            PendingState::Channel(rx) => match rx.try_recv() {
                Ok(bytes) => Some(Message::decode(&bytes).map_err(TransportError::Wire)),
                Err(mpsc::TryRecvError::Empty) => None,
                Err(mpsc::TryRecvError::Disconnected) => {
                    let error = TransportError::PeerGone(self.peer);
                    self.state = PendingState::Failed(error);
                    Some(Err(error))
                }
            },
            PendingState::Delayed { .. } => unreachable!("settled above"),
        }
    }
}

/// Request/response messaging between nodes, with per-link wire-byte
/// accounting.
pub trait Transport: Send + Sync {
    /// The traffic meter every byte through this transport lands on.
    fn meter(&self) -> &Arc<TrafficMeter>;

    /// Sends one pre-encoded request carrying a query-trace id and
    /// returns the in-flight handle. Never blocks on the peer:
    /// failures surface when the returned pending is waited on. This
    /// is the one required send primitive; implementations must
    /// propagate `trace` onto the peer's [`RequestEnvelope`] (and, for
    /// the socket transport, onto the wire frame).
    fn begin_traced(
        &self,
        from: NodeId,
        to: NodeId,
        auth: AuthToken,
        trace: u64,
        payload: Arc<[u8]>,
    ) -> PendingReply;

    /// Sends one pre-encoded untraced request (trace id zero) — the
    /// convenience form for control-plane and ingest traffic that no
    /// span tree follows.
    fn begin(&self, from: NodeId, to: NodeId, auth: AuthToken, payload: Arc<[u8]>) -> PendingReply {
        self.begin_traced(from, to, auth, 0, payload)
    }

    /// Sends one request and blocks for the response (up to
    /// [`DEFAULT_RPC_TIMEOUT`]).
    fn request(
        &self,
        from: NodeId,
        to: NodeId,
        auth: AuthToken,
        message: &Message,
    ) -> Result<Message, TransportError> {
        self.begin(from, to, auth, Arc::from(message.encode().as_ref()))
            .wait(DEFAULT_RPC_TIMEOUT)
    }

    /// Scatter-gathers one request to many peers: all sends complete
    /// before any receive blocks, so the round trip costs the *slowest
    /// peer*, not the sum. Responses align with `peers` order.
    fn fan_out(
        &self,
        from: NodeId,
        peers: &[NodeId],
        auth: AuthToken,
        message: &Message,
    ) -> Vec<Result<Message, TransportError>> {
        // One serialization and one allocation for the whole fan-out;
        // each peer's envelope bumps a refcount instead of copying.
        let payload: Arc<[u8]> = Arc::from(message.encode().as_ref());
        let pending: Vec<PendingReply> = peers
            .iter()
            .map(|&to| self.begin(from, to, auth, Arc::clone(&payload)))
            .collect();
        pending
            .into_iter()
            .map(|mut reply| reply.wait(DEFAULT_RPC_TIMEOUT))
            .collect()
    }
}

/// The in-process transport: one mpsc inbox per registered peer.
#[derive(Default)]
pub struct InProcTransport {
    meter: Arc<TrafficMeter>,
    inboxes: Mutex<HashMap<NodeId, mpsc::Sender<PeerInbox>>>,
}

impl InProcTransport {
    /// A transport accounting on `meter`.
    pub fn new(meter: Arc<TrafficMeter>) -> Self {
        Self {
            meter,
            inboxes: Mutex::new(HashMap::new()),
        }
    }

    /// Registers a peer's inbox under its address. Replaces any
    /// previous registration.
    pub fn register(&self, node: NodeId, inbox: mpsc::Sender<PeerInbox>) {
        self.inboxes.lock().insert(node, inbox);
    }

    /// Sends a shutdown signal to a peer's inbox (ignored if the peer
    /// is already gone).
    pub fn shutdown(&self, node: NodeId) {
        if let Some(inbox) = self.inboxes.lock().remove(&node) {
            let _ = inbox.send(PeerInbox::Shutdown);
        }
    }
}

impl Transport for InProcTransport {
    fn meter(&self) -> &Arc<TrafficMeter> {
        &self.meter
    }

    fn begin_traced(
        &self,
        from: NodeId,
        to: NodeId,
        auth: AuthToken,
        trace: u64,
        payload: Arc<[u8]>,
    ) -> PendingReply {
        let Some(inbox) = self.inboxes.lock().get(&to).cloned() else {
            return PendingReply::failed(to, TransportError::UnknownPeer(to));
        };
        // Request bytes leave the client here, delivered or not.
        self.meter.record(from, to, payload.len());
        let (tx, rx) = mpsc::channel();
        let envelope = RequestEnvelope {
            from,
            auth,
            trace,
            payload,
            reply: ReplySink {
                meter: Arc::clone(&self.meter),
                peer: to,
                client: from,
                tx,
            },
        };
        if inbox.send(PeerInbox::Request(envelope)).is_err() {
            return PendingReply::failed(to, TransportError::PeerGone(to));
        }
        PendingReply::from_channel(to, rx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    /// Spawns an echo peer that replies with the request bytes.
    fn echo_peer(transport: &InProcTransport, node: NodeId) -> thread::JoinHandle<()> {
        let (tx, rx) = mpsc::channel();
        transport.register(node, tx);
        thread::spawn(move || {
            while let Ok(PeerInbox::Request(envelope)) = rx.recv() {
                envelope.reply.send(envelope.payload.to_vec());
            }
        })
    }

    #[test]
    fn round_trip_meters_both_directions() {
        let meter = Arc::new(TrafficMeter::new());
        let transport = InProcTransport::new(meter.clone());
        let peer = NodeId::IndexServer(0);
        let handle = echo_peer(&transport, peer);

        let user = NodeId::User(1);
        let message = Message::SnippetRequest {
            doc: zerber_index::DocId(7),
        };
        let echoed = transport
            .request(user, peer, AuthToken(1), &message)
            .unwrap();
        assert_eq!(echoed, message);
        assert_eq!(meter.link_bytes(user, peer), message.wire_size() as u64);
        assert_eq!(meter.link_bytes(peer, user), message.wire_size() as u64);

        transport.shutdown(peer);
        handle.join().unwrap();
    }

    #[test]
    fn unknown_peer_is_an_error() {
        let transport = InProcTransport::new(Arc::new(TrafficMeter::new()));
        let result = transport.request(
            NodeId::User(0),
            NodeId::IndexServer(9),
            AuthToken(0),
            &Message::InsertOk,
        );
        assert_eq!(
            result,
            Err(TransportError::UnknownPeer(NodeId::IndexServer(9)))
        );
    }

    #[test]
    fn fan_out_reaches_every_peer_in_order() {
        let transport = InProcTransport::new(Arc::new(TrafficMeter::new()));
        let peers: Vec<NodeId> = (0..4).map(NodeId::IndexServer).collect();
        let handles: Vec<_> = peers.iter().map(|&p| echo_peer(&transport, p)).collect();
        let message = Message::DeleteOk { removed: 3 };
        let responses = transport.fan_out(NodeId::User(0), &peers, AuthToken(0), &message);
        assert_eq!(responses.len(), 4);
        for response in responses {
            assert_eq!(response.unwrap(), message);
        }
        for peer in peers {
            transport.shutdown(peer);
        }
        for handle in handles {
            handle.join().unwrap();
        }
    }

    #[test]
    fn timeout_leaves_the_pending_collectable() {
        // A peer that answers only after we have already given up once.
        let transport = InProcTransport::new(Arc::new(TrafficMeter::new()));
        let peer = NodeId::IndexServer(0);
        let (tx, rx) = mpsc::channel();
        transport.register(peer, tx);
        let slow = thread::spawn(move || {
            if let Ok(PeerInbox::Request(envelope)) = rx.recv() {
                thread::sleep(Duration::from_millis(40));
                envelope.reply.send(Message::InsertOk.encode().to_vec());
            }
        });

        let mut pending = transport.begin(
            NodeId::User(0),
            peer,
            AuthToken(0),
            Arc::from(Message::InsertOk.encode().as_ref()),
        );
        assert_eq!(
            pending.wait(Duration::from_millis(1)),
            Err(TransportError::Timeout(peer)),
            "first wait times out"
        );
        assert_eq!(
            pending.wait(Duration::from_secs(5)),
            Ok(Message::InsertOk),
            "the late answer is still collectable"
        );
        slow.join().unwrap();
    }

    #[test]
    fn delayed_pending_withholds_then_delivers() {
        let transport = InProcTransport::new(Arc::new(TrafficMeter::new()));
        let peer = NodeId::IndexServer(0);
        let handle = echo_peer(&transport, peer);
        let payload: Arc<[u8]> = Arc::from(Message::InsertOk.encode().as_ref());
        let mut pending = transport
            .begin(NodeId::User(0), peer, AuthToken(0), payload)
            .delayed(Duration::from_millis(30));
        assert_eq!(
            pending.wait(Duration::from_millis(2)),
            Err(TransportError::Timeout(peer))
        );
        assert!(pending.try_take().is_none(), "still inside the delay");
        assert_eq!(pending.wait(Duration::from_secs(5)), Ok(Message::InsertOk));
        transport.shutdown(peer);
        handle.join().unwrap();
    }

    #[test]
    fn abandoned_response_is_still_metered() {
        let meter = Arc::new(TrafficMeter::new());
        let transport = InProcTransport::new(meter.clone());
        let peer = NodeId::IndexServer(0);
        let handle = echo_peer(&transport, peer);
        let user = NodeId::User(0);
        let message = Message::DeleteOk { removed: 1 };
        let pending = transport.begin(
            user,
            peer,
            AuthToken(0),
            Arc::from(message.encode().as_ref()),
        );
        drop(pending); // the client hedged away; the peer answers anyway
        transport.shutdown(peer);
        handle.join().unwrap();
        assert_eq!(
            meter.link_bytes(peer, user),
            message.wire_size() as u64,
            "the abandoned response still crossed the link"
        );
    }
}
