//! The repair controller: rebuilds a dead (or joining) replica's
//! shard copy by streaming a live replica's snapshot over the wire,
//! with capped-exponential-backoff retries on every hop.
//!
//! One rebuild is four phases of [`Message`] frames, in an order
//! chosen so that **no acknowledged write can be lost**:
//!
//! ```text
//!  controller              target (rebuilding)        source (live)
//!  ──────────              ───────────────────        ─────────────
//!  1. InstallShard begin ─▶ buffer writes from now
//!  2.                                      PrepareSnapshot ─▶ freeze
//!     ◀──────────────────────────────────── SnapshotManifest
//!  3. FetchSegment ──────────────────────────────────▶ (per file)
//!     ◀─────────────────────────────────────── SegmentData (CRC)
//!     InstallShard file ──▶ stage (CRC re-check)
//!  4. InstallShard commit ▶ restore + replay buffer + serve
//! ```
//!
//! The begin frame lands *before* the source snapshots, so every
//! write is either in the shipped snapshot (acked by the source
//! pre-freeze) or in the target's replay buffer (acked by the target
//! post-begin) — possibly both, which is safe because replay
//! re-applies documents by id (doc-level shadowing, PR 8's delete
//! semantics). Each file frame is CRC32-checked twice: once by this
//! controller against the manifest, once by the target against the
//! frame.
//!
//! Retries use [`Backoff`]: capped exponential delay with seeded
//! (deterministic) jitter, so chaos tests reproduce from a seed while
//! real deployments still avoid thundering-herd redials. Only
//! *transport* errors retry — a typed fault is the peer answering
//! "no", and repeating the question would not change the answer.

use std::time::{Duration, Instant};

use zerber_net::framing::crc32;
use zerber_net::{AuthToken, Message, NodeId};

use crate::runtime::obs::RuntimeObs;
use crate::runtime::transport::{Transport, TransportError};

/// How many times each repair RPC is attempted before the rebuild is
/// abandoned (transport errors only; faults never retry).
pub const REPAIR_RPC_ATTEMPTS: u32 = 4;

/// Default first retry delay.
pub const DEFAULT_BACKOFF_BASE: Duration = Duration::from_millis(2);

/// Default retry-delay ceiling.
pub const DEFAULT_BACKOFF_CAP: Duration = Duration::from_millis(100);

/// SplitMix64 — the same tiny deterministic scrambler the fault
/// harness uses, so jitter is reproducible from a seed.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Capped exponential backoff with deterministic jitter.
///
/// Attempt `n` waits a uniformly jittered duration in
/// `[d/2, d]` where `d = min(cap, base · 2ⁿ)` — exponential growth
/// bounds retry pressure, the cap bounds worst-case latency, and the
/// half-to-full jitter window desynchronizes concurrent retriers
/// without ever collapsing the delay to zero.
#[derive(Debug, Clone)]
pub struct Backoff {
    base: Duration,
    cap: Duration,
    attempt: u32,
    state: u64,
}

impl Backoff {
    /// A backoff starting at `base`, capped at `cap`, jittered from
    /// `seed`.
    pub fn new(base: Duration, cap: Duration, seed: u64) -> Self {
        Self {
            base,
            cap,
            attempt: 0,
            state: seed,
        }
    }

    /// The defaults, jittered from `seed`.
    pub fn for_seed(seed: u64) -> Self {
        Self::new(DEFAULT_BACKOFF_BASE, DEFAULT_BACKOFF_CAP, seed)
    }

    /// The next delay to sleep before retrying. Advances the attempt
    /// counter and the jitter stream.
    pub fn next_delay(&mut self) -> Duration {
        let exp = self
            .base
            .saturating_mul(1u32 << self.attempt.min(16))
            .min(self.cap);
        self.attempt = self.attempt.saturating_add(1);
        self.state = splitmix64(self.state);
        let nanos = exp.as_nanos() as u64;
        if nanos == 0 {
            return Duration::ZERO;
        }
        // Uniform in [nanos/2, nanos].
        let jittered = nanos / 2 + self.state % (nanos / 2 + 1);
        Duration::from_nanos(jittered)
    }

    /// Restarts the schedule (e.g. after a success).
    pub fn reset(&mut self) {
        self.attempt = 0;
    }
}

/// Why a repair attempt failed.
#[derive(Debug)]
pub enum RepairError {
    /// A hop kept failing at the transport layer after all retries.
    Transport(TransportError),
    /// A peer answered with a typed fault (e.g. the chosen source is
    /// itself rebuilding, or the target has no restore factory).
    Refused {
        /// The refusing peer.
        node: NodeId,
        /// Its wire fault code (see [`zerber_net::message::fault`]).
        code: u8,
    },
    /// A shipped file failed its CRC or length check against the
    /// manifest.
    Corrupt(String),
    /// A peer answered with a frame the protocol does not expect.
    Protocol(String),
}

impl std::fmt::Display for RepairError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RepairError::Transport(e) => write!(f, "repair transport failure: {e}"),
            RepairError::Refused { node, code } => {
                write!(f, "peer {node:?} refused repair (fault code {code})")
            }
            RepairError::Corrupt(what) => write!(f, "snapshot corruption: {what}"),
            RepairError::Protocol(what) => write!(f, "repair protocol violation: {what}"),
        }
    }
}

impl std::error::Error for RepairError {}

/// What one completed shard rebuild shipped.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RepairStats {
    /// Snapshot files streamed (manifest included).
    pub segments: u64,
    /// Payload bytes streamed.
    pub bytes: u64,
}

/// Sends `message` to `to`, retrying transport failures up to
/// `attempts` times with `backoff` sleeps in between. A decoded
/// response — fault or not — returns immediately: the peer is alive
/// and has spoken.
pub fn retry_request(
    transport: &dyn Transport,
    from: NodeId,
    to: NodeId,
    auth: AuthToken,
    message: &Message,
    attempts: u32,
    backoff: &mut Backoff,
) -> Result<Message, TransportError> {
    let mut last = None;
    for attempt in 0..attempts.max(1) {
        if attempt > 0 {
            std::thread::sleep(backoff.next_delay());
        }
        match transport.request(from, to, auth, message) {
            Ok(response) => return Ok(response),
            Err(e) => last = Some(e),
        }
    }
    Err(last.expect("at least one attempt"))
}

/// Expects a non-fault response; converts faults into
/// [`RepairError::Refused`].
fn accept(node: NodeId, response: Message) -> Result<Message, RepairError> {
    match response {
        Message::Fault { code, .. } => Err(RepairError::Refused { node, code }),
        other => Ok(other),
    }
}

/// Rebuilds `target`'s copy of `shard` from live replica `source`:
/// begin → snapshot → stream → commit, as documented on this module.
/// Returns what was shipped; records the `zerber_repair_*` metrics
/// and the rebuild-latency histogram into `obs` when given.
pub fn rebuild_shard(
    transport: &dyn Transport,
    from: NodeId,
    auth: AuthToken,
    source: NodeId,
    target: NodeId,
    shard: u32,
    obs: Option<&RuntimeObs>,
) -> Result<RepairStats, RepairError> {
    let started = Instant::now();
    // Jitter seeded from the (shard, source, target) triple: two
    // controllers repairing different shards never share a schedule,
    // and reruns of the same repair reproduce exactly.
    let mut backoff = Backoff::for_seed(
        (u64::from(shard) << 32)
            ^ splitmix64(node_seed(source) ^ node_seed(target).rotate_left(17)),
    );
    let rpc = |to: NodeId, message: &Message, backoff: &mut Backoff| {
        retry_request(
            transport,
            from,
            to,
            auth,
            message,
            REPAIR_RPC_ATTEMPTS,
            backoff,
        )
        .map_err(RepairError::Transport)
        .and_then(|response| accept(to, response))
    };

    // Phase 1 — begin: the target buffers every write it acks from
    // here on, *before* the source freezes its snapshot, so the
    // buffer ∪ snapshot covers all acknowledged writes.
    let begin = Message::InstallShard {
        shard,
        epoch: 0,
        name: String::new(),
        crc: 0,
        commit: false,
        payload: zerber_net::Bytes::new(),
    };
    match rpc(target, &begin, &mut backoff)? {
        Message::InsertOk => {}
        other => return Err(RepairError::Protocol(format!("begin answered {other:?}"))),
    }

    // Phase 2 — snapshot the source.
    let (epoch, manifest) = match rpc(source, &Message::PrepareSnapshot { shard }, &mut backoff)? {
        Message::SnapshotManifest {
            shard: got,
            epoch,
            files,
        } => {
            if got != shard {
                return Err(RepairError::Protocol(format!(
                    "manifest for shard {got}, wanted {shard}"
                )));
            }
            (epoch, files)
        }
        other => {
            return Err(RepairError::Protocol(format!(
                "snapshot answered {other:?}"
            )))
        }
    };

    // Phase 3 — stream every file, verifying each hop.
    let mut stats = RepairStats::default();
    for (name, len, crc) in manifest {
        let payload = match rpc(
            source,
            &Message::FetchSegment {
                shard,
                name: name.clone(),
            },
            &mut backoff,
        )? {
            Message::SegmentData {
                crc: framed,
                payload,
            } => {
                if framed != crc || payload.len() as u64 != len || crc32(&payload) != crc {
                    return Err(RepairError::Corrupt(format!(
                        "file {name:?}: manifest says {len}B crc {crc:#010x}, frame carries {}B crc {framed:#010x}",
                        payload.len(),
                    )));
                }
                payload
            }
            other => return Err(RepairError::Protocol(format!("fetch answered {other:?}"))),
        };
        stats.segments += 1;
        stats.bytes += payload.len() as u64;
        let install = Message::InstallShard {
            shard,
            epoch,
            name: name.clone(),
            crc,
            commit: false,
            payload,
        };
        match rpc(target, &install, &mut backoff)? {
            Message::InsertOk => {}
            other => {
                return Err(RepairError::Protocol(format!(
                    "install of {name:?} answered {other:?}"
                )))
            }
        }
    }

    // Phase 4 — commit: the target restores, replays its buffer, and
    // cuts over to serving.
    let commit = Message::InstallShard {
        shard,
        epoch,
        name: String::new(),
        crc: 0,
        commit: true,
        payload: zerber_net::Bytes::new(),
    };
    match rpc(target, &commit, &mut backoff)? {
        Message::InsertOk => {}
        other => return Err(RepairError::Protocol(format!("commit answered {other:?}"))),
    }

    if let Some(obs) = obs {
        let metrics = obs.metrics();
        metrics.repair_rebuilds.inc();
        metrics.repair_segments_shipped.add(stats.segments);
        metrics.repair_bytes_shipped.add(stats.bytes);
        metrics
            .repair_rebuild_ns
            .record(started.elapsed().as_nanos() as u64);
    }
    Ok(stats)
}

/// One liveness probe: does `node` answer [`Message::Ping`]? A fault
/// response still counts as alive — the peer's loop is draining its
/// inbox, which is what the probe measures.
pub fn probe(transport: &dyn Transport, from: NodeId, node: NodeId) -> bool {
    matches!(
        transport.request(from, node, AuthToken(0), &Message::Ping),
        Ok(Message::Pong) | Ok(Message::Fault { .. })
    )
}

fn node_seed(node: NodeId) -> u64 {
    match node {
        NodeId::User(i) => (1u64 << 32) | u64::from(i),
        NodeId::Owner(i) => (2u64 << 32) | u64::from(i),
        NodeId::IndexServer(i) => (3u64 << 32) | u64::from(i),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_caps_and_jitters_deterministically() {
        let base = Duration::from_millis(2);
        let cap = Duration::from_millis(100);
        let mut a = Backoff::new(base, cap, 42);
        let mut b = Backoff::new(base, cap, 42);
        let delays: Vec<Duration> = (0..12).map(|_| a.next_delay()).collect();
        // Deterministic: same seed, same schedule.
        assert_eq!(delays, (0..12).map(|_| b.next_delay()).collect::<Vec<_>>());
        for (i, &d) in delays.iter().enumerate() {
            let exp = base.saturating_mul(1 << i.min(16)).min(cap);
            assert!(d <= exp, "attempt {i}: {d:?} above {exp:?}");
            assert!(d >= exp / 2, "attempt {i}: {d:?} below half of {exp:?}");
        }
        // The cap binds: late delays never exceed it.
        assert!(delays[11] <= cap);
        // Different seeds give different jitter somewhere.
        let mut c = Backoff::new(base, cap, 43);
        assert_ne!(delays, (0..12).map(|_| c.next_delay()).collect::<Vec<_>>());
    }

    #[test]
    fn backoff_reset_restarts_the_schedule() {
        let mut b = Backoff::new(Duration::from_millis(4), Duration::from_secs(1), 7);
        for _ in 0..6 {
            b.next_delay();
        }
        b.reset();
        assert!(b.next_delay() <= Duration::from_millis(4));
    }
}
