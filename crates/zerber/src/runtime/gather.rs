//! Merging per-peer top-k candidates with the threshold-algorithm
//! bound.
//!
//! Documents are sharded — every document's postings live on exactly
//! one peer — so each candidate arrives with its *complete* score and
//! the per-peer candidate sets are disjoint. Each peer's list is
//! sorted by `(score desc, doc asc)` (the order
//! [`zerber_index::block_max_topk`] emits), which makes it a *sorted
//! access* path in Fagin's sense: the head of each list upper-bounds
//! everything behind it. The gather loop therefore only ever pulls
//! the globally best head, and after `k` pulls the threshold `τ =
//! max(remaining heads)` certifies that no unexamined candidate can
//! enter the top-k — the same stopping rule as the Threshold
//! Algorithm, needing no random access because scores are already
//! complete.
//!
//! Correctness does not depend on the early stop: a global top-k
//! document ranks at least as high within its own shard, so it is
//! always inside that shard's local top-k and the first `k` pulls of
//! the merge reproduce the global order exactly (see the
//! `sharded_topk` property test).

use zerber_index::RankedDoc;

/// What the gather stage produced, with the work accounting the
/// scalability experiment reports.
#[derive(Debug, Clone)]
pub struct GatherOutcome {
    /// The global top-k, sorted by `(score desc, doc asc)`.
    pub ranked: Vec<RankedDoc>,
    /// Candidates shipped by all peers (`≤ peers · k`).
    pub candidates_received: usize,
    /// Candidates the merge actually examined (`≤ k`): the rest were
    /// pruned by the threshold bound without being looked at.
    pub candidates_examined: usize,
    /// The threshold `τ` at the stop point — the best score any
    /// unexamined candidate could have. `None` when every candidate
    /// was examined. When present, `ranked.last().score ≥ τ` is the
    /// gather's correctness certificate.
    pub threshold_bound: Option<f64>,
}

/// Reusable scratch for [`gather_topk_with`]: the per-peer head
/// cursors. One lives per querying thread so the fan-out/gather path
/// does not allocate per query.
#[derive(Debug, Default)]
pub struct GatherScratch {
    cursors: Vec<usize>,
}

/// Merges per-peer candidate lists into the global top-`k`.
///
/// Each inner list must be sorted by [`RankedDoc::result_order`]
/// (debug-asserted) — the order peers produce. Lists may be shorter
/// than `k` (small shards) or empty.
pub fn gather_topk(per_peer: &[Vec<RankedDoc>], k: usize) -> GatherOutcome {
    gather_topk_with(&mut GatherScratch::default(), per_peer, k)
}

/// [`gather_topk`] with a caller-owned [`GatherScratch`] (the hot-path
/// form `ShardedSearch::query_from` uses).
pub fn gather_topk_with(
    scratch: &mut GatherScratch,
    per_peer: &[Vec<RankedDoc>],
    k: usize,
) -> GatherOutcome {
    debug_assert!(per_peer
        .iter()
        .all(|list| list.windows(2).all(|w| !w[1].ranks_before(&w[0]))));

    let candidates_received = per_peer.iter().map(Vec::len).sum();
    scratch.cursors.clear();
    scratch.cursors.resize(per_peer.len(), 0);
    let cursors = &mut scratch.cursors;
    let mut ranked: Vec<RankedDoc> = Vec::with_capacity(k);

    while ranked.len() < k {
        // Sorted access over every peer's head; the best head is the
        // best remaining candidate overall.
        let mut best: Option<(usize, RankedDoc)> = None;
        for (peer, list) in per_peer.iter().enumerate() {
            if let Some(&head) = list.get(cursors[peer]) {
                let better = match &best {
                    None => true,
                    Some((_, current)) => head.ranks_before(current),
                };
                if better {
                    best = Some((peer, head));
                }
            }
        }
        let Some((peer, candidate)) = best else { break };
        cursors[peer] += 1;
        ranked.push(candidate);
    }

    // The threshold at the stop point: the best head still unexamined.
    let threshold_bound = per_peer
        .iter()
        .zip(cursors.iter())
        .filter_map(|(list, &cursor)| list.get(cursor))
        .map(|head| head.score)
        .fold(None, |acc: Option<f64>, s| {
            Some(acc.map_or(s, |a| a.max(s)))
        });
    if let (Some(bound), Some(last)) = (threshold_bound, ranked.last()) {
        debug_assert!(
            last.score >= bound,
            "gather certificate violated: kth = {}, τ = {bound}",
            last.score
        );
    }

    GatherOutcome {
        candidates_examined: ranked.len(),
        ranked,
        candidates_received,
        threshold_bound,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zerber_index::DocId;

    fn doc(doc: u32, score: f64) -> RankedDoc {
        RankedDoc {
            doc: DocId(doc),
            score,
        }
    }

    #[test]
    fn merges_disjoint_shards_in_global_order() {
        let peers = vec![
            vec![doc(1, 0.9), doc(4, 0.5)],
            vec![doc(2, 0.8), doc(5, 0.1)],
            vec![doc(3, 0.7)],
        ];
        let outcome = gather_topk(&peers, 3);
        let docs: Vec<u32> = outcome.ranked.iter().map(|r| r.doc.0).collect();
        assert_eq!(docs, vec![1, 2, 3]);
        assert_eq!(outcome.candidates_received, 5);
        assert_eq!(outcome.candidates_examined, 3);
        // τ = 0.5 (doc 4), and the 3rd result scores 0.7 ≥ τ.
        assert_eq!(outcome.threshold_bound, Some(0.5));
    }

    #[test]
    fn ties_across_peers_break_by_doc_id() {
        let peers = vec![vec![doc(9, 0.5)], vec![doc(2, 0.5)], vec![doc(5, 0.5)]];
        let outcome = gather_topk(&peers, 2);
        let docs: Vec<u32> = outcome.ranked.iter().map(|r| r.doc.0).collect();
        assert_eq!(docs, vec![2, 5]);
    }

    #[test]
    fn k_exceeding_supply_returns_everything() {
        let peers = vec![vec![doc(1, 0.3)], vec![]];
        let outcome = gather_topk(&peers, 10);
        assert_eq!(outcome.ranked.len(), 1);
        assert_eq!(outcome.threshold_bound, None);
    }

    #[test]
    fn empty_input_is_empty() {
        assert!(gather_topk(&[], 5).ranked.is_empty());
        let outcome = gather_topk(&[vec![], vec![]], 5);
        assert!(outcome.ranked.is_empty());
        assert_eq!(outcome.candidates_examined, 0);
    }

    #[test]
    fn k_zero_examines_nothing() {
        let peers = vec![vec![doc(1, 1.0)]];
        let outcome = gather_topk(&peers, 0);
        assert!(outcome.ranked.is_empty());
        assert_eq!(outcome.candidates_examined, 0);
        assert_eq!(outcome.threshold_bound, Some(1.0));
    }
}
