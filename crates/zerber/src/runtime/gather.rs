//! Merging per-peer top-k candidates with the threshold-algorithm
//! bound.
//!
//! Documents are sharded — every document's postings live on exactly
//! one peer — so each candidate arrives with its *complete* score and
//! the per-peer candidate sets are disjoint. Each peer's list is
//! sorted by `(score desc, doc asc)` (the order
//! [`zerber_index::block_max_topk`] emits), which makes it a *sorted
//! access* path in Fagin's sense: the head of each list upper-bounds
//! everything behind it. The gather loop therefore only ever pulls
//! the globally best head, and after `k` pulls the threshold `τ =
//! max(remaining heads)` certifies that no unexamined candidate can
//! enter the top-k — the same stopping rule as the Threshold
//! Algorithm, needing no random access because scores are already
//! complete.
//!
//! Correctness does not depend on the early stop: a global top-k
//! document ranks at least as high within its own shard, so it is
//! always inside that shard's local top-k and the first `k` pulls of
//! the merge reproduce the global order exactly (see the
//! `sharded_topk` property test).

use std::sync::Arc;
use std::time::{Duration, Instant};

use zerber_index::RankedDoc;
use zerber_net::{AuthToken, Message, NodeId};

use crate::runtime::transport::{PendingReply, Transport, TransportError};

/// One shard's fan-out unit: `(shard, replica list in placement
/// order, encoded request payload)`.
pub type ShardRequest = (u32, Vec<NodeId>, Arc<[u8]>);

/// When to give up on a replica and try the next one.
///
/// `hedge_after` is the per-attempt patience: once a replica has been
/// silent that long, a *hedged* request goes to the next replica while
/// the first stays outstanding (its late answer is still collected —
/// and counted — if it arrives). `deadline` bounds the whole per-shard
/// effort; a shard none of whose replicas answered by then is reported
/// unavailable, never silently dropped.
#[derive(Debug, Clone, Copy)]
pub struct HedgePolicy {
    /// Patience per replica before hedging to the next.
    pub hedge_after: Duration,
    /// Total per-shard budget across all replicas.
    pub deadline: Duration,
}

impl Default for HedgePolicy {
    fn default() -> Self {
        Self {
            // A healthy in-process peer answers in microseconds; 25 ms
            // of silence means it is wedged or the link is injected
            // with faults — stop stalling and hedge.
            hedge_after: Duration::from_millis(25),
            deadline: Duration::from_secs(5),
        }
    }
}

/// How one replica attempt within a shard's hedged fan-out ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttemptOutcome {
    /// This attempt's answer settled the shard.
    Answered,
    /// The attempt failed (timeout, dead peer, fault frame, …).
    Failed(TransportError),
    /// A hedged-away replica's late answer arrived after the shard had
    /// already settled on another replica. Its bytes are metered; the
    /// gather uses exactly one response per shard.
    Duplicate,
}

/// One RPC attempt of the hedged fan-out: which replica, when it was
/// sent (relative to the fan-out start), how long until it resolved,
/// and how it ended. These records are the raw material for the
/// per-shard span in a [`zerber_obs::QueryTrace`].
#[derive(Debug, Clone, Copy)]
pub struct AttemptRecord {
    /// The replica this attempt was sent to.
    pub peer: NodeId,
    /// Offset of the send from the fan-out start (zero for primaries).
    pub started: Duration,
    /// Wall clock from send until the attempt resolved — for an
    /// unresolved laggard, until it was last observed silent.
    pub duration: Duration,
    /// How the attempt ended.
    pub outcome: AttemptOutcome,
}

/// One shard's answer from the hedged fan-out, with the per-attempt
/// evidence the caller surfaces (and the tracer turns into spans).
#[derive(Debug)]
pub struct ShardFetch {
    /// The logical shard this answer covers.
    pub shard: u32,
    /// The replica whose response was used.
    pub peer: NodeId,
    /// That replica's response message.
    pub response: Message,
    /// Every attempt made for this shard, in send order. The first is
    /// the primary; exactly one has [`AttemptOutcome::Answered`].
    pub attempts: Vec<AttemptRecord>,
}

impl ShardFetch {
    /// Extra (hedged) requests sent beyond the primary.
    pub fn hedges(&self) -> usize {
        self.attempts.len().saturating_sub(1)
    }

    /// Late answers from hedged-away replicas that had already arrived
    /// when the shard settled.
    pub fn duplicate_responses(&self) -> usize {
        self.attempts
            .iter()
            .filter(|a| a.outcome == AttemptOutcome::Duplicate)
            .count()
    }

    /// Replicas that failed before one answered — reported, never
    /// silently dropped.
    pub fn failed(&self) -> impl Iterator<Item = (NodeId, TransportError)> + '_ {
        self.attempts.iter().filter_map(|a| match a.outcome {
            AttemptOutcome::Failed(error) => Some((a.peer, error)),
            _ => None,
        })
    }
}

/// A shard no replica answered for: the query cannot be completed
/// correctly, so the whole attempt fails *closed* with the per-replica
/// evidence.
#[derive(Debug)]
pub struct ShardUnavailable {
    /// The uncovered shard.
    pub shard: u32,
    /// Every attempted replica with its failure, in send order.
    pub attempts: Vec<AttemptRecord>,
}

/// Classifies one resolved attempt: a fault frame is a *failed
/// attempt* (another replica may serve the identical request), any
/// other message is the shard's answer.
fn classify(result: Result<Message, TransportError>) -> Result<Message, TransportError> {
    match result {
        Ok(Message::Fault { code, .. }) => Err(TransportError::Rejected(code)),
        other => other,
    }
}

/// Fans one request per shard out to that shard's replica list and
/// settles each shard on the first replica that answers.
///
/// All primary requests leave before any wait begins, so healthy
/// shards work in parallel exactly like the plain fan-out; only a
/// silent or failed replica costs `policy.hedge_after` before its
/// successor is tried. Results align with `shards` order. Replica
/// stores hold identical copies of their shard, so *which* replica
/// answers cannot change the result — the replicated top-k stays
/// bit-identical to the single-node oracle (property-tested in
/// `tests/seeded_chaos.rs`).
pub fn hedged_fan_out(
    transport: &dyn Transport,
    from: NodeId,
    auth: AuthToken,
    trace: u64,
    shards: &[ShardRequest],
    policy: &HedgePolicy,
) -> Vec<Result<ShardFetch, ShardUnavailable>> {
    let base = Instant::now();
    // Phase 1: the primary attempt for every shard — sends only, so
    // every shard's work overlaps.
    let mut primaries: Vec<Option<PendingReply>> = shards
        .iter()
        .map(|(_, replicas, payload)| {
            replicas
                .first()
                .map(|&node| transport.begin_traced(from, node, auth, trace, Arc::clone(payload)))
        })
        .collect();
    // Phase 2: settle shard by shard, hedging down each replica list.
    shards
        .iter()
        .zip(primaries.iter_mut())
        .map(|((shard, replicas, payload), primary)| {
            settle_shard(
                transport,
                from,
                auth,
                trace,
                *shard,
                replicas,
                payload,
                primary.take(),
                policy,
                base,
            )
        })
        .collect()
}

/// An attempt that timed out but whose channel is still open — a late
/// answer is still collectable and must update its attempt record.
struct Laggard {
    pending: PendingReply,
    /// Index of this attempt's record in the attempts vector.
    index: usize,
    /// When the attempt was sent (for resolving its final duration).
    sent_at: Instant,
}

#[allow(clippy::too_many_arguments)]
fn settle_shard(
    transport: &dyn Transport,
    from: NodeId,
    auth: AuthToken,
    trace: u64,
    shard: u32,
    replicas: &[NodeId],
    payload: &Arc<[u8]>,
    primary: Option<PendingReply>,
    policy: &HedgePolicy,
    base: Instant,
) -> Result<ShardFetch, ShardUnavailable> {
    let deadline = Instant::now() + policy.deadline;
    let mut attempts: Vec<AttemptRecord> = Vec::new();
    let mut laggards: Vec<Laggard> = Vec::new();

    // The primary was sent at `base` (phase 1); hedges are sent here.
    let mut attempt = primary.map(|pending| (pending, base));
    let mut next_replica = 1usize;
    while let Some((mut pending, sent_at)) = attempt.take() {
        let peer = pending.peer();
        let index = attempts.len();
        let resolved = classify(pending.wait(policy.hedge_after));
        attempts.push(AttemptRecord {
            peer,
            started: sent_at.saturating_duration_since(base),
            duration: sent_at.elapsed(),
            outcome: match &resolved {
                Ok(_) => AttemptOutcome::Answered,
                Err(error) => AttemptOutcome::Failed(*error),
            },
        });
        match resolved {
            Ok(response) => {
                return Ok(settled(shard, peer, response, attempts, laggards));
            }
            Err(TransportError::Timeout(_)) => {
                // Silent so far — keep listening while hedging on.
                laggards.push(Laggard {
                    pending,
                    index,
                    sent_at,
                });
            }
            Err(_) => {}
        }
        if let Some(&node) = replicas.get(next_replica) {
            next_replica += 1;
            let now = Instant::now();
            attempt = Some((
                transport.begin_traced(from, node, auth, trace, Arc::clone(payload)),
                now,
            ));
        }
    }

    // Every replica has been tried; poll the laggards out to the
    // deadline in case a slow-but-alive replica still answers.
    while !laggards.is_empty() && Instant::now() < deadline {
        let mut index = 0;
        while index < laggards.len() {
            match laggards[index].pending.try_take() {
                None => index += 1,
                Some(result) => {
                    let laggard = laggards.swap_remove(index);
                    let peer = laggard.pending.peer();
                    // One attempt, one verdict: the late resolution
                    // supersedes the provisional Timeout record.
                    attempts[laggard.index].duration = laggard.sent_at.elapsed();
                    match classify(result) {
                        Ok(response) => {
                            attempts[laggard.index].outcome = AttemptOutcome::Answered;
                            return Ok(settled(shard, peer, response, attempts, laggards));
                        }
                        Err(error) => {
                            attempts[laggard.index].outcome = AttemptOutcome::Failed(error);
                        }
                    }
                }
            }
        }
        std::thread::sleep(Duration::from_micros(200));
    }

    Err(ShardUnavailable { shard, attempts })
}

/// Builds the success record: drains already-arrived late answers from
/// the hedged-away laggards (their records flip from the provisional
/// Timeout to [`AttemptOutcome::Duplicate`]).
fn settled(
    shard: u32,
    peer: NodeId,
    response: Message,
    mut attempts: Vec<AttemptRecord>,
    laggards: Vec<Laggard>,
) -> ShardFetch {
    for mut laggard in laggards {
        if let Some(result) = laggard.pending.try_take() {
            attempts[laggard.index].duration = laggard.sent_at.elapsed();
            attempts[laggard.index].outcome = match classify(result) {
                Ok(_) => AttemptOutcome::Duplicate,
                Err(error) => AttemptOutcome::Failed(error),
            };
        }
    }
    ShardFetch {
        shard,
        peer,
        response,
        attempts,
    }
}

/// What the gather stage produced, with the work accounting the
/// scalability experiment reports.
#[derive(Debug, Clone)]
pub struct GatherOutcome {
    /// The global top-k, sorted by `(score desc, doc asc)`.
    pub ranked: Vec<RankedDoc>,
    /// Candidates shipped by all peers (`≤ peers · k`).
    pub candidates_received: usize,
    /// Candidates the merge actually examined (`≤ k`): the rest were
    /// pruned by the threshold bound without being looked at.
    pub candidates_examined: usize,
    /// The threshold `τ` at the stop point — the best score any
    /// unexamined candidate could have. `None` when every candidate
    /// was examined. When present, `ranked.last().score ≥ τ` is the
    /// gather's correctness certificate.
    pub threshold_bound: Option<f64>,
}

/// Reusable scratch for [`gather_topk_with`]: the per-peer head
/// cursors. One lives per querying thread so the fan-out/gather path
/// does not allocate per query.
#[derive(Debug, Default)]
pub struct GatherScratch {
    cursors: Vec<usize>,
}

/// Merges per-peer candidate lists into the global top-`k`.
///
/// Each inner list must be sorted by [`RankedDoc::result_order`]
/// (debug-asserted) — the order peers produce. Lists may be shorter
/// than `k` (small shards) or empty.
pub fn gather_topk(per_peer: &[Vec<RankedDoc>], k: usize) -> GatherOutcome {
    gather_topk_with(&mut GatherScratch::default(), per_peer, k)
}

/// [`gather_topk`] with a caller-owned [`GatherScratch`] (the hot-path
/// form `ShardedSearch::query_from` uses).
pub fn gather_topk_with(
    scratch: &mut GatherScratch,
    per_peer: &[Vec<RankedDoc>],
    k: usize,
) -> GatherOutcome {
    debug_assert!(per_peer
        .iter()
        .all(|list| list.windows(2).all(|w| !w[1].ranks_before(&w[0]))));

    let candidates_received = per_peer.iter().map(Vec::len).sum();
    scratch.cursors.clear();
    scratch.cursors.resize(per_peer.len(), 0);
    let cursors = &mut scratch.cursors;
    let mut ranked: Vec<RankedDoc> = Vec::with_capacity(k);

    while ranked.len() < k {
        // Sorted access over every peer's head; the best head is the
        // best remaining candidate overall.
        let mut best: Option<(usize, RankedDoc)> = None;
        for (peer, list) in per_peer.iter().enumerate() {
            if let Some(&head) = list.get(cursors[peer]) {
                let better = match &best {
                    None => true,
                    Some((_, current)) => head.ranks_before(current),
                };
                if better {
                    best = Some((peer, head));
                }
            }
        }
        let Some((peer, candidate)) = best else { break };
        cursors[peer] += 1;
        ranked.push(candidate);
    }

    // The threshold at the stop point: the best head still unexamined.
    let threshold_bound = per_peer
        .iter()
        .zip(cursors.iter())
        .filter_map(|(list, &cursor)| list.get(cursor))
        .map(|head| head.score)
        .fold(None, |acc: Option<f64>, s| {
            Some(acc.map_or(s, |a| a.max(s)))
        });
    if let (Some(bound), Some(last)) = (threshold_bound, ranked.last()) {
        debug_assert!(
            last.score >= bound,
            "gather certificate violated: kth = {}, τ = {bound}",
            last.score
        );
    }

    GatherOutcome {
        candidates_examined: ranked.len(),
        ranked,
        candidates_received,
        threshold_bound,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zerber_index::DocId;

    fn doc(doc: u32, score: f64) -> RankedDoc {
        RankedDoc {
            doc: DocId(doc),
            score,
        }
    }

    #[test]
    fn merges_disjoint_shards_in_global_order() {
        let peers = vec![
            vec![doc(1, 0.9), doc(4, 0.5)],
            vec![doc(2, 0.8), doc(5, 0.1)],
            vec![doc(3, 0.7)],
        ];
        let outcome = gather_topk(&peers, 3);
        let docs: Vec<u32> = outcome.ranked.iter().map(|r| r.doc.0).collect();
        assert_eq!(docs, vec![1, 2, 3]);
        assert_eq!(outcome.candidates_received, 5);
        assert_eq!(outcome.candidates_examined, 3);
        // τ = 0.5 (doc 4), and the 3rd result scores 0.7 ≥ τ.
        assert_eq!(outcome.threshold_bound, Some(0.5));
    }

    #[test]
    fn ties_across_peers_break_by_doc_id() {
        let peers = vec![vec![doc(9, 0.5)], vec![doc(2, 0.5)], vec![doc(5, 0.5)]];
        let outcome = gather_topk(&peers, 2);
        let docs: Vec<u32> = outcome.ranked.iter().map(|r| r.doc.0).collect();
        assert_eq!(docs, vec![2, 5]);
    }

    #[test]
    fn k_exceeding_supply_returns_everything() {
        let peers = vec![vec![doc(1, 0.3)], vec![]];
        let outcome = gather_topk(&peers, 10);
        assert_eq!(outcome.ranked.len(), 1);
        assert_eq!(outcome.threshold_bound, None);
    }

    #[test]
    fn empty_input_is_empty() {
        assert!(gather_topk(&[], 5).ranked.is_empty());
        let outcome = gather_topk(&[vec![], vec![]], 5);
        assert!(outcome.ranked.is_empty());
        assert_eq!(outcome.candidates_examined, 0);
    }

    #[test]
    fn k_zero_examines_nothing() {
        let peers = vec![vec![doc(1, 1.0)]];
        let outcome = gather_topk(&peers, 0);
        assert!(outcome.ranked.is_empty());
        assert_eq!(outcome.candidates_examined, 0);
        assert_eq!(outcome.threshold_bound, Some(1.0));
    }
}
