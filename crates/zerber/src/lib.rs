//! The Zerber system facade: a full simulated deployment of the
//! EDBT'08 design, plus the baseline systems it is evaluated against.
//!
//! A [`ZerberSystem`] wires together:
//!
//! * `n` index servers ([`zerber_server::IndexServer`]), each owning a
//!   public Shamir x-coordinate and enforcing group ACLs,
//! * one document owner per collaboration group
//!   ([`zerber_client::DocumentOwner`]) that encrypts and distributes
//!   posting elements,
//! * query clients executing Algorithm 2 end to end,
//! * a shared [`zerber_net::TrafficMeter`] so every byte crossing the
//!   simulated network is accounted for,
//! * the public [`zerber_core::MappingTable`] produced by one of the
//!   merging heuristics.
//!
//! The [`baselines`] module provides the comparators used throughout
//! the paper: the trusted central index ("ideal scheme", Section 2),
//! the shotgun per-owner broadcast (Section 1), and a μ-Serv-style
//! Bloom-filter site index (Section 3, [3]).

pub mod baselines;
pub mod config;
pub mod metered;
pub mod system;

pub use config::ZerberConfig;
pub use metered::MeteredHandle;
pub use system::{SystemError, ZerberSystem};
