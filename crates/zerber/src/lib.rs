//! The Zerber system facade: a full simulated deployment of the
//! EDBT'08 design, plus the baseline systems it is evaluated against.
//!
//! A [`ZerberSystem`] wires together:
//!
//! * `n` index servers ([`zerber_server::IndexServer`]), each owning a
//!   public Shamir x-coordinate and enforcing group ACLs,
//! * one document owner per collaboration group
//!   ([`zerber_client::DocumentOwner`]) that encrypts and distributes
//!   posting elements,
//! * query clients executing Algorithm 2 end to end,
//! * a shared [`zerber_net::TrafficMeter`] so every byte crossing the
//!   simulated network is accounted for,
//! * the public [`zerber_core::MappingTable`] produced by one of the
//!   merging heuristics.
//!
//! Since the runtime refactor every index server runs on its own peer
//! thread behind the message-passing [`runtime`] layer: data-plane
//! calls are serialized to their exact wire bytes, metered per link,
//! and executed off the caller's thread, and the same layer provides
//! [`runtime::ShardedSearch`] — a document-sharded, concurrent top-k
//! serving engine with a fan-out/gather query path (see its docs for
//! a 4-peer end-to-end example).
//!
//! The [`baselines`] module provides the comparators used throughout
//! the paper: the trusted central index ("ideal scheme", Section 2),
//! the shotgun per-owner broadcast (Section 1), and a μ-Serv-style
//! Bloom-filter site index (Section 3, \[3\]).
//!
//! # Example
//!
//! Deploy a 2-out-of-3 system over one tiny group, index a document,
//! and run an authorized query end to end:
//!
//! ```
//! use zerber::{ZerberConfig, ZerberSystem};
//! use zerber_core::merge::MergeConfig;
//! use zerber_index::{DocId, GroupId, InvertedIndex, RawDocument, TermDict, Tokenizer, UserId};
//!
//! let tokenizer = Tokenizer::new();
//! let mut dict = TermDict::new();
//! let raw = RawDocument {
//!     id: DocId::from_parts(0, 1),
//!     group: GroupId(0),
//!     text: "the quarterly layoff plan is confidential".to_owned(),
//! };
//! let doc = raw.process(&tokenizer, &mut dict);
//!
//! let mut index = InvertedIndex::new();
//! index.insert(&doc);
//! let config = ZerberConfig::default().with_merge(MergeConfig::dfm(4));
//! let mut system = ZerberSystem::bootstrap(config, &index.statistics()).unwrap();
//!
//! let reader = UserId(7);
//! system.add_membership(reader, GroupId(0));
//! system.index_document(&doc).unwrap();
//!
//! let term = dict.get("layoff").unwrap();
//! let outcome = system.query(reader, &[term], 10).unwrap();
//! assert_eq!(outcome.ranked[0].doc, doc.id);
//!
//! // A stranger without the group membership sees nothing.
//! let outsider = UserId(8);
//! let empty = system.query(outsider, &[term], 10).unwrap();
//! assert!(empty.ranked.is_empty());
//! ```

#![deny(missing_docs)]

pub mod baselines;
pub mod config;
pub mod runtime;
pub mod system;

pub use config::{ConfigError, ZerberConfig};
pub use runtime::{IngestError, RuntimeHandle, ShardedSearch};
pub use system::{SystemError, ZerberSystem};
pub use zerber_index::{PostingBackend, SegmentPolicy};
