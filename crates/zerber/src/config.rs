//! Deployment configuration.

use zerber_client::BatchPolicy;
use zerber_core::merge::MergeConfig;
use zerber_core::ElementCodec;
use zerber_index::PostingBackend;

/// A structurally invalid [`ZerberConfig`], caught by
/// [`ZerberConfig::validate`] at bootstrap time instead of deep inside
/// placement or sharing code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigError {
    /// `threshold` must be at least 1 — a 0-of-n sharing reconstructs
    /// from nothing.
    ThresholdZero,
    /// `threshold` exceeds `servers`: no quorum of `k` servers exists.
    ThresholdExceedsServers {
        /// The configured reconstruction threshold `k`.
        threshold: usize,
        /// The configured server count `n`.
        servers: usize,
    },
    /// The peer count is zero — nothing can host a shard or a share.
    NoPeers,
    /// The peer ring is smaller than the sharing degree: placing the
    /// `n` shares of an element on `n` *distinct* peers (and hence
    /// assembling any `k`-quorum) is impossible. Previously this was
    /// only caught as a panic deep in `zerber_dht` placement.
    TooFewPeers {
        /// The configured ring width.
        peers: usize,
        /// The minimum ring width (`servers`).
        need: usize,
    },
    /// The segmented posting backend's policy is degenerate (a zero
    /// flush threshold or segment bound would wedge the engine).
    InvalidSegmentPolicy {
        /// Which knob is broken.
        reason: &'static str,
    },
    /// The shard replication degree is zero — no copy of any shard
    /// would exist.
    NoReplicas,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::ThresholdZero => write!(f, "sharing threshold must be at least 1"),
            ConfigError::NoPeers => write!(f, "peer count must be at least 1"),
            ConfigError::ThresholdExceedsServers { threshold, servers } => write!(
                f,
                "threshold k = {threshold} exceeds server count n = {servers}"
            ),
            ConfigError::TooFewPeers { peers, need } => write!(
                f,
                "peer ring has {peers} peers but share placement needs at least n = {need} \
                 distinct peers (which also covers the k-quorum)"
            ),
            ConfigError::InvalidSegmentPolicy { reason } => {
                write!(f, "segmented posting backend misconfigured: {reason}")
            }
            ConfigError::NoReplicas => write!(f, "shard replication must be at least 1"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Everything needed to bootstrap a Zerber deployment.
///
/// `Clone` but not `Copy` since the segmented posting backend carries
/// its storage directory.
#[derive(Debug, Clone)]
pub struct ZerberConfig {
    /// Number of index servers `n`.
    pub servers: usize,
    /// Reconstruction threshold `k` (the paper's experiments use
    /// 2-out-of-3).
    pub threshold: usize,
    /// Width of the distributed peer ring for DHT-placed deployments
    /// (share placement in `zerber-dht`, document shards in the peer
    /// runtime). Must be at least `servers` so every element's `n`
    /// shares land on distinct peers; [`ZerberConfig::with_sharing`]
    /// widens it automatically.
    pub peers: usize,
    /// Copies of each document shard in the peer runtime: shard `s`
    /// lives on peers `s, s+1, …, s+R-1 (mod peers)` (chord-style
    /// successor replication — the same scheme Section 6 uses for
    /// posting-list shares). `1` means no redundancy; degrees beyond
    /// the peer count clamp to one copy per peer. Queries hedge across
    /// replicas, so a deployment survives any failure pattern that
    /// leaves at least one live replica per shard.
    pub replication: usize,
    /// Posting-list merging configuration.
    pub merge: MergeConfig,
    /// Posting-element bit layout.
    pub codec: ElementCodec,
    /// Owner-side update batching.
    pub batch: BatchPolicy,
    /// Posting-list storage backend used when freezing plaintext index
    /// snapshots via [`ZerberConfig::posting_store`] (the storage
    /// experiments and baseline accounting honor it): raw
    /// `Vec<Posting>` lists or the block-compressed engine. Share
    /// columns are unaffected — they are incompressible by design
    /// (Section 7.3).
    pub postings: PostingBackend,
    /// Master RNG seed (coordinates, BFM redistribution, element
    /// encryption).
    pub seed: u64,
}

impl Default for ZerberConfig {
    /// The paper's experimental setup: 2-out-of-3 sharing, DFM
    /// merging, immediate updates.
    fn default() -> Self {
        Self {
            servers: 3,
            threshold: 2,
            peers: 3,
            replication: 1,
            merge: MergeConfig::dfm(1024),
            codec: ElementCodec::default(),
            batch: BatchPolicy::immediate(),
            postings: PostingBackend::Raw,
            seed: 0xEDB7_2008,
        }
    }
}

impl ZerberConfig {
    /// Overrides the merge configuration.
    pub fn with_merge(mut self, merge: MergeConfig) -> Self {
        self.merge = merge;
        self
    }

    /// Overrides `n` and `k`. Widens the peer ring to at least `n` so
    /// the configuration stays placeable (see
    /// [`ZerberConfig::validate`]).
    pub fn with_sharing(mut self, servers: usize, threshold: usize) -> Self {
        self.servers = servers;
        self.threshold = threshold;
        self.peers = self.peers.max(servers);
        self
    }

    /// Overrides the peer-ring width.
    pub fn with_peers(mut self, peers: usize) -> Self {
        self.peers = peers;
        self
    }

    /// Overrides the shard replication degree of the peer runtime.
    pub fn with_replication(mut self, replication: usize) -> Self {
        self.replication = replication;
        self
    }

    /// Checks the structural invariants: `1 ≤ threshold ≤ servers ≤
    /// peers`, and a sane segmented-storage policy when that backend
    /// is selected. Called by `ZerberSystem::bootstrap` and the peer
    /// runtime so a misconfiguration fails fast with a typed error
    /// instead of panicking deep in placement or wedging the storage
    /// engine.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.threshold == 0 {
            return Err(ConfigError::ThresholdZero);
        }
        if self.threshold > self.servers {
            return Err(ConfigError::ThresholdExceedsServers {
                threshold: self.threshold,
                servers: self.servers,
            });
        }
        if self.peers < self.servers {
            return Err(ConfigError::TooFewPeers {
                peers: self.peers,
                need: self.servers,
            });
        }
        if self.replication == 0 {
            return Err(ConfigError::NoReplicas);
        }
        if let PostingBackend::Segmented { dir, compaction } = &self.postings {
            if dir.as_os_str().is_empty() {
                return Err(ConfigError::InvalidSegmentPolicy {
                    reason: "storage directory is empty",
                });
            }
            if compaction.flush_postings == 0 {
                return Err(ConfigError::InvalidSegmentPolicy {
                    reason: "flush_postings must be at least 1",
                });
            }
            if compaction.max_segments == 0 {
                return Err(ConfigError::InvalidSegmentPolicy {
                    reason: "max_segments must be at least 1",
                });
            }
        }
        Ok(())
    }

    /// Overrides the batch policy.
    pub fn with_batch(mut self, batch: BatchPolicy) -> Self {
        self.batch = batch;
        self
    }

    /// Overrides the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the posting-storage backend.
    pub fn with_postings(mut self, postings: PostingBackend) -> Self {
        self.postings = postings;
        self
    }

    /// Builds the configured posting store from a plaintext index
    /// snapshot (see [`zerber_index::PostingStore`]).
    ///
    /// For the segmented backend this opens (or creates) the durable
    /// store at the configured directory, bulk-loads the index's
    /// documents, seals and compacts, and returns a snapshot —
    /// re-opening an existing directory upserts on top of whatever it
    /// already holds, matching re-insertion semantics. Multi-shard
    /// deployments derive one subdirectory per shard (see
    /// `runtime::ShardedSearch`) so stores never collide.
    ///
    /// # Panics
    /// Panics if the segmented store cannot be opened or written (the
    /// mutable ingest path returns typed errors instead; a frozen
    /// snapshot build has no caller able to recover).
    pub fn posting_store(
        &self,
        index: &zerber_index::InvertedIndex,
    ) -> Box<dyn zerber_index::PostingStore> {
        match &self.postings {
            PostingBackend::Segmented { dir, compaction } => {
                let store = zerber_segment::SegmentStore::open(dir.clone(), *compaction)
                    .expect("segmented posting store opens");
                store
                    .insert(&index.export_documents())
                    .expect("bulk load fits the store");
                store.flush().expect("flush succeeds");
                store.compact().expect("compaction succeeds");
                Box::new(store.snapshot())
            }
            backend => zerber_postings::build_store(backend, index),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_setup() {
        let config = ZerberConfig::default();
        assert_eq!(config.servers, 3);
        assert_eq!(config.threshold, 2);
    }

    #[test]
    fn builders_override_fields() {
        let config = ZerberConfig::default()
            .with_sharing(5, 3)
            .with_seed(1)
            .with_batch(BatchPolicy::batched(50))
            .with_postings(PostingBackend::Compressed);
        assert_eq!(config.servers, 5);
        assert_eq!(config.threshold, 3);
        assert_eq!(config.seed, 1);
        assert_eq!(config.batch, BatchPolicy::batched(50));
        assert_eq!(config.postings, PostingBackend::Compressed);
    }

    #[test]
    fn default_config_validates() {
        assert_eq!(ZerberConfig::default().validate(), Ok(()));
    }

    #[test]
    fn with_sharing_widens_the_ring() {
        let config = ZerberConfig::default().with_sharing(5, 3);
        assert_eq!(config.peers, 5);
        assert_eq!(config.validate(), Ok(()));
    }

    #[test]
    fn undersized_ring_is_rejected() {
        // Fewer ring peers than share replicas: previously only caught
        // as a panic deep in DHT placement.
        let config = ZerberConfig::default().with_peers(2);
        assert_eq!(
            config.validate(),
            Err(ConfigError::TooFewPeers { peers: 2, need: 3 })
        );
    }

    #[test]
    fn degenerate_sharing_is_rejected() {
        let zero = ZerberConfig {
            threshold: 0,
            ..ZerberConfig::default()
        };
        assert_eq!(zero.validate(), Err(ConfigError::ThresholdZero));
        let over = ZerberConfig {
            threshold: 4,
            ..ZerberConfig::default()
        };
        assert_eq!(
            over.validate(),
            Err(ConfigError::ThresholdExceedsServers {
                threshold: 4,
                servers: 3
            })
        );
    }

    #[test]
    fn zero_replication_is_rejected() {
        let config = ZerberConfig::default().with_replication(0);
        assert_eq!(config.validate(), Err(ConfigError::NoReplicas));
        assert_eq!(
            ZerberConfig::default().with_replication(2).validate(),
            Ok(())
        );
    }

    #[test]
    fn segmented_policy_is_validated() {
        use zerber_index::SegmentPolicy;
        let good = ZerberConfig::default().with_postings(PostingBackend::Segmented {
            dir: std::path::PathBuf::from("/tmp/zerber-validate-never-created"),
            compaction: SegmentPolicy::default(),
        });
        assert_eq!(good.validate(), Ok(()));
        for (policy, what) in [
            (
                SegmentPolicy {
                    flush_postings: 0,
                    ..SegmentPolicy::default()
                },
                "flush",
            ),
            (
                SegmentPolicy {
                    max_segments: 0,
                    ..SegmentPolicy::default()
                },
                "segments",
            ),
        ] {
            let bad = ZerberConfig::default().with_postings(PostingBackend::Segmented {
                dir: std::path::PathBuf::from("/tmp/zerber-validate-never-created"),
                compaction: policy,
            });
            assert!(
                matches!(
                    bad.validate(),
                    Err(ConfigError::InvalidSegmentPolicy { .. })
                ),
                "{what}"
            );
        }
        let empty_dir = ZerberConfig::default().with_postings(PostingBackend::Segmented {
            dir: std::path::PathBuf::new(),
            compaction: SegmentPolicy::default(),
        });
        assert!(matches!(
            empty_dir.validate(),
            Err(ConfigError::InvalidSegmentPolicy { .. })
        ));
    }

    #[test]
    fn segmented_posting_store_serves_the_same_postings() {
        use zerber_index::{DocId, Document, GroupId, InvertedIndex, SegmentPolicy, TermId};
        let docs: Vec<Document> = (0..120u32)
            .map(|d| {
                Document::from_term_counts(
                    DocId(d),
                    GroupId(0),
                    (0..4).map(|t| (TermId((d + t) % 15), 1 + t)).collect(),
                )
            })
            .collect();
        let index = InvertedIndex::from_documents(&docs);
        let dir = zerber_segment::scratch_dir("config-posting-store");
        let segmented = ZerberConfig::default()
            .with_postings(PostingBackend::Segmented {
                dir: dir.clone(),
                compaction: SegmentPolicy {
                    background: false,
                    ..SegmentPolicy::default()
                },
            })
            .posting_store(&index);
        let raw = ZerberConfig::default().posting_store(&index);
        assert_eq!(segmented.total_postings(), raw.total_postings());
        for term in 0..15u32 {
            let a: Vec<_> = segmented.postings(TermId(term)).collect();
            let b: Vec<_> = raw.postings(TermId(term)).collect();
            assert_eq!(a, b, "term {term}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn posting_store_follows_the_backend() {
        use zerber_index::{DocId, Document, GroupId, InvertedIndex, TermId};
        let docs: Vec<Document> = (0..200u32)
            .map(|d| {
                Document::from_term_counts(
                    DocId(d),
                    GroupId(0),
                    (0..6).map(|t| (TermId((d + t) % 20), 1)).collect(),
                )
            })
            .collect();
        let index = InvertedIndex::from_documents(&docs);
        let raw = ZerberConfig::default().posting_store(&index);
        let compressed = ZerberConfig::default()
            .with_postings(PostingBackend::Compressed)
            .posting_store(&index);
        assert_eq!(raw.total_postings(), compressed.total_postings());
        assert!(compressed.posting_bytes() < raw.posting_bytes());
    }
}
