//! Deployment configuration.

use zerber_client::BatchPolicy;
use zerber_core::merge::MergeConfig;
use zerber_core::ElementCodec;
use zerber_index::PostingBackend;

/// Everything needed to bootstrap a Zerber deployment.
#[derive(Debug, Clone, Copy)]
pub struct ZerberConfig {
    /// Number of index servers `n`.
    pub servers: usize,
    /// Reconstruction threshold `k` (the paper's experiments use
    /// 2-out-of-3).
    pub threshold: usize,
    /// Posting-list merging configuration.
    pub merge: MergeConfig,
    /// Posting-element bit layout.
    pub codec: ElementCodec,
    /// Owner-side update batching.
    pub batch: BatchPolicy,
    /// Posting-list storage backend used when freezing plaintext index
    /// snapshots via [`ZerberConfig::posting_store`] (the storage
    /// experiments and baseline accounting honor it): raw
    /// `Vec<Posting>` lists or the block-compressed engine. Share
    /// columns are unaffected — they are incompressible by design
    /// (Section 7.3).
    pub postings: PostingBackend,
    /// Master RNG seed (coordinates, BFM redistribution, element
    /// encryption).
    pub seed: u64,
}

impl Default for ZerberConfig {
    /// The paper's experimental setup: 2-out-of-3 sharing, DFM
    /// merging, immediate updates.
    fn default() -> Self {
        Self {
            servers: 3,
            threshold: 2,
            merge: MergeConfig::dfm(1024),
            codec: ElementCodec::default(),
            batch: BatchPolicy::immediate(),
            postings: PostingBackend::Raw,
            seed: 0xEDB7_2008,
        }
    }
}

impl ZerberConfig {
    /// Overrides the merge configuration.
    pub fn with_merge(mut self, merge: MergeConfig) -> Self {
        self.merge = merge;
        self
    }

    /// Overrides `n` and `k`.
    pub fn with_sharing(mut self, servers: usize, threshold: usize) -> Self {
        self.servers = servers;
        self.threshold = threshold;
        self
    }

    /// Overrides the batch policy.
    pub fn with_batch(mut self, batch: BatchPolicy) -> Self {
        self.batch = batch;
        self
    }

    /// Overrides the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the posting-storage backend.
    pub fn with_postings(mut self, postings: PostingBackend) -> Self {
        self.postings = postings;
        self
    }

    /// Builds the configured posting store from a plaintext index
    /// snapshot (see [`zerber_index::PostingStore`]).
    pub fn posting_store(
        &self,
        index: &zerber_index::InvertedIndex,
    ) -> Box<dyn zerber_index::PostingStore> {
        zerber_postings::build_store(self.postings, index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_setup() {
        let config = ZerberConfig::default();
        assert_eq!(config.servers, 3);
        assert_eq!(config.threshold, 2);
    }

    #[test]
    fn builders_override_fields() {
        let config = ZerberConfig::default()
            .with_sharing(5, 3)
            .with_seed(1)
            .with_batch(BatchPolicy::batched(50))
            .with_postings(PostingBackend::Compressed);
        assert_eq!(config.servers, 5);
        assert_eq!(config.threshold, 3);
        assert_eq!(config.seed, 1);
        assert_eq!(config.batch, BatchPolicy::batched(50));
        assert_eq!(config.postings, PostingBackend::Compressed);
    }

    #[test]
    fn posting_store_follows_the_backend() {
        use zerber_index::{DocId, Document, GroupId, InvertedIndex, TermId};
        let docs: Vec<Document> = (0..200u32)
            .map(|d| {
                Document::from_term_counts(
                    DocId(d),
                    GroupId(0),
                    (0..6).map(|t| (TermId((d + t) % 20), 1)).collect(),
                )
            })
            .collect();
        let index = InvertedIndex::from_documents(&docs);
        let raw = ZerberConfig::default().posting_store(&index);
        let compressed = ZerberConfig::default()
            .with_postings(PostingBackend::Compressed)
            .posting_store(&index);
        assert_eq!(raw.total_postings(), compressed.total_postings());
        assert!(compressed.posting_bytes() < raw.posting_bytes());
    }
}
