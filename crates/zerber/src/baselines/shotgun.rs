//! The shotgun baseline (paper Section 1).
//!
//! "One possible solution is for each document owner to keep an
//! inverted index over the documents it owns locally. Then a user's
//! query … can be broadcast to all document owners, and the resulting
//! answers can be collected by the user and, if desired, ranked. …
//! However, this shotgun approach to querying is relatively slow, and
//! wastes network bandwidth and computing power, since most document
//! owners will not have posting list elements matching most queries."

use std::collections::HashMap;

use zerber_index::{CentralIndex, Document, GroupId, RankedDoc, TermId, UserId};

/// Query accounting for the shotgun comparison.
#[derive(Debug, Clone)]
pub struct ShotgunOutcome {
    /// Combined ranked results. Note the caveat the paper raises for
    /// decentralized ranking: each site ranks with *its own* local
    /// statistics, so combined scores are not globally consistent.
    pub ranked: Vec<RankedDoc>,
    /// Sites the query was broadcast to (always all of them).
    pub sites_contacted: usize,
    /// Sites that actually had at least one accessible match — the
    /// wasted-work measure.
    pub sites_with_hits: usize,
}

/// Per-owner local indexes with broadcast query dissemination.
#[derive(Debug, Default)]
pub struct ShotgunSearch {
    sites: HashMap<u16, CentralIndex>,
}

impl ShotgunSearch {
    /// An empty deployment.
    pub fn new() -> Self {
        Self::default()
    }

    /// Indexes a document at its hosting site (derived from the doc
    /// id).
    pub fn insert(&mut self, doc: &Document) {
        self.sites.entry(doc.id.host()).or_default().insert(doc);
    }

    /// Indexes a batch of documents, grouped per hosting site and
    /// bulk-merged into each site's index
    /// (`CentralIndex::insert_batch`). Use this for deployment
    /// construction: the per-document `insert` path pays
    /// `PostingList::upsert`'s shift-per-posting cost, which is
    /// quadratic over a corpus-sized loop.
    pub fn insert_batch(&mut self, docs: &[Document]) {
        let mut per_site: HashMap<u16, Vec<Document>> = HashMap::new();
        for doc in docs {
            per_site.entry(doc.id.host()).or_default().push(doc.clone());
        }
        for (host, site_docs) in per_site {
            self.sites.entry(host).or_default().insert_batch(&site_docs);
        }
    }

    /// Removes a document from its hosting site.
    pub fn remove(&mut self, doc: zerber_index::DocId) -> bool {
        self.sites
            .get_mut(&doc.host())
            .is_some_and(|site| site.remove(doc))
    }

    /// Grants a membership — every site owner enforces access control
    /// on its own index, so the grant must reach all sites.
    pub fn add_user_to_group(&mut self, user: UserId, group: GroupId) {
        for site in self.sites.values_mut() {
            site.add_user_to_group(user, group);
        }
    }

    /// Number of sites.
    pub fn site_count(&self) -> usize {
        self.sites.len()
    }

    /// Broadcasts a query to every site and merges the per-site ranked
    /// answers.
    pub fn query(&self, user: UserId, terms: &[TermId], k: usize) -> ShotgunOutcome {
        let mut combined: Vec<RankedDoc> = Vec::new();
        let mut sites_with_hits = 0usize;
        for site in self.sites.values() {
            let hits = site.search(user, terms, usize::MAX);
            if !hits.is_empty() {
                sites_with_hits += 1;
            }
            combined.extend(hits);
        }
        combined.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap()
                .then(a.doc.cmp(&b.doc))
        });
        combined.truncate(k);
        ShotgunOutcome {
            ranked: combined,
            sites_contacted: self.sites.len(),
            sites_with_hits,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zerber_index::DocId;

    fn doc(host: u16, local: u32, group: u32, terms: &[(u32, u32)]) -> Document {
        Document::from_term_counts(
            DocId::from_parts(host, local),
            GroupId(group),
            terms.iter().map(|&(t, c)| (TermId(t), c)).collect(),
        )
    }

    fn deployment() -> ShotgunSearch {
        let mut shotgun = ShotgunSearch::new();
        shotgun.insert(&doc(0, 1, 0, &[(10, 1)]));
        shotgun.insert(&doc(1, 1, 0, &[(20, 1)]));
        shotgun.insert(&doc(2, 1, 0, &[(30, 1)]));
        shotgun.add_user_to_group(UserId(1), GroupId(0));
        shotgun
    }

    #[test]
    fn broadcast_contacts_every_site() {
        let shotgun = deployment();
        let outcome = shotgun.query(UserId(1), &[TermId(10)], 10);
        assert_eq!(outcome.sites_contacted, 3);
        assert_eq!(outcome.sites_with_hits, 1, "two sites wasted work");
        assert_eq!(outcome.ranked.len(), 1);
    }

    #[test]
    fn acl_is_enforced_per_site() {
        let mut shotgun = ShotgunSearch::new();
        shotgun.insert(&doc(0, 1, 0, &[(10, 1)]));
        shotgun.insert(&doc(1, 1, 5, &[(10, 1)]));
        shotgun.add_user_to_group(UserId(1), GroupId(0));
        let outcome = shotgun.query(UserId(1), &[TermId(10)], 10);
        assert_eq!(outcome.ranked.len(), 1);
        assert_eq!(outcome.ranked[0].doc.host(), 0);
    }

    #[test]
    fn results_merge_across_sites() {
        let mut shotgun = deployment();
        shotgun.insert(&doc(1, 2, 0, &[(10, 3)]));
        shotgun.add_user_to_group(UserId(1), GroupId(0));
        let outcome = shotgun.query(UserId(1), &[TermId(10)], 10);
        assert_eq!(outcome.ranked.len(), 2);
        assert_eq!(outcome.sites_with_hits, 2);
    }

    #[test]
    fn batch_build_matches_per_doc_inserts() {
        let docs: Vec<Document> = (0..60u32)
            .map(|i| doc((i % 4) as u16, i, i % 3, &[(i % 9, 1 + i % 2), (50, 1)]))
            .collect();
        let mut batched = ShotgunSearch::new();
        batched.insert_batch(&docs);
        let mut looped = ShotgunSearch::new();
        for d in &docs {
            looped.insert(d);
        }
        for search in [&mut batched, &mut looped] {
            search.add_user_to_group(UserId(1), GroupId(0));
            search.add_user_to_group(UserId(1), GroupId(1));
            search.add_user_to_group(UserId(1), GroupId(2));
        }
        assert_eq!(batched.site_count(), looped.site_count());
        for term in [0u32, 5, 50, 99] {
            let a = batched.query(UserId(1), &[TermId(term)], 20);
            let b = looped.query(UserId(1), &[TermId(term)], 20);
            assert_eq!(a.ranked, b.ranked, "term {term}");
            assert_eq!(a.sites_with_hits, b.sites_with_hits);
        }
    }

    #[test]
    fn remove_deletes_from_the_right_site() {
        let mut shotgun = deployment();
        assert!(shotgun.remove(DocId::from_parts(0, 1)));
        assert!(!shotgun.remove(DocId::from_parts(0, 1)));
        let outcome = shotgun.query(UserId(1), &[TermId(10)], 10);
        assert!(outcome.ranked.is_empty());
    }
}
