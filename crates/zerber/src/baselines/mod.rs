//! Baseline systems the paper compares against.
//!
//! * **Trusted central index** — the "ideal solution" of Section 2: an
//!   ordinary inverted index with an ACL check on the ranked list.
//!   Re-exported from `zerber-index` as [`CentralIndex`].
//! * **Shotgun search** ([`shotgun`]) — Section 1's strawman: each
//!   owner indexes locally and every query is broadcast to all owners.
//! * **μ-Serv** ([`muserv`]) — Section 3's closest related system \[3\]:
//!   a central Bloom-filter index that returns *candidate sites*,
//!   which the user must then query individually.

pub mod muserv;
pub mod shotgun;

pub use muserv::MuServIndex;
pub use shotgun::ShotgunSearch;
pub use zerber_index::CentralIndex;
