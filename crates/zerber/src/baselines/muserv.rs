//! The μ-Serv baseline (paper Section 3, reference \[3\]).
//!
//! "μ-Serv has a centralized index based on a Bloom filter; it
//! responds to a keyword search by returning a list of sites that have
//! at least x% probability of having documents containing one of the
//! query keywords … Users then repeat their query at each suggested
//! site. The lack of precision in results from the central index
//! represents a tradeoff between search efficiency and confidentiality
//! preservation. … For example, if x = 5%, the user must query 20
//! times as many sites to get the relevant results."
//!
//! We model the per-site term Bloom filters directly: a higher
//! false-positive rate (lower x) hides more but wastes more per-site
//! queries. The per-site search itself reuses the shotgun machinery.

use std::collections::HashMap;

use zerber_index::{BloomFilter, CentralIndex, Document, GroupId, RankedDoc, TermId, UserId};

/// Query accounting for the μ-Serv comparison.
#[derive(Debug, Clone)]
pub struct MuServOutcome {
    /// Combined ranked results from the candidate sites.
    pub ranked: Vec<RankedDoc>,
    /// Sites the central index flagged as candidates (each costs a
    /// follow-up query).
    pub candidate_sites: usize,
    /// Candidate sites that actually held accessible matches.
    pub sites_with_hits: usize,
    /// Total sites registered.
    pub total_sites: usize,
}

/// A μ-Serv-style deployment: one Bloom filter per site at the
/// central index, full per-site indexes at the owners.
#[derive(Debug)]
pub struct MuServIndex {
    filters: HashMap<u16, BloomFilter>,
    sites: HashMap<u16, CentralIndex>,
    expected_terms_per_site: usize,
    false_positive_rate: f64,
}

impl MuServIndex {
    /// Creates a deployment whose per-site filters target the given
    /// false-positive rate (the μ-Serv `x%` precision knob).
    pub fn new(expected_terms_per_site: usize, false_positive_rate: f64) -> Self {
        Self {
            filters: HashMap::new(),
            sites: HashMap::new(),
            expected_terms_per_site,
            false_positive_rate,
        }
    }

    /// Indexes a document: its terms go into the hosting site's Bloom
    /// filter at the central index, and into the site's own inverted
    /// index.
    pub fn insert(&mut self, doc: &Document) {
        let host = doc.id.host();
        let filter = self.filters.entry(host).or_insert_with(|| {
            BloomFilter::with_false_positive_rate(
                self.expected_terms_per_site,
                self.false_positive_rate,
            )
        });
        for &(term, _) in &doc.terms {
            filter.insert(&term.0.to_le_bytes());
        }
        self.sites.entry(host).or_default().insert(doc);
    }

    /// Indexes a batch of documents: per-site grouping, one Bloom
    /// insert pass, and a bulk merge into each site's index
    /// (`CentralIndex::insert_batch`) — the non-quadratic construction
    /// path for corpus-scale deployments.
    pub fn insert_batch(&mut self, docs: &[Document]) {
        let mut per_site: HashMap<u16, Vec<Document>> = HashMap::new();
        for doc in docs {
            per_site.entry(doc.id.host()).or_default().push(doc.clone());
        }
        for (host, site_docs) in per_site {
            let filter = self.filters.entry(host).or_insert_with(|| {
                BloomFilter::with_false_positive_rate(
                    self.expected_terms_per_site,
                    self.false_positive_rate,
                )
            });
            for doc in &site_docs {
                for &(term, _) in &doc.terms {
                    filter.insert(&term.0.to_le_bytes());
                }
            }
            self.sites.entry(host).or_default().insert_batch(&site_docs);
        }
    }

    /// Grants a membership at every site.
    pub fn add_user_to_group(&mut self, user: UserId, group: GroupId) {
        for site in self.sites.values_mut() {
            site.add_user_to_group(user, group);
        }
    }

    /// Number of registered sites.
    pub fn site_count(&self) -> usize {
        self.sites.len()
    }

    /// Central-index lookup only: which sites *might* hold any of the
    /// query terms.
    pub fn candidate_sites(&self, terms: &[TermId]) -> Vec<u16> {
        let mut candidates: Vec<u16> = self
            .filters
            .iter()
            .filter(|(_, filter)| terms.iter().any(|t| filter.contains(&t.0.to_le_bytes())))
            .map(|(&host, _)| host)
            .collect();
        candidates.sort_unstable();
        candidates
    }

    /// Full two-phase query: central Bloom lookup, then per-candidate
    /// site queries, then client-side merge.
    pub fn query(&self, user: UserId, terms: &[TermId], k: usize) -> MuServOutcome {
        let candidates = self.candidate_sites(terms);
        let mut combined: Vec<RankedDoc> = Vec::new();
        let mut sites_with_hits = 0usize;
        for host in &candidates {
            let hits = self.sites[host].search(user, terms, usize::MAX);
            if !hits.is_empty() {
                sites_with_hits += 1;
            }
            combined.extend(hits);
        }
        combined.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap()
                .then(a.doc.cmp(&b.doc))
        });
        combined.truncate(k);
        MuServOutcome {
            ranked: combined,
            candidate_sites: candidates.len(),
            sites_with_hits,
            total_sites: self.sites.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zerber_index::DocId;

    fn doc(host: u16, local: u32, terms: &[u32]) -> Document {
        Document::from_term_counts(
            DocId::from_parts(host, local),
            GroupId(0),
            terms.iter().map(|&t| (TermId(t), 1)).collect(),
        )
    }

    fn deployment(fp_rate: f64) -> MuServIndex {
        let mut muserv = MuServIndex::new(100, fp_rate);
        for host in 0..20u16 {
            // Each site holds one doc with a site-specific term.
            muserv.insert(&doc(host, 0, &[1000 + host as u32]));
        }
        muserv.add_user_to_group(UserId(1), GroupId(0));
        muserv
    }

    #[test]
    fn precise_filters_prune_most_sites() {
        let muserv = deployment(0.001);
        let outcome = muserv.query(UserId(1), &[TermId(1005)], 10);
        assert_eq!(outcome.ranked.len(), 1);
        assert!(
            outcome.candidate_sites <= 3,
            "expected few candidates, got {}",
            outcome.candidate_sites
        );
        assert_eq!(outcome.sites_with_hits, 1);
    }

    #[test]
    fn results_are_exact_despite_filter_noise() {
        // False positives cost extra site queries but never wrong
        // results — the per-site index is exact.
        let muserv = deployment(0.3);
        let outcome = muserv.query(UserId(1), &[TermId(1005)], 10);
        assert_eq!(outcome.ranked.len(), 1);
        assert_eq!(outcome.ranked[0].doc, DocId::from_parts(5, 0));
    }

    #[test]
    fn higher_fp_rate_means_more_candidate_sites() {
        let precise = deployment(0.001);
        let sloppy = deployment(0.5);
        let term = [TermId(1005)];
        assert!(sloppy.candidate_sites(&term).len() >= precise.candidate_sites(&term).len());
    }

    #[test]
    fn absent_terms_hit_no_real_site() {
        let muserv = deployment(0.01);
        let outcome = muserv.query(UserId(1), &[TermId(999_999)], 10);
        assert!(outcome.ranked.is_empty());
        assert_eq!(outcome.sites_with_hits, 0);
    }

    #[test]
    fn batch_build_matches_per_doc_inserts() {
        let docs: Vec<Document> = (0..50u32)
            .map(|i| doc((i % 5) as u16, i, &[1000 + i % 12, 2000]))
            .collect();
        let mut batched = MuServIndex::new(100, 0.01);
        batched.insert_batch(&docs);
        let mut looped = MuServIndex::new(100, 0.01);
        for d in &docs {
            looped.insert(d);
        }
        batched.add_user_to_group(UserId(1), GroupId(0));
        looped.add_user_to_group(UserId(1), GroupId(0));
        assert_eq!(batched.site_count(), looped.site_count());
        for term in [1000u32, 1005, 2000, 9999] {
            // Identical Bloom state (same per-site insert sequence per
            // filter) and identical indexes ⇒ identical answers.
            assert_eq!(
                batched.candidate_sites(&[TermId(term)]),
                looped.candidate_sites(&[TermId(term)]),
                "candidates for {term}"
            );
            assert_eq!(
                batched.query(UserId(1), &[TermId(term)], 30).ranked,
                looped.query(UserId(1), &[TermId(term)], 30).ranked,
                "ranked for {term}"
            );
        }
    }

    #[test]
    fn acl_still_applies_at_sites() {
        let mut muserv = MuServIndex::new(10, 0.01);
        muserv.insert(&doc(0, 0, &[7]));
        // No membership granted.
        let outcome = muserv.query(UserId(9), &[TermId(7)], 10);
        assert!(outcome.ranked.is_empty());
        assert!(
            outcome.candidate_sites >= 1,
            "site flagged but inaccessible"
        );
    }
}
