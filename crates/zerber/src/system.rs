//! The assembled Zerber deployment.

use std::collections::HashMap;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;

use zerber_client::{DocumentOwner, QueryClient, QueryOutcome, ServerHandle};
use zerber_core::merge::{MergeError, MergePlan};
use zerber_core::MappingTable;
use zerber_index::{CorpusStats, Document, GroupId, TermId, UserId};
use zerber_net::{NodeId, TrafficMeter};
use zerber_server::{IndexServer, ServerError, TokenAuth};

use crate::runtime::transport::Transport;
use zerber_shamir::{RefreshRound, ShamirError, SharingScheme};

use crate::config::{ConfigError, ZerberConfig};
use crate::runtime::{PeerRuntime, RuntimeHandle, ServerService};

/// Errors from deployment bootstrap or operation.
#[derive(Debug)]
pub enum SystemError {
    /// The configuration is structurally invalid.
    Config(ConfigError),
    /// The merging heuristic failed.
    Merge(MergeError),
    /// The sharing parameters were invalid.
    Sharing(ShamirError),
    /// An index server rejected a request.
    Server(ServerError),
}

impl std::fmt::Display for SystemError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SystemError::Config(e) => write!(f, "config error: {e}"),
            SystemError::Merge(e) => write!(f, "merge error: {e}"),
            SystemError::Sharing(e) => write!(f, "sharing error: {e}"),
            SystemError::Server(e) => write!(f, "server error: {e}"),
        }
    }
}

impl std::error::Error for SystemError {}

impl From<ConfigError> for SystemError {
    fn from(e: ConfigError) -> Self {
        SystemError::Config(e)
    }
}

impl From<MergeError> for SystemError {
    fn from(e: MergeError) -> Self {
        SystemError::Merge(e)
    }
}

impl From<ShamirError> for SystemError {
    fn from(e: ShamirError) -> Self {
        SystemError::Sharing(e)
    }
}

impl From<ServerError> for SystemError {
    fn from(e: ServerError) -> Self {
        SystemError::Server(e)
    }
}

/// User-id namespace for the per-group owner daemons (kept out of the
/// way of ordinary users).
const OWNER_USER_BASE: u32 = 0x4000_0000;

/// A complete simulated deployment.
///
/// Since the runtime refactor this is a genuinely *concurrent* system:
/// every index server runs on its own peer thread behind the
/// message-passing transport (`crate::runtime`), every data-plane call
/// crosses the wire format with per-link byte accounting, and query
/// clients fan their `k` fetches out in parallel. Administrative
/// operations — membership changes, proactive refresh, adversary
/// views — remain direct control-plane calls on the shared
/// [`IndexServer`] handles.
pub struct ZerberSystem {
    config: ZerberConfig,
    auth: Arc<TokenAuth>,
    servers: Vec<Arc<IndexServer>>,
    runtime: PeerRuntime,
    scheme: SharingScheme,
    table: Arc<MappingTable>,
    plan: MergePlan,
    owners: HashMap<GroupId, DocumentOwner>,
    owner_handles: HashMap<GroupId, Vec<Arc<dyn ServerHandle>>>,
    rng: StdRng,
}

impl ZerberSystem {
    /// Bootstraps a deployment: validates the configuration, runs the
    /// merging heuristic over the (learned) corpus statistics,
    /// provisions `n` servers with random public coordinates — each on
    /// its own peer thread — and publishes the mapping table.
    ///
    /// `stats` plays the role of the paper's learning prefix — "we
    /// learned the document frequency distribution from the first 30%
    /// of the documents" (Section 7.5); pass full-corpus statistics
    /// for an oracle variant.
    pub fn bootstrap(config: ZerberConfig, stats: &CorpusStats) -> Result<Self, SystemError> {
        config.validate()?;
        let mut rng = StdRng::seed_from_u64(config.seed);
        let plan = MergePlan::build(config.merge, stats, &mut rng)?;
        let table = Arc::new(plan.table().clone());
        let scheme = SharingScheme::random(config.threshold, config.servers, &mut rng)?;
        let auth = Arc::new(TokenAuth::new());
        let servers: Vec<Arc<IndexServer>> = scheme
            .coordinates()
            .iter()
            .enumerate()
            .map(|(i, &x)| Arc::new(IndexServer::new(i as u32, x, auth.clone())))
            .collect();
        let runtime = PeerRuntime::new(Arc::new(TrafficMeter::new()));
        for (i, server) in servers.iter().enumerate() {
            let server = server.clone();
            runtime.spawn_peer(NodeId::IndexServer(i as u32), move || {
                ServerService::new(server)
            });
        }
        Ok(Self {
            config,
            auth,
            servers,
            runtime,
            scheme,
            table,
            plan,
            owners: HashMap::new(),
            owner_handles: HashMap::new(),
            rng,
        })
    }

    /// The merge plan in force.
    pub fn plan(&self) -> &MergePlan {
        &self.plan
    }

    /// The public mapping table.
    pub fn table(&self) -> &MappingTable {
        &self.table
    }

    /// The sharing scheme's public parameters.
    pub fn scheme(&self) -> &SharingScheme {
        &self.scheme
    }

    /// The shared traffic meter.
    pub fn traffic(&self) -> &TrafficMeter {
        self.runtime.transport().meter()
    }

    /// Raw access to the index servers (for attack simulations: a
    /// compromised server is just `servers()[i].adversary_view()`).
    pub fn servers(&self) -> &[Arc<IndexServer>] {
        &self.servers
    }

    /// Grants a user membership of a group on every index server.
    pub fn add_membership(&self, user: UserId, group: GroupId) {
        for server in &self.servers {
            server.add_user_to_group(user, group);
        }
    }

    /// Revokes a membership everywhere; effective on the next query.
    pub fn remove_membership(&self, user: UserId, group: GroupId) {
        for server in &self.servers {
            server.remove_user_from_group(user, group);
        }
    }

    /// Indexes a document through its group's owner daemon (created on
    /// first use). Returns the number of posting elements produced.
    pub fn index_document(&mut self, doc: &Document) -> Result<usize, SystemError> {
        let group = doc.group;
        if !self.owners.contains_key(&group) {
            let owner_user = UserId(OWNER_USER_BASE + group.0);
            self.add_membership(owner_user, group);
            let token = self.auth.issue(owner_user);
            let owner = DocumentOwner::new(
                group.0,
                token,
                self.config.codec,
                self.scheme.clone(),
                self.table.clone(),
                self.config.batch,
            );
            let handles = self.handles_for(NodeId::Owner(group.0));
            self.owners.insert(group, owner);
            self.owner_handles.insert(group, handles);
        }
        let owner = self.owners.get_mut(&group).expect("just inserted");
        let handles = self.owner_handles.get(&group).expect("just inserted");
        Ok(owner.index_document(doc, handles, &mut self.rng)?)
    }

    /// Indexes a whole corpus; returns total elements produced.
    pub fn index_corpus(&mut self, docs: &[Document]) -> Result<usize, SystemError> {
        let mut total = 0;
        for doc in docs {
            total += self.index_document(doc)?;
        }
        self.flush_owners()?;
        Ok(total)
    }

    /// Flushes every owner's pending batches.
    pub fn flush_owners(&mut self) -> Result<(), SystemError> {
        for (group, owner) in self.owners.iter_mut() {
            let handles = &self.owner_handles[group];
            owner.flush(handles)?;
        }
        Ok(())
    }

    /// Deletes a document through its group's owner.
    pub fn delete_document(
        &mut self,
        group: GroupId,
        doc: zerber_index::DocId,
    ) -> Result<usize, SystemError> {
        let Some(owner) = self.owners.get_mut(&group) else {
            return Ok(0);
        };
        let handles = &self.owner_handles[&group];
        Ok(owner.delete_document(doc, handles)?)
    }

    /// Executes a keyword query as `user`, returning the top
    /// `k_results`.
    pub fn query(
        &self,
        user: UserId,
        terms: &[TermId],
        k_results: usize,
    ) -> Result<QueryOutcome, SystemError> {
        let token = self.auth.issue(user);
        let client = QueryClient::new(
            token,
            self.config.codec,
            self.table.clone(),
            self.config.threshold,
        );
        let handles = self.handles_for(NodeId::User(user.0));
        Ok(client.execute(terms, &handles, k_results)?)
    }

    /// Applies one proactive refresh round to every server (Section
    /// 5.1 / \[21\]).
    pub fn proactive_refresh(&mut self) {
        let round = RefreshRound::generate(&self.scheme, &mut self.rng);
        for server in &self.servers {
            server.apply_refresh(&round);
        }
    }

    /// Total posting elements on one server (identical across honest
    /// servers) — the Section 7.2 storage driver.
    pub fn elements_per_server(&self) -> usize {
        self.servers.first().map_or(0, |s| s.total_elements())
    }

    fn handles_for(&self, from: NodeId) -> Vec<Arc<dyn ServerHandle>> {
        let transport: Arc<dyn crate::runtime::Transport> = self.runtime.transport().clone();
        self.scheme
            .coordinates()
            .iter()
            .enumerate()
            .map(|(i, &coordinate)| {
                Arc::new(RuntimeHandle::new(
                    transport.clone(),
                    from,
                    NodeId::IndexServer(i as u32),
                    coordinate,
                )) as Arc<dyn ServerHandle>
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zerber_core::merge::MergeConfig;
    use zerber_index::DocId;

    fn stats() -> CorpusStats {
        let dfs: Vec<u64> = (1..=100u64).map(|r| 1 + 1_000 / r).collect();
        CorpusStats::from_document_frequencies(dfs)
    }

    fn doc(id: u32, group: u32, terms: &[(u32, u32)]) -> Document {
        Document::from_term_counts(
            DocId(id),
            GroupId(group),
            terms.iter().map(|&(t, c)| (TermId(t), c)).collect(),
        )
    }

    fn system() -> ZerberSystem {
        let config = ZerberConfig::default().with_merge(MergeConfig::dfm(8));
        ZerberSystem::bootstrap(config, &stats()).unwrap()
    }

    #[test]
    fn bootstrap_builds_n_servers() {
        let sys = system();
        assert_eq!(sys.servers().len(), 3);
        assert_eq!(sys.scheme().threshold(), 2);
        assert_eq!(sys.plan().list_count(), 8);
    }

    #[test]
    fn bootstrap_rejects_invalid_configs() {
        // A ring narrower than the sharing degree fails fast at
        // bootstrap instead of panicking deep in placement.
        let config = ZerberConfig::default().with_peers(1);
        match ZerberSystem::bootstrap(config, &stats()) {
            Err(SystemError::Config(crate::config::ConfigError::TooFewPeers {
                peers: 1,
                need: 3,
            })) => {}
            Err(other) => panic!("expected TooFewPeers, got {other:?}"),
            Ok(_) => panic!("expected TooFewPeers, got a running system"),
        }
    }

    #[test]
    fn concurrent_queries_share_the_system() {
        let mut sys = system();
        for user in 1..=4u32 {
            sys.add_membership(UserId(user), GroupId(0));
        }
        sys.index_document(&doc(1, 0, &[(5, 2), (7, 1)])).unwrap();
        sys.index_document(&doc(2, 0, &[(5, 1)])).unwrap();
        std::thread::scope(|scope| {
            for user in 1..=4u32 {
                let sys = &sys;
                scope.spawn(move || {
                    for _ in 0..5 {
                        let outcome = sys.query(UserId(user), &[TermId(5)], 10).unwrap();
                        assert_eq!(outcome.ranked.len(), 2);
                    }
                });
            }
        });
    }

    #[test]
    fn end_to_end_index_and_query() {
        let mut sys = system();
        sys.add_membership(UserId(1), GroupId(0));
        sys.index_document(&doc(1, 0, &[(5, 2), (7, 1)])).unwrap();
        sys.index_document(&doc(2, 0, &[(5, 1)])).unwrap();
        let outcome = sys.query(UserId(1), &[TermId(5)], 10).unwrap();
        assert_eq!(outcome.ranked.len(), 2);
        assert!(sys.traffic().total() > 0);
    }

    #[test]
    fn acl_and_revocation_work_through_the_facade() {
        let mut sys = system();
        sys.add_membership(UserId(1), GroupId(0));
        sys.index_document(&doc(1, 0, &[(5, 1)])).unwrap();
        assert_eq!(
            sys.query(UserId(1), &[TermId(5)], 10).unwrap().ranked.len(),
            1
        );
        sys.remove_membership(UserId(1), GroupId(0));
        assert_eq!(
            sys.query(UserId(1), &[TermId(5)], 10).unwrap().ranked.len(),
            0
        );
    }

    #[test]
    fn deletion_removes_results() {
        let mut sys = system();
        sys.add_membership(UserId(1), GroupId(0));
        sys.index_document(&doc(1, 0, &[(5, 1), (6, 1)])).unwrap();
        let removed = sys.delete_document(GroupId(0), DocId(1)).unwrap();
        assert_eq!(removed, 2);
        assert!(sys
            .query(UserId(1), &[TermId(5)], 10)
            .unwrap()
            .ranked
            .is_empty());
        assert_eq!(sys.elements_per_server(), 0);
    }

    #[test]
    fn storage_is_replicated_on_every_server() {
        let mut sys = system();
        sys.add_membership(UserId(1), GroupId(0));
        sys.index_document(&doc(1, 0, &[(5, 1), (6, 1), (7, 1)]))
            .unwrap();
        for server in sys.servers() {
            assert_eq!(server.total_elements(), 3);
        }
    }

    #[test]
    fn proactive_refresh_keeps_queries_working() {
        let mut sys = system();
        sys.add_membership(UserId(1), GroupId(0));
        sys.index_document(&doc(1, 0, &[(5, 2)])).unwrap();
        sys.proactive_refresh();
        let outcome = sys.query(UserId(1), &[TermId(5)], 10).unwrap();
        assert_eq!(outcome.ranked.len(), 1, "refresh must not break decryption");
    }

    #[test]
    fn queries_from_different_groups_are_isolated() {
        let mut sys = system();
        sys.add_membership(UserId(1), GroupId(0));
        sys.add_membership(UserId(2), GroupId(1));
        sys.index_document(&doc(1, 0, &[(5, 1)])).unwrap();
        sys.index_document(&doc(2, 1, &[(5, 1)])).unwrap();
        let u1 = sys.query(UserId(1), &[TermId(5)], 10).unwrap();
        assert_eq!(u1.ranked.len(), 1);
        assert_eq!(u1.ranked[0].doc, DocId(1));
        let u2 = sys.query(UserId(2), &[TermId(5)], 10).unwrap();
        assert_eq!(u2.ranked.len(), 1);
        assert_eq!(u2.ranked[0].doc, DocId(2));
    }
}
