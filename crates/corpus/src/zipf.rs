//! Zipf sampling and small distribution helpers.
//!
//! "The document frequency distribution in real documents is usually
//! Zipfian" (Section 6, Figure 7) — every generator in this crate
//! bottoms out in this sampler. Implemented via a precomputed
//! cumulative table with binary search (O(n) memory, O(log n) per
//! sample) to stay dependency-free.

use rand::Rng;

/// Samples ranks `0..n` with probability proportional to
/// `1 / (rank + 1)^s`.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cumulative: Vec<f64>,
    total: f64,
}

impl ZipfSampler {
    /// Builds a sampler over `n` ranks with exponent `s`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `s` is not finite and non-negative.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(
            s.is_finite() && s >= 0.0,
            "exponent must be finite and >= 0"
        );
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0f64;
        for rank in 0..n {
            total += 1.0 / ((rank + 1) as f64).powf(s);
            cumulative.push(total);
        }
        Self { cumulative, total }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// True iff the sampler has a single rank.
    pub fn is_empty(&self) -> bool {
        false // guaranteed non-empty by construction
    }

    /// Probability of one rank.
    pub fn probability(&self, rank: usize) -> f64 {
        let hi = self.cumulative[rank];
        let lo = if rank == 0 {
            0.0
        } else {
            self.cumulative[rank - 1]
        };
        (hi - lo) / self.total
    }

    /// Draws one rank.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let needle = rng.random::<f64>() * self.total;
        // partition_point returns the first index with cumulative >
        // needle, i.e. the sampled rank.
        self.cumulative
            .partition_point(|&c| c <= needle)
            .min(self.cumulative.len() - 1)
    }
}

/// One standard-normal draw via Box–Muller (keeps `rand_distr` out of
/// the dependency set).
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1 = rng.random::<f64>();
        let u2 = rng.random::<f64>();
        if u1 > f64::MIN_POSITIVE {
            return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        }
    }
}

/// One Poisson draw (Knuth's method; fine for the small λ used for
/// query lengths).
pub fn poisson<R: Rng + ?Sized>(lambda: f64, rng: &mut R) -> u32 {
    assert!(lambda >= 0.0, "Poisson rate must be non-negative");
    let limit = (-lambda).exp();
    let mut k = 0u32;
    let mut product = 1.0f64;
    loop {
        product *= rng.random::<f64>();
        if product <= limit {
            return k;
        }
        k += 1;
        if k > 10_000 {
            return k; // defensive bound; unreachable for sane λ
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn probabilities_sum_to_one() {
        let sampler = ZipfSampler::new(100, 1.0);
        let sum: f64 = (0..100).map(|r| sampler.probability(r)).sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rank_zero_is_most_likely() {
        let sampler = ZipfSampler::new(50, 1.2);
        for rank in 1..50 {
            assert!(sampler.probability(0) >= sampler.probability(rank));
        }
    }

    #[test]
    fn exponent_zero_is_uniform() {
        let sampler = ZipfSampler::new(10, 0.0);
        for rank in 0..10 {
            assert!((sampler.probability(rank) - 0.1).abs() < 1e-9);
        }
    }

    #[test]
    fn empirical_frequencies_match_theory() {
        let sampler = ZipfSampler::new(20, 1.0);
        let mut rng = StdRng::seed_from_u64(77);
        let mut counts = [0usize; 20];
        let draws = 200_000;
        for _ in 0..draws {
            counts[sampler.sample(&mut rng)] += 1;
        }
        for (rank, &count) in counts.iter().enumerate() {
            let observed = count as f64 / draws as f64;
            let expected = sampler.probability(rank);
            assert!(
                (observed - expected).abs() < 0.01,
                "rank {rank}: {observed} vs {expected}"
            );
        }
    }

    #[test]
    fn samples_stay_in_range() {
        let sampler = ZipfSampler::new(5, 2.0);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            assert!(sampler.sample(&mut rng) < 5);
        }
    }

    #[test]
    fn single_rank_always_samples_zero() {
        let sampler = ZipfSampler::new(1, 1.0);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            assert_eq!(sampler.sample(&mut rng), 0);
        }
    }

    #[test]
    fn normal_has_zero_mean_unit_variance() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let draws: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean: f64 = draws.iter().sum::<f64>() / n as f64;
        let variance: f64 = draws.iter().map(|d| (d - mean) * (d - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((variance - 1.0).abs() < 0.05, "variance {variance}");
    }

    #[test]
    fn poisson_mean_matches_lambda() {
        let mut rng = StdRng::seed_from_u64(4);
        let lambda = 1.45;
        let n = 100_000;
        let total: u64 = (0..n).map(|_| poisson(lambda, &mut rng) as u64).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - lambda).abs() < 0.03, "mean {mean}");
    }

    #[test]
    fn poisson_zero_lambda_is_zero() {
        let mut rng = StdRng::seed_from_u64(5);
        assert_eq!(poisson(0.0, &mut rng), 0);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn empty_sampler_panics() {
        let _ = ZipfSampler::new(0, 1.0);
    }
}
