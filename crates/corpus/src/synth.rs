//! The generic Zipfian document generator.
//!
//! Documents draw their tokens from a Zipf-distributed vocabulary, so
//! the resulting *document frequencies* follow the heavy-tailed shape
//! of the paper's Figure 7. Document lengths are log-normal around a
//! configurable mean — short emails to long reports, as in the
//! enterprise scenarios of Section 2.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use zerber_index::{DocId, Document, GroupId, TermId};

use crate::zipf::{standard_normal, ZipfSampler};

/// Parameters of the generic generator.
#[derive(Debug, Clone)]
pub struct CorpusConfig {
    /// Number of documents to generate.
    pub num_docs: usize,
    /// Vocabulary size (number of candidate distinct terms).
    pub vocabulary_size: usize,
    /// Zipf exponent of term popularity (≈1 for natural text).
    pub zipf_exponent: f64,
    /// Mean document length in tokens.
    pub avg_doc_length: usize,
    /// Log-normal spread of document lengths (σ of the underlying
    /// normal; 0 = constant length).
    pub doc_length_sigma: f64,
    /// Number of collaboration groups; documents are assigned
    /// round-robin unless a profile overrides this.
    pub num_groups: u32,
    /// RNG seed — generation is fully deterministic given the config.
    pub seed: u64,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        Self {
            num_docs: 1_000,
            vocabulary_size: 20_000,
            zipf_exponent: 1.0,
            avg_doc_length: 200,
            doc_length_sigma: 0.5,
            num_groups: 10,
            seed: 42,
        }
    }
}

/// A generated corpus.
#[derive(Debug, Clone)]
pub struct SyntheticCorpus {
    /// The processed documents (term ids with counts).
    pub documents: Vec<Document>,
    /// Number of groups documents were spread over.
    pub num_groups: u32,
    /// Size of the vocabulary the generator drew from (actual distinct
    /// terms used may be smaller).
    pub vocabulary_size: usize,
}

impl SyntheticCorpus {
    /// Generates a corpus from the configuration.
    pub fn generate(config: &CorpusConfig) -> Self {
        assert!(config.num_docs > 0, "corpus needs documents");
        assert!(config.num_groups > 0, "corpus needs groups");
        let mut rng = StdRng::seed_from_u64(config.seed);
        let sampler = ZipfSampler::new(config.vocabulary_size, config.zipf_exponent);
        let mut documents = Vec::with_capacity(config.num_docs);
        let mut per_host_sequence = [0u32; DOC_HOST_SLOTS];
        for i in 0..config.num_docs {
            let group = GroupId(i as u32 % config.num_groups);
            let host = doc_host(group) as usize;
            let doc_id = doc_id_for(group, per_host_sequence[host]);
            per_host_sequence[host] += 1;
            documents.push(generate_document(
                doc_id,
                group,
                &sampler,
                config.avg_doc_length,
                config.doc_length_sigma,
                &mut rng,
            ));
        }
        Self {
            documents,
            num_groups: config.num_groups,
            vocabulary_size: config.vocabulary_size,
        }
    }

    /// Builds an inverted index over the whole corpus (bulk path: one
    /// sort per posting list instead of per-document inserts).
    pub fn build_index(&self) -> zerber_index::InvertedIndex {
        zerber_index::InvertedIndex::from_documents(&self.documents)
    }

    /// Per-term document frequencies (term-id indexed, over the full
    /// vocabulary size).
    pub fn document_frequencies(&self) -> Vec<u64> {
        let mut dfs = vec![0u64; self.vocabulary_size];
        for doc in &self.documents {
            for &(term, _) in &doc.terms {
                if let Some(slot) = dfs.get_mut(term.0 as usize) {
                    *slot += 1;
                }
            }
        }
        dfs
    }

    /// Corpus statistics (formula (2) probabilities).
    pub fn statistics(&self) -> zerber_index::CorpusStats {
        zerber_index::CorpusStats::from_document_frequencies(self.document_frequencies())
    }
}

/// Number of distinct host slots in the document id scheme: the
/// default wire codec packs a document id into 26 bits (6-bit host +
/// 20-bit local number), so generators must wrap group ids into this
/// space.
pub const DOC_HOST_SLOTS: usize = 1 << 6;

/// The host a group's documents live on (host id = group id, wrapped
/// into the 6-bit host space the default wire codec can carry).
pub fn doc_host(group: GroupId) -> u16 {
    (group.0 as usize % DOC_HOST_SLOTS) as u16
}

/// Derives the document id hosting scheme: each group's documents live
/// on that group's machine (host id = group id, wrapped per
/// [`doc_host`]).
///
/// Because groups 64 apart share a host slot, `sequence` numbers must
/// be allocated **per host** (not per group) or ids collide — the
/// generators in this crate all keep a `DOC_HOST_SLOTS`-sized counter
/// array indexed by [`doc_host`] for exactly this reason.
pub fn doc_id_for(group: GroupId, sequence: u32) -> DocId {
    DocId::from_parts(doc_host(group), sequence)
}

/// Generates a single document with Zipf-drawn tokens.
pub fn generate_document<R: Rng + ?Sized>(
    id: DocId,
    group: GroupId,
    sampler: &ZipfSampler,
    avg_len: usize,
    sigma: f64,
    rng: &mut R,
) -> Document {
    let length = sample_length(avg_len, sigma, rng);
    let mut counts: std::collections::HashMap<TermId, u32> = std::collections::HashMap::new();
    for _ in 0..length {
        let term = TermId(sampler.sample(rng) as u32);
        *counts.entry(term).or_insert(0) += 1;
    }
    Document::from_term_counts(id, group, counts.into_iter().collect())
}

/// Log-normal document length with mean `avg_len`, at least 1 token.
pub fn sample_length<R: Rng + ?Sized>(avg_len: usize, sigma: f64, rng: &mut R) -> usize {
    if sigma <= 0.0 {
        return avg_len.max(1);
    }
    // E[exp(N(μ, σ²))] = exp(μ + σ²/2); solve μ so the mean is avg_len.
    let mu = (avg_len as f64).ln() - sigma * sigma / 2.0;
    let length = (mu + sigma * standard_normal(rng)).exp().round() as usize;
    length.max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> CorpusConfig {
        CorpusConfig {
            num_docs: 300,
            vocabulary_size: 2_000,
            zipf_exponent: 1.0,
            avg_doc_length: 120,
            doc_length_sigma: 0.4,
            num_groups: 5,
            seed: 7,
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = SyntheticCorpus::generate(&small_config());
        let b = SyntheticCorpus::generate(&small_config());
        assert_eq!(a.documents, b.documents);
    }

    #[test]
    fn different_seeds_differ() {
        let mut config = small_config();
        let a = SyntheticCorpus::generate(&config);
        config.seed = 8;
        let b = SyntheticCorpus::generate(&config);
        assert_ne!(a.documents, b.documents);
    }

    #[test]
    fn groups_are_covered() {
        let corpus = SyntheticCorpus::generate(&small_config());
        let mut seen = std::collections::HashSet::new();
        for doc in &corpus.documents {
            seen.insert(doc.group);
        }
        assert_eq!(seen.len(), 5);
    }

    #[test]
    fn mean_length_is_close_to_target() {
        let corpus = SyntheticCorpus::generate(&small_config());
        let mean: f64 = corpus
            .documents
            .iter()
            .map(|d| d.length as f64)
            .sum::<f64>()
            / corpus.documents.len() as f64;
        assert!((mean - 120.0).abs() < 25.0, "mean length {mean}");
    }

    #[test]
    fn document_frequencies_are_zipfian() {
        let corpus = SyntheticCorpus::generate(&CorpusConfig {
            num_docs: 800,
            vocabulary_size: 5_000,
            ..small_config()
        });
        let stats = corpus.statistics();
        let s = stats.zipf_exponent_estimate().expect("enough data");
        // Document-frequency Zipf slope is damped relative to the
        // token-level exponent (head terms saturate at DF = num_docs),
        // but must remain clearly heavy-tailed.
        assert!(s > 0.4 && s < 1.6, "estimated exponent {s}");
    }

    #[test]
    fn doc_ids_encode_group_hosts() {
        let corpus = SyntheticCorpus::generate(&small_config());
        for doc in &corpus.documents {
            assert_eq!(doc.id.host() as u32, doc.group.0 % (1 << 6));
        }
    }

    #[test]
    fn zero_sigma_gives_constant_length() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10 {
            assert_eq!(sample_length(50, 0.0, &mut rng), 50);
        }
    }

    #[test]
    fn statistics_match_index_statistics() {
        let corpus = SyntheticCorpus::generate(&small_config());
        let via_corpus = corpus.statistics();
        let via_index = corpus.build_index().statistics();
        for t in 0..200u32 {
            assert_eq!(
                via_corpus.document_frequency(TermId(t)),
                via_index.document_frequency(TermId(t)),
                "term {t}"
            );
        }
    }
}
