//! User ↔ group membership generation.
//!
//! Section 2: "As each person can only accomplish a certain amount of
//! work, in practice she will belong to a limited number of
//! collaboration groups." Section 7.4.1 (Figure 5): "Most users belong
//! to at most 20 groups and can access fewer than 200 documents."

use std::collections::{HashMap, HashSet};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use zerber_index::{GroupId, UserId};

use crate::zipf::ZipfSampler;

/// A bidirectional user ↔ group membership relation.
#[derive(Debug, Clone, Default)]
pub struct GroupAssignments {
    user_groups: HashMap<UserId, HashSet<GroupId>>,
    group_users: HashMap<GroupId, HashSet<UserId>>,
}

impl GroupAssignments {
    /// An empty relation.
    pub fn new() -> Self {
        Self::default()
    }

    /// Randomly assigns `num_users` users to `num_groups` groups.
    ///
    /// Each user joins between 1 and `max_groups_per_user` groups; the
    /// per-user group count and the chosen groups are Zipf-skewed so a
    /// few groups (large courses / popular projects) end up big, as in
    /// Figure 5c.
    pub fn generate(num_users: u32, num_groups: u32, max_groups_per_user: u32, seed: u64) -> Self {
        assert!(num_groups > 0 && num_users > 0, "need users and groups");
        assert!(max_groups_per_user >= 1, "users join at least one group");
        let mut rng = StdRng::seed_from_u64(seed);
        let group_popularity = ZipfSampler::new(num_groups as usize, 0.8);
        let membership_count = ZipfSampler::new(max_groups_per_user as usize, 1.6);
        let mut assignments = Self::new();
        for user in 0..num_users {
            let count = membership_count.sample(&mut rng) + 1;
            let mut joined = HashSet::new();
            let mut attempts = 0;
            while joined.len() < count && attempts < count * 20 {
                joined.insert(GroupId(group_popularity.sample(&mut rng) as u32));
                attempts += 1;
            }
            // Guarantee at least one membership even under collisions.
            if joined.is_empty() {
                joined.insert(GroupId(rng.random_range(0..num_groups)));
            }
            for group in joined {
                assignments.add(UserId(user), group);
            }
        }
        assignments
    }

    /// Adds one membership.
    pub fn add(&mut self, user: UserId, group: GroupId) {
        self.user_groups.entry(user).or_default().insert(group);
        self.group_users.entry(group).or_default().insert(user);
    }

    /// Removes one membership; returns true iff it existed.
    pub fn remove(&mut self, user: UserId, group: GroupId) -> bool {
        let removed = self
            .user_groups
            .get_mut(&user)
            .is_some_and(|g| g.remove(&group));
        if removed {
            if let Some(users) = self.group_users.get_mut(&group) {
                users.remove(&user);
            }
        }
        removed
    }

    /// Groups of a user.
    pub fn groups_of(&self, user: UserId) -> impl Iterator<Item = GroupId> + '_ {
        self.user_groups
            .get(&user)
            .into_iter()
            .flat_map(|set| set.iter().copied())
    }

    /// Users of a group.
    pub fn users_of(&self, group: GroupId) -> impl Iterator<Item = UserId> + '_ {
        self.group_users
            .get(&group)
            .into_iter()
            .flat_map(|set| set.iter().copied())
    }

    /// Whether a user belongs to a group.
    pub fn is_member(&self, user: UserId, group: GroupId) -> bool {
        self.user_groups
            .get(&user)
            .is_some_and(|set| set.contains(&group))
    }

    /// All users with at least one membership.
    pub fn users(&self) -> impl Iterator<Item = UserId> + '_ {
        self.user_groups.keys().copied()
    }

    /// All groups with at least one member.
    pub fn groups(&self) -> impl Iterator<Item = GroupId> + '_ {
        self.group_users.keys().copied()
    }

    /// Distribution of group sizes (users per group) — Figure 5c.
    pub fn users_per_group(&self) -> Vec<usize> {
        let mut sizes: Vec<usize> = self.group_users.values().map(HashSet::len).collect();
        sizes.sort_unstable_by(|a, b| b.cmp(a));
        sizes
    }

    /// Distribution of memberships per user.
    pub fn groups_per_user(&self) -> Vec<usize> {
        let mut sizes: Vec<usize> = self.user_groups.values().map(HashSet::len).collect();
        sizes.sort_unstable_by(|a, b| b.cmp(a));
        sizes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_remove_round_trip() {
        let mut assignments = GroupAssignments::new();
        assignments.add(UserId(1), GroupId(2));
        assert!(assignments.is_member(UserId(1), GroupId(2)));
        assert!(assignments.remove(UserId(1), GroupId(2)));
        assert!(!assignments.is_member(UserId(1), GroupId(2)));
        assert!(!assignments.remove(UserId(1), GroupId(2)));
    }

    #[test]
    fn generated_users_all_have_memberships() {
        let assignments = GroupAssignments::generate(500, 40, 20, 9);
        for user in 0..500 {
            assert!(
                assignments.groups_of(UserId(user)).count() >= 1,
                "user {user} has no groups"
            );
        }
    }

    #[test]
    fn membership_counts_respect_bound() {
        let assignments = GroupAssignments::generate(500, 40, 20, 10);
        for user in 0..500 {
            let count = assignments.groups_of(UserId(user)).count();
            assert!(count <= 20, "user {user} in {count} groups");
        }
    }

    #[test]
    fn most_users_in_few_groups() {
        // Figure 5: the membership distribution is heavily skewed
        // towards 1-2 groups.
        let assignments = GroupAssignments::generate(2_000, 40, 20, 11);
        let single = (0..2_000u32)
            .filter(|&u| assignments.groups_of(UserId(u)).count() <= 2)
            .count();
        assert!(single > 1_200, "only {single} users in <= 2 groups");
    }

    #[test]
    fn group_sizes_are_skewed() {
        let assignments = GroupAssignments::generate(2_000, 40, 20, 12);
        let sizes = assignments.users_per_group();
        assert!(sizes[0] > sizes[sizes.len() - 1] * 3, "sizes {sizes:?}");
    }

    #[test]
    fn bidirectional_views_agree() {
        let assignments = GroupAssignments::generate(100, 10, 5, 13);
        for user in assignments.users() {
            for group in assignments.groups_of(user) {
                assert!(assignments.users_of(group).any(|u| u == user));
            }
        }
    }
}
