//! The Stud-IP-like corpus profile (Section 7.4.1, Figure 5).
//!
//! "The Stud IP Learning Management System allows sharing of
//! access-controlled materials within groups of students and teachers.
//! … the installation at 'University 1' has over 3,300 courses and
//! 6,000 registered students. Most users belong to at most 20 groups
//! and can access fewer than 200 documents. The amount of material
//! stored for each course increases uniformly during the semester
//! (Figure 5b). A mid-semester snapshot used for our experiments
//! contained 8,500 documents with 570,000 terms."
//!
//! The generator reproduces all four Figure 5 distributions: skewed
//! documents-per-group (5a), uniform-in-time uploads (5b), skewed
//! users-per-group (5c) and the induced documents-accessible-per-user
//! (5d).

use rand::rngs::StdRng;
use rand::SeedableRng;

use zerber_index::{Document, GroupId, TermId, UserId};

use crate::groups::GroupAssignments;
use crate::synth::{doc_id_for, sample_length};
use crate::zipf::ZipfSampler;

/// Stud-IP-profile parameters. Defaults approximate the paper's
/// mid-semester snapshot at reduced vocabulary scale.
#[derive(Debug, Clone)]
pub struct StudipConfig {
    /// Number of courses (collaboration groups).
    pub num_courses: u32,
    /// Number of registered users.
    pub num_users: u32,
    /// Total documents in the snapshot (paper: 8,500).
    pub num_docs: usize,
    /// Vocabulary size (paper: 570,000 distinct terms; default scaled).
    pub vocabulary_size: usize,
    /// Zipf exponent of term popularity.
    pub zipf_exponent: f64,
    /// Zipf exponent of documents-per-course skew (Figure 5a).
    pub course_size_exponent: f64,
    /// Mean document length in tokens.
    pub avg_doc_length: usize,
    /// Log-normal length spread.
    pub doc_length_sigma: f64,
    /// Maximum groups per user (paper: "most users belong to at most
    /// 20 groups").
    pub max_groups_per_user: u32,
    /// Semester length in days (for the Figure 5b upload timeline).
    pub semester_days: u32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for StudipConfig {
    fn default() -> Self {
        Self {
            num_courses: 300,
            num_users: 1_500,
            num_docs: 8_500,
            vocabulary_size: 60_000,
            zipf_exponent: 1.0,
            course_size_exponent: 1.0,
            avg_doc_length: 150,
            doc_length_sigma: 0.6,
            max_groups_per_user: 20,
            semester_days: 120,
            seed: 5,
        }
    }
}

impl StudipConfig {
    /// A deliberately small configuration for unit tests.
    pub fn tiny() -> Self {
        Self {
            num_courses: 20,
            num_users: 100,
            num_docs: 300,
            vocabulary_size: 4_000,
            avg_doc_length: 60,
            ..Self::default()
        }
    }
}

/// A generated Stud-IP-like dataset: documents with upload timestamps
/// plus the user-group relation.
#[derive(Debug, Clone)]
pub struct StudipData {
    /// The documents; `doc.group` is the course.
    pub documents: Vec<Document>,
    /// Upload day of each document (parallel to `documents`),
    /// uniform over the semester (Figure 5b).
    pub upload_day: Vec<u32>,
    /// User ↔ course memberships.
    pub memberships: GroupAssignments,
    /// Number of courses.
    pub num_courses: u32,
    /// Vocabulary size the generator drew from.
    pub vocabulary_size: usize,
}

impl StudipData {
    /// Generates the dataset.
    pub fn generate(config: &StudipConfig) -> Self {
        assert!(config.num_courses > 0, "need at least one course");
        let mut rng = StdRng::seed_from_u64(config.seed);
        let vocabulary = ZipfSampler::new(config.vocabulary_size, config.zipf_exponent);
        let course_popularity =
            ZipfSampler::new(config.num_courses as usize, config.course_size_exponent);

        let mut documents = Vec::with_capacity(config.num_docs);
        let mut upload_day = Vec::with_capacity(config.num_docs);
        // Per-host (not per-course) sequence counters: courses 64
        // apart share a host slot (see `doc_host`), so per-course
        // counters would collide once `num_courses > 64`.
        let mut per_host_sequence = [0u32; crate::synth::DOC_HOST_SLOTS];
        for _ in 0..config.num_docs {
            let course = course_popularity.sample(&mut rng) as u32;
            let group = GroupId(course);
            let host = crate::synth::doc_host(group) as usize;
            let sequence = per_host_sequence[host];
            per_host_sequence[host] += 1;
            let length = sample_length(config.avg_doc_length, config.doc_length_sigma, &mut rng);
            let mut counts: std::collections::HashMap<TermId, u32> =
                std::collections::HashMap::new();
            for _ in 0..length {
                let term = TermId(vocabulary.sample(&mut rng) as u32);
                *counts.entry(term).or_insert(0) += 1;
            }
            documents.push(Document::from_term_counts(
                doc_id_for(group, sequence),
                group,
                counts.into_iter().collect(),
            ));
            // Figure 5b: uploads uniform across the semester.
            upload_day.push(rand::Rng::random_range(&mut rng, 0..config.semester_days));
        }

        let memberships = GroupAssignments::generate(
            config.num_users,
            config.num_courses,
            config.max_groups_per_user,
            config.seed.wrapping_add(1),
        );

        Self {
            documents,
            upload_day,
            memberships,
            num_courses: config.num_courses,
            vocabulary_size: config.vocabulary_size,
        }
    }

    /// Documents per course, descending — Figure 5a.
    pub fn documents_per_group(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.num_courses as usize];
        for doc in &self.documents {
            counts[doc.group.0 as usize] += 1;
        }
        counts.sort_unstable_by(|a, b| b.cmp(a));
        counts
    }

    /// Cumulative uploads per day — Figure 5b (should grow linearly).
    pub fn cumulative_uploads(&self, semester_days: u32) -> Vec<usize> {
        let mut per_day = vec![0usize; semester_days as usize];
        for &day in &self.upload_day {
            if let Some(slot) = per_day.get_mut(day as usize) {
                *slot += 1;
            }
        }
        let mut cumulative = Vec::with_capacity(per_day.len());
        let mut total = 0usize;
        for count in per_day {
            total += count;
            cumulative.push(total);
        }
        cumulative
    }

    /// Users per group, descending — Figure 5c.
    pub fn users_per_group(&self) -> Vec<usize> {
        self.memberships.users_per_group()
    }

    /// Documents accessible per user, descending — Figure 5d.
    pub fn documents_accessible_per_user(&self) -> Vec<usize> {
        let mut docs_per_group = vec![0usize; self.num_courses as usize];
        for doc in &self.documents {
            docs_per_group[doc.group.0 as usize] += 1;
        }
        let mut accessible: Vec<usize> = self
            .memberships
            .users()
            .map(|user| {
                self.memberships
                    .groups_of(user)
                    .map(|g| docs_per_group[g.0 as usize])
                    .sum()
            })
            .collect();
        accessible.sort_unstable_by(|a, b| b.cmp(a));
        accessible
    }

    /// Corpus statistics over the full snapshot.
    pub fn statistics(&self) -> zerber_index::CorpusStats {
        let mut dfs = vec![0u64; self.vocabulary_size];
        for doc in &self.documents {
            for &(term, _) in &doc.terms {
                if let Some(slot) = dfs.get_mut(term.0 as usize) {
                    *slot += 1;
                }
            }
        }
        zerber_index::CorpusStats::from_document_frequencies(dfs)
    }

    /// The users that may read a document (members of its group).
    pub fn readers_of(&self, doc_index: usize) -> Vec<UserId> {
        let group = self.documents[doc_index].group;
        self.memberships.users_of(group).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Regression: per-course sequence counters used to collide for
    /// courses 64 apart (which share a 6-bit host slot), duplicating
    /// document ids at the default 300-course scale.
    #[test]
    fn document_ids_are_unique_above_64_courses() {
        let data = StudipData::generate(&StudipConfig {
            num_docs: 2_000,
            num_courses: 300,
            ..StudipConfig::tiny()
        });
        let mut ids: Vec<u32> = data.documents.iter().map(|d| d.id.0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), data.documents.len());
    }

    #[test]
    fn document_count_matches_config() {
        let data = StudipData::generate(&StudipConfig::tiny());
        assert_eq!(data.documents.len(), 300);
        assert_eq!(data.upload_day.len(), 300);
    }

    #[test]
    fn docs_per_group_is_skewed() {
        let data = StudipData::generate(&StudipConfig::tiny());
        let counts = data.documents_per_group();
        assert!(counts[0] >= 3 * counts[counts.len() / 2].max(1));
    }

    #[test]
    fn uploads_grow_roughly_linearly() {
        let config = StudipConfig {
            num_docs: 3_000,
            ..StudipConfig::tiny()
        };
        let data = StudipData::generate(&config);
        let cumulative = data.cumulative_uploads(config.semester_days);
        let mid = cumulative[cumulative.len() / 2] as f64;
        let total = *cumulative.last().unwrap() as f64;
        assert_eq!(total as usize, 3_000);
        assert!(
            (mid / total - 0.5).abs() < 0.1,
            "mid-semester fraction {}",
            mid / total
        );
    }

    #[test]
    fn most_users_access_bounded_documents() {
        // Figure 5d: "most users … can access fewer than 200
        // documents" — at tiny() scale (300 docs) the analogous bound
        // is that the median user accesses well under half the corpus.
        let data = StudipData::generate(&StudipConfig::tiny());
        let accessible = data.documents_accessible_per_user();
        let median = accessible[accessible.len() / 2];
        assert!(median < 150, "median accessible {median}");
    }

    #[test]
    fn readers_are_group_members() {
        let data = StudipData::generate(&StudipConfig::tiny());
        let readers = data.readers_of(0);
        let group = data.documents[0].group;
        for user in readers {
            assert!(data.memberships.is_member(user, group));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = StudipData::generate(&StudipConfig::tiny());
        let b = StudipData::generate(&StudipConfig::tiny());
        assert_eq!(a.documents, b.documents);
        assert_eq!(a.upload_day, b.upload_day);
    }
}
