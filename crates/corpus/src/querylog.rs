//! Web-search query-log generation (Section 7.4.3, Figure 6).
//!
//! "Our query log has 7 million queries and 135,000 distinct query
//! terms. … The most frequent queries constitute nearly the whole
//! query workload. … confidentiality concerns require us to base
//! merging decisions on document frequencies rather than query
//! frequencies. These are correlated, though some frequent terms are
//! rarely queried (e.g., 'although')."
//!
//! The generator draws query terms from a Zipf distribution over a
//! *noisily reordered* document-frequency ranking: with `rank_noise =
//! 0` the query ranking equals the DF ranking; larger values shuffle
//! ranks (log-normally) so that some high-DF terms are rarely queried,
//! exactly the 'although' effect.

use rand::rngs::StdRng;
use rand::SeedableRng;

use zerber_index::cost::QueryWorkload;
use zerber_index::{CorpusStats, TermId};

use crate::zipf::{standard_normal, ZipfSampler};

/// Query-log generator parameters.
#[derive(Debug, Clone)]
pub struct QueryLogConfig {
    /// Number of queries to generate (paper: 7,000,000; default
    /// scaled).
    pub num_queries: usize,
    /// Number of distinct candidate query terms, taken from the head
    /// of the (noisy) document-frequency ranking (paper: 135,000).
    pub distinct_terms: usize,
    /// Mean number of terms per query (paper: 2.45).
    pub mean_terms_per_query: f64,
    /// Zipf exponent of query-term popularity.
    pub zipf_exponent: f64,
    /// Log-normal σ of the DF-rank → QF-rank perturbation; 0 keeps the
    /// rankings identical.
    pub rank_noise: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for QueryLogConfig {
    fn default() -> Self {
        Self {
            num_queries: 100_000,
            distinct_terms: 20_000,
            mean_terms_per_query: 2.45,
            zipf_exponent: 0.9,
            rank_noise: 0.8,
            seed: 1997,
        }
    }
}

impl QueryLogConfig {
    /// A deliberately small configuration for unit tests.
    pub fn tiny() -> Self {
        Self {
            num_queries: 2_000,
            distinct_terms: 500,
            ..Self::default()
        }
    }
}

/// A generated query log.
#[derive(Debug, Clone)]
pub struct QueryLog {
    /// The queries, each a set of distinct term ids.
    pub queries: Vec<Vec<TermId>>,
    /// Size of the term-id space the workload vector must cover.
    vocabulary_size: usize,
}

impl QueryLog {
    /// Generates a log against corpus statistics: query-term popularity
    /// follows a Zipf over the noisy DF ranking.
    pub fn generate(config: &QueryLogConfig, stats: &CorpusStats) -> Self {
        assert!(config.mean_terms_per_query >= 1.0, "queries have >= 1 term");
        let mut rng = StdRng::seed_from_u64(config.seed);

        // Noisily reorder the DF ranking: each term's query rank is its
        // DF rank times a log-normal factor.
        let df_ranking = stats.terms_by_descending_frequency();
        let candidates: Vec<TermId> = df_ranking
            .into_iter()
            .filter(|&t| stats.probability(t) > 0.0)
            .collect();
        let mut keyed: Vec<(f64, TermId)> = candidates
            .iter()
            .enumerate()
            .map(|(df_rank, &term)| {
                let noise = (config.rank_noise * standard_normal(&mut rng)).exp();
                ((df_rank as f64 + 1.0) * noise, term)
            })
            .collect();
        keyed.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        let query_terms: Vec<TermId> = keyed
            .into_iter()
            .map(|(_, t)| t)
            .take(config.distinct_terms)
            .collect();

        assert!(!query_terms.is_empty(), "no candidate query terms");
        let popularity = ZipfSampler::new(query_terms.len(), config.zipf_exponent);

        let mut queries = Vec::with_capacity(config.num_queries);
        for _ in 0..config.num_queries {
            let extra = crate::zipf::poisson(config.mean_terms_per_query - 1.0, &mut rng);
            let target_len = (1 + extra) as usize;
            let mut terms: Vec<TermId> = Vec::with_capacity(target_len);
            let mut attempts = 0;
            while terms.len() < target_len && attempts < target_len * 20 {
                let term = query_terms[popularity.sample(&mut rng)];
                if !terms.contains(&term) {
                    terms.push(term);
                }
                attempts += 1;
            }
            queries.push(terms);
        }

        Self {
            queries,
            vocabulary_size: stats.term_count(),
        }
    }

    /// Number of queries.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// True iff the log is empty.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// Mean terms per query.
    pub fn mean_terms_per_query(&self) -> f64 {
        if self.queries.is_empty() {
            return 0.0;
        }
        let total: usize = self.queries.iter().map(Vec::len).sum();
        total as f64 / self.queries.len() as f64
    }

    /// Number of distinct terms appearing in the log.
    pub fn distinct_terms(&self) -> usize {
        let mut seen = std::collections::HashSet::new();
        for query in &self.queries {
            seen.extend(query.iter().copied());
        }
        seen.len()
    }

    /// Aggregates per-term query frequencies — the `q_j` of formula
    /// (6).
    pub fn workload(&self) -> QueryWorkload {
        let mut frequencies = vec![0u64; self.vocabulary_size];
        for query in &self.queries {
            for term in query {
                if let Some(slot) = frequencies.get_mut(term.0 as usize) {
                    *slot += 1;
                }
            }
        }
        QueryWorkload::from_frequencies(frequencies)
    }
}

/// Rank correlation (Spearman's ρ over shared terms) between document
/// frequency and query frequency — used to validate the generator
/// against the paper's "these are correlated" observation.
pub fn df_qf_rank_correlation(stats: &CorpusStats, workload: &QueryWorkload) -> f64 {
    // Collect terms with both signals.
    let mut terms: Vec<TermId> = (0..stats.term_count() as u32)
        .map(TermId)
        .filter(|&t| stats.document_frequency(t) > 0 && workload.frequency(t) > 0)
        .collect();
    let n = terms.len();
    if n < 3 {
        return 0.0;
    }
    let rank_of =
        |key: &dyn Fn(TermId) -> u64, terms: &[TermId]| -> std::collections::HashMap<TermId, f64> {
            let mut sorted = terms.to_vec();
            sorted.sort_by(|&a, &b| key(b).cmp(&key(a)).then(a.0.cmp(&b.0)));
            sorted
                .into_iter()
                .enumerate()
                .map(|(i, t)| (t, i as f64))
                .collect()
        };
    terms.sort_by_key(|t| t.0);
    let df_rank = rank_of(&|t| stats.document_frequency(t), &terms);
    let qf_rank = rank_of(&|t| workload.frequency(t), &terms);
    let d2: f64 = terms
        .iter()
        .map(|t| {
            let d = df_rank[t] - qf_rank[t];
            d * d
        })
        .sum();
    let n = n as f64;
    1.0 - 6.0 * d2 / (n * (n * n - 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn zipf_stats(n: usize) -> CorpusStats {
        let dfs: Vec<u64> = (1..=n as u64).map(|rank| 1 + 50_000 / rank).collect();
        CorpusStats::from_document_frequencies(dfs)
    }

    #[test]
    fn mean_query_length_matches_target() {
        let stats = zipf_stats(2_000);
        let log = QueryLog::generate(&QueryLogConfig::tiny(), &stats);
        let mean = log.mean_terms_per_query();
        assert!((mean - 2.45).abs() < 0.25, "mean terms/query {mean}");
    }

    #[test]
    fn queries_have_distinct_terms() {
        let stats = zipf_stats(2_000);
        let log = QueryLog::generate(&QueryLogConfig::tiny(), &stats);
        for query in &log.queries {
            let mut sorted: Vec<u32> = query.iter().map(|t| t.0).collect();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), query.len());
        }
    }

    #[test]
    fn workload_totals_match_query_terms() {
        let stats = zipf_stats(2_000);
        let log = QueryLog::generate(&QueryLogConfig::tiny(), &stats);
        let expected: u64 = log.queries.iter().map(|q| q.len() as u64).sum();
        assert_eq!(log.workload().total(), expected);
    }

    #[test]
    fn query_frequencies_are_zipfian() {
        // Figure 6: the most frequent queries dominate the workload.
        let stats = zipf_stats(2_000);
        let log = QueryLog::generate(
            &QueryLogConfig {
                num_queries: 20_000,
                ..QueryLogConfig::tiny()
            },
            &stats,
        );
        let workload = log.workload();
        let order = workload.terms_by_descending_frequency();
        let top_decile: u64 = order
            .iter()
            .take(order.len() / 10)
            .map(|&t| workload.frequency(t))
            .sum();
        let total = workload.total();
        assert!(
            top_decile as f64 / total as f64 > 0.5,
            "top 10% of terms carry {}% of the workload",
            100 * top_decile / total
        );
    }

    #[test]
    fn df_and_qf_are_correlated_but_not_identical() {
        let stats = zipf_stats(2_000);
        let log = QueryLog::generate(
            &QueryLogConfig {
                num_queries: 30_000,
                ..QueryLogConfig::tiny()
            },
            &stats,
        );
        let workload = log.workload();
        let rho = df_qf_rank_correlation(&stats, &workload);
        assert!(rho > 0.2, "correlation too weak: {rho}");
        assert!(rho < 0.999, "correlation implausibly perfect: {rho}");
    }

    #[test]
    fn zero_noise_aligns_rankings_tightly() {
        let stats = zipf_stats(1_000);
        let log = QueryLog::generate(
            &QueryLogConfig {
                rank_noise: 0.0,
                num_queries: 30_000,
                distinct_terms: 300,
                ..QueryLogConfig::tiny()
            },
            &stats,
        );
        let rho = df_qf_rank_correlation(&stats, &log.workload());
        assert!(rho > 0.6, "noise-free correlation {rho}");
    }

    #[test]
    fn generation_is_deterministic() {
        let stats = zipf_stats(500);
        let a = QueryLog::generate(&QueryLogConfig::tiny(), &stats);
        let b = QueryLog::generate(&QueryLogConfig::tiny(), &stats);
        assert_eq!(a.queries, b.queries);
    }
}
