//! Web-search query-log generation (Section 7.4.3, Figure 6).
//!
//! "Our query log has 7 million queries and 135,000 distinct query
//! terms. … The most frequent queries constitute nearly the whole
//! query workload. … confidentiality concerns require us to base
//! merging decisions on document frequencies rather than query
//! frequencies. These are correlated, though some frequent terms are
//! rarely queried (e.g., 'although')."
//!
//! The generator draws query terms from a Zipf distribution over a
//! *noisily reordered* document-frequency ranking: with `rank_noise =
//! 0` the query ranking equals the DF ranking; larger values shuffle
//! ranks (log-normally) so that some high-DF terms are rarely queried,
//! exactly the 'although' effect.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use zerber_index::cost::QueryWorkload;
use zerber_index::{CorpusStats, TermId};

use crate::zipf::{standard_normal, ZipfSampler};

/// Query-log generator parameters.
#[derive(Debug, Clone)]
pub struct QueryLogConfig {
    /// Number of queries to generate (paper: 7,000,000; default
    /// scaled).
    pub num_queries: usize,
    /// Number of distinct candidate query terms, taken from the head
    /// of the (noisy) document-frequency ranking (paper: 135,000).
    pub distinct_terms: usize,
    /// Mean number of terms per query (paper: 2.45).
    pub mean_terms_per_query: f64,
    /// Zipf exponent of query-term popularity.
    pub zipf_exponent: f64,
    /// Log-normal σ of the DF-rank → QF-rank perturbation; 0 keeps the
    /// rankings identical.
    pub rank_noise: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for QueryLogConfig {
    fn default() -> Self {
        Self {
            num_queries: 100_000,
            distinct_terms: 20_000,
            mean_terms_per_query: 2.45,
            zipf_exponent: 0.9,
            rank_noise: 0.8,
            seed: 1997,
        }
    }
}

impl QueryLogConfig {
    /// A deliberately small configuration for unit tests.
    pub fn tiny() -> Self {
        Self {
            num_queries: 2_000,
            distinct_terms: 500,
            ..Self::default()
        }
    }
}

/// A generated query log.
#[derive(Debug, Clone)]
pub struct QueryLog {
    /// The queries, each a set of distinct term ids.
    pub queries: Vec<Vec<TermId>>,
    /// Size of the term-id space the workload vector must cover.
    vocabulary_size: usize,
}

/// The noisy query-popularity ranking shared by the flat and shaped
/// generators: the DF ranking, each rank perturbed by a log-normal
/// factor, truncated to the `distinct_terms` head.
fn noisy_query_ranking(
    config: &QueryLogConfig,
    stats: &CorpusStats,
    rng: &mut StdRng,
) -> Vec<TermId> {
    let df_ranking = stats.terms_by_descending_frequency();
    let candidates: Vec<TermId> = df_ranking
        .into_iter()
        .filter(|&t| stats.probability(t) > 0.0)
        .collect();
    let mut keyed: Vec<(f64, TermId)> = candidates
        .iter()
        .enumerate()
        .map(|(df_rank, &term)| {
            let noise = (config.rank_noise * standard_normal(rng)).exp();
            ((df_rank as f64 + 1.0) * noise, term)
        })
        .collect();
    keyed.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
    keyed
        .into_iter()
        .map(|(_, t)| t)
        .take(config.distinct_terms)
        .collect()
}

/// Samples `target_len` distinct terms from `pool` under `popularity`,
/// giving up (with fewer terms) after a bounded number of rejections.
fn sample_distinct<R: rand::Rng + ?Sized>(
    pool: &[TermId],
    popularity: &ZipfSampler,
    target_len: usize,
    rng: &mut R,
) -> Vec<TermId> {
    let mut terms: Vec<TermId> = Vec::with_capacity(target_len);
    let mut attempts = 0;
    while terms.len() < target_len && attempts < target_len * 20 {
        let term = pool[popularity.sample(rng)];
        if !terms.contains(&term) {
            terms.push(term);
        }
        attempts += 1;
    }
    terms
}

impl QueryLog {
    /// Generates a log against corpus statistics: query-term popularity
    /// follows a Zipf over the noisy DF ranking.
    pub fn generate(config: &QueryLogConfig, stats: &CorpusStats) -> Self {
        assert!(config.mean_terms_per_query >= 1.0, "queries have >= 1 term");
        let mut rng = StdRng::seed_from_u64(config.seed);
        let query_terms = noisy_query_ranking(config, stats, &mut rng);

        assert!(!query_terms.is_empty(), "no candidate query terms");
        let popularity = ZipfSampler::new(query_terms.len(), config.zipf_exponent);

        let mut queries = Vec::with_capacity(config.num_queries);
        for _ in 0..config.num_queries {
            let extra = crate::zipf::poisson(config.mean_terms_per_query - 1.0, &mut rng);
            let target_len = (1 + extra) as usize;
            queries.push(sample_distinct(
                &query_terms,
                &popularity,
                target_len,
                &mut rng,
            ));
        }

        Self {
            queries,
            vocabulary_size: stats.term_count(),
        }
    }

    /// Number of queries.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// True iff the log is empty.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// Mean terms per query.
    pub fn mean_terms_per_query(&self) -> f64 {
        if self.queries.is_empty() {
            return 0.0;
        }
        let total: usize = self.queries.iter().map(Vec::len).sum();
        total as f64 / self.queries.len() as f64
    }

    /// Number of distinct terms appearing in the log.
    pub fn distinct_terms(&self) -> usize {
        let mut seen = std::collections::HashSet::new();
        for query in &self.queries {
            seen.extend(query.iter().copied());
        }
        seen.len()
    }

    /// Aggregates per-term query frequencies — the `q_j` of formula
    /// (6).
    pub fn workload(&self) -> QueryWorkload {
        let mut frequencies = vec![0u64; self.vocabulary_size];
        for query in &self.queries {
            for term in query {
                if let Some(slot) = frequencies.get_mut(term.0 as usize) {
                    *slot += 1;
                }
            }
        }
        QueryWorkload::from_frequencies(frequencies)
    }
}

/// The shape of one replayed query. Byte-for-byte the serving layer's
/// shape encoding (`Terms = 0`, `And = 1`, `Phrase = 2`) but defined
/// here so the corpus generators stay leaf-level — the serving crates
/// depend on corpora, never the reverse.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueryShape {
    /// Disjunctive bag-of-words ranking.
    Terms,
    /// Conjunctive: every term must match.
    And,
    /// Exact phrase over consecutive canonical positions.
    Phrase,
}

impl QueryShape {
    /// The wire byte the serving layer's shape enum uses.
    pub fn as_u8(self) -> u8 {
        match self {
            QueryShape::Terms => 0,
            QueryShape::And => 1,
            QueryShape::Phrase => 2,
        }
    }
}

/// One shaped query: a shape plus its term list (list order is phrase
/// order for [`QueryShape::Phrase`]).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ShapedQuery {
    /// How the terms combine.
    pub shape: QueryShape,
    /// The query terms.
    pub terms: Vec<TermId>,
}

/// Shaped-query-log parameters: the flat generator's popularity model
/// ([`QueryLogConfig`] — its `zipf_exponent` is the workload's `s`
/// parameter) plus a shape mix, a vocabulary slice, and phrase sizing.
#[derive(Debug, Clone)]
pub struct ShapedLogConfig {
    /// Term-popularity model (Zipf `s`, rank noise, seed, query count).
    pub base: QueryLogConfig,
    /// Relative weights of the `[Terms, And, Phrase]` shapes.
    pub shape_mix: [u32; 3],
    /// Candidate-pool slice `[lo, hi)` as fractions of the noisy
    /// popularity ranking: `(0.0, 1.0)` replays the whole pool,
    /// `(0.0, 0.05)` only head terms (a cache-friendly workload),
    /// `(0.5, 1.0)` only the tail.
    pub vocab_slice: (f64, f64),
    /// Inclusive phrase length bounds `[min, max]`.
    pub phrase_len: (usize, usize),
}

impl Default for ShapedLogConfig {
    fn default() -> Self {
        Self {
            base: QueryLogConfig::default(),
            shape_mix: [6, 3, 1],
            vocab_slice: (0.0, 1.0),
            phrase_len: (2, 3),
        }
    }
}

impl ShapedLogConfig {
    /// A deliberately small configuration for unit tests.
    pub fn tiny() -> Self {
        Self {
            base: QueryLogConfig::tiny(),
            ..Self::default()
        }
    }
}

/// A generated shaped query log — the serving benchmark's replay input.
#[derive(Debug, Clone)]
pub struct ShapedQueryLog {
    /// The queries, in replay order.
    pub queries: Vec<ShapedQuery>,
}

impl ShapedQueryLog {
    /// Generates a shaped log against corpus statistics. Term
    /// popularity is Zipf over the noisy DF ranking exactly like
    /// [`QueryLog::generate`]; each query first draws its shape from
    /// `shape_mix`, then its terms from the `vocab_slice` of the
    /// candidate pool. Phrases are runs of *consecutive term ids*
    /// starting at a sampled term — the shape the canonical position
    /// convention (ascending term-id runs) makes matchable.
    pub fn generate(config: &ShapedLogConfig, stats: &CorpusStats) -> Self {
        let base = &config.base;
        assert!(base.mean_terms_per_query >= 1.0, "queries have >= 1 term");
        let (lo_frac, hi_frac) = config.vocab_slice;
        assert!(
            (0.0..=1.0).contains(&lo_frac) && (0.0..=1.0).contains(&hi_frac) && lo_frac < hi_frac,
            "vocab_slice must satisfy 0 <= lo < hi <= 1"
        );
        let (min_phrase, max_phrase) = config.phrase_len;
        assert!(
            (1..=max_phrase).contains(&min_phrase),
            "phrase_len must satisfy 1 <= min <= max"
        );
        let mix_total: u32 = config.shape_mix.iter().sum();
        assert!(mix_total > 0, "shape_mix must have positive weight");

        let mut rng = StdRng::seed_from_u64(base.seed);
        let ranking = noisy_query_ranking(base, stats, &mut rng);
        assert!(!ranking.is_empty(), "no candidate query terms");
        let lo = ((ranking.len() as f64) * lo_frac) as usize;
        let hi = (((ranking.len() as f64) * hi_frac).ceil() as usize).min(ranking.len());
        let pool = &ranking[lo.min(hi.saturating_sub(1))..hi];
        let popularity = ZipfSampler::new(pool.len(), base.zipf_exponent);
        let vocabulary = stats.term_count() as u32;

        let mut queries = Vec::with_capacity(base.num_queries);
        for _ in 0..base.num_queries {
            let roll = (rng.random::<f64>() * f64::from(mix_total)) as u32;
            let shape = if roll < config.shape_mix[0] {
                QueryShape::Terms
            } else if roll < config.shape_mix[0] + config.shape_mix[1] {
                QueryShape::And
            } else {
                QueryShape::Phrase
            };
            let terms = match shape {
                QueryShape::Terms | QueryShape::And => {
                    let extra = crate::zipf::poisson(base.mean_terms_per_query - 1.0, &mut rng);
                    sample_distinct(pool, &popularity, (1 + extra) as usize, &mut rng)
                }
                QueryShape::Phrase => {
                    let start = pool[popularity.sample(&mut rng)];
                    let span = max_phrase - min_phrase + 1;
                    let len = min_phrase + (rng.random::<f64>() * span as f64) as usize;
                    (0..len as u32)
                        .map_while(|offset| {
                            let id = start.0.checked_add(offset)?;
                            (id < vocabulary).then_some(TermId(id))
                        })
                        .collect()
                }
            };
            queries.push(ShapedQuery { shape, terms });
        }
        Self { queries }
    }

    /// Number of queries.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// True iff the log is empty.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// How many queries have each shape, in `[Terms, And, Phrase]`
    /// order.
    pub fn shape_counts(&self) -> [usize; 3] {
        let mut counts = [0usize; 3];
        for query in &self.queries {
            counts[query.shape.as_u8() as usize] += 1;
        }
        counts
    }
}

/// Rank correlation (Spearman's ρ over shared terms) between document
/// frequency and query frequency — used to validate the generator
/// against the paper's "these are correlated" observation.
pub fn df_qf_rank_correlation(stats: &CorpusStats, workload: &QueryWorkload) -> f64 {
    // Collect terms with both signals.
    let mut terms: Vec<TermId> = (0..stats.term_count() as u32)
        .map(TermId)
        .filter(|&t| stats.document_frequency(t) > 0 && workload.frequency(t) > 0)
        .collect();
    let n = terms.len();
    if n < 3 {
        return 0.0;
    }
    let rank_of =
        |key: &dyn Fn(TermId) -> u64, terms: &[TermId]| -> std::collections::HashMap<TermId, f64> {
            let mut sorted = terms.to_vec();
            sorted.sort_by(|&a, &b| key(b).cmp(&key(a)).then(a.0.cmp(&b.0)));
            sorted
                .into_iter()
                .enumerate()
                .map(|(i, t)| (t, i as f64))
                .collect()
        };
    terms.sort_by_key(|t| t.0);
    let df_rank = rank_of(&|t| stats.document_frequency(t), &terms);
    let qf_rank = rank_of(&|t| workload.frequency(t), &terms);
    let d2: f64 = terms
        .iter()
        .map(|t| {
            let d = df_rank[t] - qf_rank[t];
            d * d
        })
        .sum();
    let n = n as f64;
    1.0 - 6.0 * d2 / (n * (n * n - 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn zipf_stats(n: usize) -> CorpusStats {
        let dfs: Vec<u64> = (1..=n as u64).map(|rank| 1 + 50_000 / rank).collect();
        CorpusStats::from_document_frequencies(dfs)
    }

    #[test]
    fn mean_query_length_matches_target() {
        let stats = zipf_stats(2_000);
        let log = QueryLog::generate(&QueryLogConfig::tiny(), &stats);
        let mean = log.mean_terms_per_query();
        assert!((mean - 2.45).abs() < 0.25, "mean terms/query {mean}");
    }

    #[test]
    fn queries_have_distinct_terms() {
        let stats = zipf_stats(2_000);
        let log = QueryLog::generate(&QueryLogConfig::tiny(), &stats);
        for query in &log.queries {
            let mut sorted: Vec<u32> = query.iter().map(|t| t.0).collect();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), query.len());
        }
    }

    #[test]
    fn workload_totals_match_query_terms() {
        let stats = zipf_stats(2_000);
        let log = QueryLog::generate(&QueryLogConfig::tiny(), &stats);
        let expected: u64 = log.queries.iter().map(|q| q.len() as u64).sum();
        assert_eq!(log.workload().total(), expected);
    }

    #[test]
    fn query_frequencies_are_zipfian() {
        // Figure 6: the most frequent queries dominate the workload.
        let stats = zipf_stats(2_000);
        let log = QueryLog::generate(
            &QueryLogConfig {
                num_queries: 20_000,
                ..QueryLogConfig::tiny()
            },
            &stats,
        );
        let workload = log.workload();
        let order = workload.terms_by_descending_frequency();
        let top_decile: u64 = order
            .iter()
            .take(order.len() / 10)
            .map(|&t| workload.frequency(t))
            .sum();
        let total = workload.total();
        assert!(
            top_decile as f64 / total as f64 > 0.5,
            "top 10% of terms carry {}% of the workload",
            100 * top_decile / total
        );
    }

    #[test]
    fn df_and_qf_are_correlated_but_not_identical() {
        let stats = zipf_stats(2_000);
        let log = QueryLog::generate(
            &QueryLogConfig {
                num_queries: 30_000,
                ..QueryLogConfig::tiny()
            },
            &stats,
        );
        let workload = log.workload();
        let rho = df_qf_rank_correlation(&stats, &workload);
        assert!(rho > 0.2, "correlation too weak: {rho}");
        assert!(rho < 0.999, "correlation implausibly perfect: {rho}");
    }

    #[test]
    fn zero_noise_aligns_rankings_tightly() {
        let stats = zipf_stats(1_000);
        let log = QueryLog::generate(
            &QueryLogConfig {
                rank_noise: 0.0,
                num_queries: 30_000,
                distinct_terms: 300,
                ..QueryLogConfig::tiny()
            },
            &stats,
        );
        let rho = df_qf_rank_correlation(&stats, &log.workload());
        assert!(rho > 0.6, "noise-free correlation {rho}");
    }

    #[test]
    fn generation_is_deterministic() {
        let stats = zipf_stats(500);
        let a = QueryLog::generate(&QueryLogConfig::tiny(), &stats);
        let b = QueryLog::generate(&QueryLogConfig::tiny(), &stats);
        assert_eq!(a.queries, b.queries);
    }

    #[test]
    fn shaped_generation_is_deterministic_and_covers_the_mix() {
        let stats = zipf_stats(2_000);
        let a = ShapedQueryLog::generate(&ShapedLogConfig::tiny(), &stats);
        let b = ShapedQueryLog::generate(&ShapedLogConfig::tiny(), &stats);
        assert_eq!(a.queries, b.queries, "same seed, same log");
        let counts = a.shape_counts();
        assert_eq!(counts.iter().sum::<usize>(), a.len());
        for (shape, count) in ["terms", "and", "phrase"].iter().zip(counts) {
            assert!(count > 0, "{shape} never drawn from the default mix");
        }
        // Terms and And queries never repeat a term (phrases may: a
        // run can legitimately revisit an id only via wrap, which
        // consecutive construction excludes — so check those too).
        for query in &a.queries {
            let mut sorted: Vec<u32> = query.terms.iter().map(|t| t.0).collect();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), query.terms.len(), "{query:?}");
        }
    }

    #[test]
    fn shaped_phrases_are_consecutive_runs() {
        let stats = zipf_stats(2_000);
        let log = ShapedQueryLog::generate(&ShapedLogConfig::tiny(), &stats);
        let config = ShapedLogConfig::tiny();
        for query in log.queries.iter().filter(|q| q.shape == QueryShape::Phrase) {
            assert!(
                (config.phrase_len.0..=config.phrase_len.1).contains(&query.terms.len())
                    // Runs clipped at the vocabulary edge may fall short.
                    || query.terms.len() < config.phrase_len.0,
                "{query:?}"
            );
            for pair in query.terms.windows(2) {
                assert_eq!(
                    pair[1].0,
                    pair[0].0 + 1,
                    "phrase not consecutive: {query:?}"
                );
            }
        }
    }

    #[test]
    fn vocab_slice_restricts_the_candidate_pool() {
        let stats = zipf_stats(2_000);
        let whole = ShapedQueryLog::generate(&ShapedLogConfig::tiny(), &stats);
        let head = ShapedQueryLog::generate(
            &ShapedLogConfig {
                vocab_slice: (0.0, 0.02),
                ..ShapedLogConfig::tiny()
            },
            &stats,
        );
        let distinct = |log: &ShapedQueryLog| {
            let mut seen = std::collections::HashSet::new();
            // Count only sampled terms; phrase runs extend beyond the
            // pool by construction.
            for q in log.queries.iter().filter(|q| q.shape != QueryShape::Phrase) {
                seen.extend(q.terms.iter().copied());
            }
            seen.len()
        };
        assert!(
            distinct(&head) < distinct(&whole) / 2,
            "head slice should shrink the sampled vocabulary: {} vs {}",
            distinct(&head),
            distinct(&whole)
        );
    }
}
