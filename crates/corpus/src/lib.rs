//! Synthetic workload substrate for the Zerber reproduction.
//!
//! The paper evaluates on three artifacts we do not have: an Open
//! Directory Project crawl (237,000 documents, 987,700 distinct terms,
//! 100 topic groups), Stud IP learning-management dumps from four
//! universities (8,500 documents, 570,000 terms in the mid-semester
//! snapshot of Figure 5), and a commercial web-search query log
//! (7 million queries, 135,000 distinct query terms, 2.45 terms per
//! query on average). Every evaluated quantity depends on the *shape*
//! of these datasets — Zipfian document frequencies (Figure 7), skewed
//! group sizes (Figure 5), Zipfian query frequencies imperfectly
//! correlated with document frequencies (Figure 6) — so this crate
//! generates synthetic equivalents with exactly those shapes, with all
//! scale parameters configurable up to paper scale.
//!
//! * [`zipf`] — an O(log n) cumulative-table Zipf sampler plus
//!   dependency-free normal/Poisson helpers,
//! * [`synth`] — the generic Zipfian document generator,
//! * [`odp`] — the ODP-like profile (topic groups with local
//!   vocabulary skew),
//! * [`studip`] — the Stud-IP-like profile reproducing the four
//!   distributions of Figure 5,
//! * [`querylog`] — the web-search-log generator behind Figures 6, 10
//!   and 11,
//! * [`groups`] — user ↔ group membership generation.

pub mod groups;
pub mod odp;
pub mod querylog;
pub mod studip;
pub mod synth;
pub mod zipf;

pub use groups::GroupAssignments;
pub use odp::{OdpConfig, OdpCorpus};
pub use querylog::{
    QueryLog, QueryLogConfig, QueryShape, ShapedLogConfig, ShapedQuery, ShapedQueryLog,
};
pub use studip::{StudipConfig, StudipData};
pub use synth::{CorpusConfig, SyntheticCorpus};
pub use zipf::ZipfSampler;
