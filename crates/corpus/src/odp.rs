//! The ODP-like corpus profile.
//!
//! Section 7.4.2: "We used a collection from the Open Directory
//! Project … with 237,000 documents and 987,700 distinct terms. The
//! crawler's strategy was to find pages on a variety of topics, such
//! that 100 topics were randomly selected; we used the set of documents
//! on one topic as the set of documents of one group."
//!
//! The generator reproduces the two features the evaluation depends
//! on: a global Zipfian document-frequency distribution (Figure 7b) and
//! topical grouping — each group has a preferred slice of the
//! vocabulary so that groups are *about* something, like ODP topics.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use zerber_index::{Document, GroupId, TermId};

use crate::synth::{doc_id_for, sample_length};
use crate::zipf::ZipfSampler;

/// ODP-profile parameters. Defaults are a laptop-scale rendering of the
/// paper's corpus (same shape, smaller axes); set `num_docs: 237_000`
/// and `vocabulary_size: 987_700` for paper scale.
#[derive(Debug, Clone)]
pub struct OdpConfig {
    /// Number of documents.
    pub num_docs: usize,
    /// Global vocabulary size.
    pub vocabulary_size: usize,
    /// Number of topic groups (paper: 100).
    pub num_topics: u32,
    /// Zipf exponent of the global vocabulary.
    pub zipf_exponent: f64,
    /// Mean document length in tokens.
    pub avg_doc_length: usize,
    /// Log-normal length spread.
    pub doc_length_sigma: f64,
    /// Probability that a token is drawn from the topic's local
    /// vocabulary slice instead of the global distribution.
    pub topic_affinity: f64,
    /// Size of each topic's local vocabulary slice.
    pub topic_vocabulary: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for OdpConfig {
    fn default() -> Self {
        Self {
            num_docs: 20_000,
            vocabulary_size: 120_000,
            num_topics: 100,
            zipf_exponent: 1.05,
            avg_doc_length: 250,
            doc_length_sigma: 0.6,
            topic_affinity: 0.3,
            topic_vocabulary: 1_000,
            seed: 2008,
        }
    }
}

impl OdpConfig {
    /// A deliberately small configuration for unit tests.
    pub fn tiny() -> Self {
        Self {
            num_docs: 400,
            vocabulary_size: 6_000,
            num_topics: 10,
            avg_doc_length: 80,
            topic_vocabulary: 200,
            ..Self::default()
        }
    }
}

/// A generated ODP-like corpus.
#[derive(Debug, Clone)]
pub struct OdpCorpus {
    /// The documents; `doc.group` is the topic.
    pub documents: Vec<Document>,
    /// Number of topics.
    pub num_topics: u32,
    /// Vocabulary size the generator drew from.
    pub vocabulary_size: usize,
}

impl OdpCorpus {
    /// Generates the corpus.
    pub fn generate(config: &OdpConfig) -> Self {
        assert!(config.num_topics > 0, "need at least one topic");
        assert!(
            (0.0..=1.0).contains(&config.topic_affinity),
            "topic affinity is a probability"
        );
        let mut rng = StdRng::seed_from_u64(config.seed);
        let global = ZipfSampler::new(config.vocabulary_size, config.zipf_exponent);
        let local = ZipfSampler::new(
            config.topic_vocabulary.min(config.vocabulary_size),
            config.zipf_exponent,
        );

        // Each topic's local slice starts at a random offset in the
        // tail half of the vocabulary, so topical terms are
        // mid-to-low-frequency globally (like real topic jargon).
        let tail_start = config.vocabulary_size / 2;
        let topic_offsets: Vec<usize> = (0..config.num_topics)
            .map(|_| {
                tail_start
                    + rng.random_range(
                        0..config
                            .vocabulary_size
                            .saturating_sub(tail_start + config.topic_vocabulary)
                            .max(1),
                    )
            })
            .collect();

        let mut documents = Vec::with_capacity(config.num_docs);
        // Sequence numbers are allocated per *host* slot, not per
        // topic: topics 64 apart share a host (see `doc_host`), so
        // per-topic counters would hand out colliding document ids
        // once `num_topics > 64`.
        let mut per_host_sequence = [0u32; crate::synth::DOC_HOST_SLOTS];
        for i in 0..config.num_docs {
            let topic = (i as u32) % config.num_topics;
            let group = GroupId(topic);
            let host = crate::synth::doc_host(group) as usize;
            let sequence = per_host_sequence[host];
            per_host_sequence[host] += 1;
            let length = sample_length(config.avg_doc_length, config.doc_length_sigma, &mut rng);
            let mut counts: std::collections::HashMap<TermId, u32> =
                std::collections::HashMap::new();
            for _ in 0..length {
                let term = if rng.random::<f64>() < config.topic_affinity {
                    TermId((topic_offsets[topic as usize] + local.sample(&mut rng)) as u32)
                } else {
                    TermId(global.sample(&mut rng) as u32)
                };
                *counts.entry(term).or_insert(0) += 1;
            }
            documents.push(Document::from_term_counts(
                doc_id_for(group, sequence),
                group,
                counts.into_iter().collect(),
            ));
        }
        Self {
            documents,
            num_topics: config.num_topics,
            vocabulary_size: config.vocabulary_size,
        }
    }

    /// Per-term document frequencies over the full vocabulary.
    pub fn document_frequencies(&self) -> Vec<u64> {
        let mut dfs = vec![0u64; self.vocabulary_size];
        for doc in &self.documents {
            for &(term, _) in &doc.terms {
                if let Some(slot) = dfs.get_mut(term.0 as usize) {
                    *slot += 1;
                }
            }
        }
        dfs
    }

    /// Corpus statistics (formula (2)).
    pub fn statistics(&self) -> zerber_index::CorpusStats {
        zerber_index::CorpusStats::from_document_frequencies(self.document_frequencies())
    }

    /// Statistics learned from only the first `fraction` of documents —
    /// the paper learns merging from "the first 30% of the documents"
    /// (Section 7.5).
    pub fn prefix_statistics(&self, fraction: f64) -> zerber_index::CorpusStats {
        assert!((0.0..=1.0).contains(&fraction), "fraction in [0, 1]");
        let prefix = ((self.documents.len() as f64) * fraction).round() as usize;
        let mut dfs = vec![0u64; self.vocabulary_size];
        for doc in &self.documents[..prefix] {
            for &(term, _) in &doc.terms {
                if let Some(slot) = dfs.get_mut(term.0 as usize) {
                    *slot += 1;
                }
            }
        }
        zerber_index::CorpusStats::from_document_frequencies(dfs)
    }

    /// Builds an inverted index over the whole corpus (bulk path: one
    /// sort per posting list instead of per-document inserts).
    pub fn build_index(&self) -> zerber_index::InvertedIndex {
        zerber_index::InvertedIndex::from_documents(&self.documents)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Regression: with more than 64 topics the old 6-bit host wrap in
    /// `doc_id_for` aliased topic 64+ ids onto topic 0+, producing
    /// duplicate document ids at the default ODP scale (100 topics)
    /// that doc-level shadowing then silently dropped during ingest.
    #[test]
    fn document_ids_are_unique_above_64_topics() {
        let corpus = OdpCorpus::generate(&OdpConfig {
            num_docs: 2_000,
            num_topics: 100,
            ..OdpConfig::tiny()
        });
        let mut ids: Vec<u32> = corpus.documents.iter().map(|d| d.id.0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), corpus.documents.len());
    }

    #[test]
    fn every_topic_gets_documents() {
        let corpus = OdpCorpus::generate(&OdpConfig::tiny());
        let mut counts = [0usize; 10];
        for doc in &corpus.documents {
            counts[doc.group.0 as usize] += 1;
        }
        assert!(counts.iter().all(|&c| c == 40));
    }

    #[test]
    fn frequencies_are_heavy_tailed() {
        let corpus = OdpCorpus::generate(&OdpConfig::tiny());
        let stats = corpus.statistics();
        let sorted = stats.terms_by_descending_frequency();
        let top = stats.probability(sorted[0]);
        let mid = stats.probability(sorted[sorted.len() / 4]);
        assert!(top > 20.0 * mid.max(1e-9), "top {top}, mid {mid}");
    }

    #[test]
    fn topic_vocabulary_is_group_specific() {
        // Terms from a topic's slice should be much more frequent in
        // that topic's documents than in others'.
        let config = OdpConfig::tiny();
        let corpus = OdpCorpus::generate(&config);
        // Find, for each of two topics, the most frequent term that is
        // NOT in the global head (rank >= vocab/2 => topical slice).
        let head_cutoff = (config.vocabulary_size / 2) as u32;
        let topical_mass = |topic: u32| -> f64 {
            let docs: Vec<&Document> = corpus
                .documents
                .iter()
                .filter(|d| d.group.0 == topic)
                .collect();
            let tokens: u64 = docs.iter().map(|d| d.length as u64).sum();
            let topical: u64 = docs
                .iter()
                .flat_map(|d| d.terms.iter())
                .filter(|(t, _)| t.0 >= head_cutoff)
                .map(|&(_, c)| c as u64)
                .sum();
            topical as f64 / tokens as f64
        };
        // Topic affinity 0.3 means ~30%+ of tokens are topical.
        assert!(topical_mass(0) > 0.15);
        assert!(topical_mass(5) > 0.15);
    }

    #[test]
    fn prefix_statistics_cover_fewer_documents() {
        let corpus = OdpCorpus::generate(&OdpConfig::tiny());
        let full = corpus.statistics();
        let prefix = corpus.prefix_statistics(0.3);
        assert!(prefix.total_document_frequency() < full.total_document_frequency());
        assert!(prefix.total_document_frequency() > 0);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = OdpCorpus::generate(&OdpConfig::tiny());
        let b = OdpCorpus::generate(&OdpConfig::tiny());
        assert_eq!(a.documents, b.documents);
    }
}
