//! Offline, API-compatible subset of the
//! [`criterion`](https://docs.rs/criterion/0.5) benchmark harness, vendored
//! so the Zerber workspace's benches compile and run without network
//! access.
//!
//! The statistical machinery (outlier detection, regression analysis, HTML
//! reports) is replaced by a plain time-boxed loop that prints mean
//! nanoseconds per iteration. Bench *registration* is identical to real
//! criterion — `criterion_group!` / `criterion_main!` with
//! `harness = false` targets — so swapping the real crate back in is a
//! manifest-only change.
//!
//! Passing `--test` (as `cargo test --benches` does) or setting
//! `CRITERION_SMOKE=1` runs every closure exactly once, keeping CI fast.

use std::time::{Duration, Instant};

/// Entry point handed to each bench function; mirrors
/// `criterion::Criterion`.
pub struct Criterion {
    /// Run each closure once instead of measuring (smoke/CI mode).
    smoke: bool,
    /// Requested sample size (accepted for API compatibility; the stub
    /// time-boxes instead of sampling).
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        let smoke = std::env::args().any(|a| a == "--test")
            || std::env::var_os("CRITERION_SMOKE").is_some();
        Criterion {
            smoke,
            sample_size: 100,
        }
    }
}

impl Criterion {
    /// Benchmarks one closure under `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            smoke: self.smoke,
            measurement: None,
        };
        f(&mut bencher);
        match bencher.measurement {
            Some(m) if !self.smoke => {
                println!(
                    "{id:<50} {:>12.1} ns/iter ({} iters)",
                    m.ns_per_iter, m.iters
                );
            }
            _ => println!("{id:<50} ok (smoke)"),
        }
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// A named group of benchmarks; mirrors `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Sets the requested sample size (accepted, not enforced).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n;
        self
    }

    /// Benchmarks one closure under `group_name/id`.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        self.criterion.bench_function(full, f);
        self
    }

    /// Finishes the group (report flushing is a no-op in the stub).
    pub fn finish(self) {}
}

struct Measurement {
    ns_per_iter: f64,
    iters: u64,
}

/// Timing loop driver; mirrors `criterion::Bencher`.
pub struct Bencher {
    smoke: bool,
    measurement: Option<Measurement>,
}

impl Bencher {
    /// Calls `routine` repeatedly and records mean wall-clock time.
    ///
    /// In smoke mode the routine runs exactly once and nothing is measured.
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        if self.smoke {
            std::hint::black_box(routine());
            return;
        }
        // Warm-up, then time-boxed measurement (~100 ms or 10k iters).
        for _ in 0..3 {
            std::hint::black_box(routine());
        }
        let budget = Duration::from_millis(100);
        let start = Instant::now();
        let mut iters = 0u64;
        while start.elapsed() < budget && iters < 10_000 {
            std::hint::black_box(routine());
            iters += 1;
        }
        let elapsed = start.elapsed();
        self.measurement = Some(Measurement {
            ns_per_iter: elapsed.as_nanos() as f64 / iters.max(1) as f64,
            iters,
        });
    }
}

/// Prevents the optimizer from deleting a value; re-export of
/// [`std::hint::black_box`] for call sites that import it from criterion.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Bundles bench functions into one runnable group, exactly like real
/// criterion's `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` for a `harness = false` bench target, exactly like real
/// criterion's `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_measures() {
        let mut c = Criterion {
            smoke: false,
            sample_size: 10,
        };
        let mut calls = 0u64;
        c.bench_function("stub/self_test", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        assert!(calls > 0, "routine never executed");
    }

    #[test]
    fn smoke_mode_runs_once() {
        let mut c = Criterion {
            smoke: true,
            sample_size: 10,
        };
        let mut calls = 0u64;
        c.bench_function("stub/smoke_test", |b| {
            b.iter(|| {
                calls += 1;
            })
        });
        assert_eq!(calls, 1);
    }

    #[test]
    fn groups_prefix_names_and_finish() {
        let mut c = Criterion {
            smoke: true,
            sample_size: 10,
        };
        let mut group = c.benchmark_group("g");
        group.sample_size(20);
        group.bench_function("inner", |b| b.iter(|| 1 + 1));
        group.finish();
    }
}
