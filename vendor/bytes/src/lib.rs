//! Offline, API-compatible subset of the [`bytes`](https://docs.rs/bytes/1)
//! crate, vendored so the Zerber wire protocol builds without network
//! access.
//!
//! Provides [`Bytes`], [`BytesMut`], and the [`Buf`] / [`BufMut`] traits
//! with exactly the cursor methods the wire codec uses. Multi-byte
//! integers are big-endian, matching the real crate. [`Bytes`] is backed
//! by `Arc<[u8]>`, so clones are cheap reference bumps as in the real
//! crate (no copy-on-clone surprises in bandwidth accounting).
//!
//! ```
//! use bytes::{Buf, BufMut, BytesMut};
//!
//! let mut w = BytesMut::with_capacity(6);
//! w.put_u8(1);
//! w.put_u32(0xDEAD_BEEF);
//! let frozen = w.freeze();
//! let mut r: &[u8] = &frozen;
//! assert_eq!(r.get_u8(), 1);
//! assert_eq!(r.get_u32(), 0xDEAD_BEEF);
//! assert_eq!(r.remaining(), 0);
//! ```

use std::ops::Deref;
use std::sync::Arc;

/// Read cursor over a byte source; advances past consumed data.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;

    /// Consumes and returns one byte. Panics if empty.
    fn get_u8(&mut self) -> u8;

    /// Consumes and returns a big-endian `u32`. Panics if short.
    fn get_u32(&mut self) -> u32;

    /// Consumes and returns a big-endian `u64`. Panics if short.
    fn get_u64(&mut self) -> u64;

    /// Skips `count` bytes. Panics if short.
    fn advance(&mut self, count: usize);
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn get_u8(&mut self) -> u8 {
        let (first, rest) = self.split_first().expect("get_u8 on empty buffer");
        *self = rest;
        *first
    }

    fn get_u32(&mut self) -> u32 {
        let (head, rest) = self.split_at(4);
        let value = u32::from_be_bytes(head.try_into().unwrap());
        *self = rest;
        value
    }

    fn get_u64(&mut self) -> u64 {
        let (head, rest) = self.split_at(8);
        let value = u64::from_be_bytes(head.try_into().unwrap());
        *self = rest;
        value
    }

    fn advance(&mut self, count: usize) {
        *self = &self[count..];
    }
}

/// Write cursor appending to a growable byte sink.
pub trait BufMut {
    /// Appends one byte.
    fn put_u8(&mut self, value: u8);

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, value: u32);

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, value: u64);

    /// Appends a byte slice.
    fn put_slice(&mut self, src: &[u8]);
}

impl BufMut for Vec<u8> {
    fn put_u8(&mut self, value: u8) {
        self.push(value);
    }

    fn put_u32(&mut self, value: u32) {
        self.extend_from_slice(&value.to_be_bytes());
    }

    fn put_u64(&mut self, value: u64) {
        self.extend_from_slice(&value.to_be_bytes());
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Cheaply cloneable immutable byte buffer (`Arc`-backed).
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Wraps a static byte string without additional indirection cost.
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes { data: data.into() }
    }

    /// Copies `data` into a fresh buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes { data: data.into() }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data: data.into() }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(data: &'static [u8]) -> Self {
        Bytes::from_static(data)
    }
}

/// Growable byte buffer that freezes into [`Bytes`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Empty buffer with `capacity` bytes preallocated.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable [`Bytes`] without copying the tail.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, value: u8) {
        self.data.put_u8(value);
    }

    fn put_u32(&mut self, value: u32) {
        self.data.put_u32(value);
    }

    fn put_u64(&mut self, value: u64) {
        self.data.put_u64(value);
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.data.put_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_is_exact_and_big_endian() {
        let mut w = BytesMut::with_capacity(13);
        w.put_u8(7);
        w.put_u32(0x0102_0304);
        w.put_u64(0x0506_0708_090A_0B0C);
        assert_eq!(w.len(), 13);
        let frozen = w.freeze();
        assert_eq!(frozen[1..5], [1, 2, 3, 4]);
        let mut r: &[u8] = &frozen;
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32(), 0x0102_0304);
        assert_eq!(r.remaining(), 8);
        assert_eq!(r.get_u64(), 0x0506_0708_090A_0B0C);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn bytes_clone_shares_storage() {
        let a = Bytes::from(vec![1u8, 2, 3]);
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(a.as_ref().as_ptr(), b.as_ref().as_ptr());
    }

    #[test]
    #[should_panic]
    fn short_read_panics() {
        let mut r: &[u8] = &[1, 2];
        let _ = r.get_u32();
    }
}
