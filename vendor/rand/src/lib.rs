//! Offline, API-compatible subset of the [`rand`](https://docs.rs/rand/0.9)
//! crate, vendored so the Zerber workspace builds without network access.
//!
//! Only the surface actually used by the workspace is provided:
//!
//! * [`RngCore`] / [`Rng`] with [`Rng::random`], [`Rng::random_range`] and
//!   [`Rng::random_bool`],
//! * [`SeedableRng::seed_from_u64`],
//! * [`rngs::StdRng`] (a deterministic xoshiro256** generator), and
//! * [`seq::SliceRandom::shuffle`] / [`seq::SliceRandom::choose`].
//!
//! The generator is *not* cryptographically secure; it exists to drive the
//! reproduction's deterministic simulations and statistical tests. Replace
//! this vendored stub with the real crates.io `rand` once the build
//! environment has registry access — the call sites will not change.
//!
//! ```
//! use rand::rngs::StdRng;
//! use rand::{Rng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let x: f64 = rng.random();
//! assert!((0.0..1.0).contains(&x));
//! let k = rng.random_range(10u32..20);
//! assert!((10..20).contains(&k));
//! ```

use core::ops::{Range, RangeInclusive};

/// Low-level source of randomness: everything derives from [`next_u64`].
///
/// [`next_u64`]: RngCore::next_u64
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with uniformly random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution
    /// (full integer range, `[0, 1)` for floats, fair coin for `bool`).
    fn random<T: StandardDistributed>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    ///
    /// Panics if the range is empty.
    fn random_range<T, B>(&mut self, range: B) -> T
    where
        B: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }

    /// Fills `dest` with random data (byte slices and integer slices).
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types that can be sampled from their "standard" distribution by
/// [`Rng::random`].
pub trait StandardDistributed: Sized {
    /// Draws one value from the standard distribution for `Self`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardDistributed for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardDistributed for u128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl StandardDistributed for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardDistributed for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardDistributed for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Integer types with uniform range sampling (the `random_range` machinery).
pub trait SampleUniform: Copy {
    /// Uniform draw from `[low, high)`; `high_inclusive` widens to `[low, high]`.
    fn sample_in<R: RngCore + ?Sized>(low: Self, high: Self, inclusive: bool, rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(
                low: Self,
                high: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let lo = low as i128;
                let hi = high as i128;
                let span = if inclusive { hi - lo + 1 } else { hi - lo };
                assert!(span > 0, "cannot sample from empty range");
                // Widening-multiply range reduction (Lemire); the residual
                // bias of < span / 2^64 is irrelevant for simulation use.
                let offset = ((rng.next_u64() as u128 * span as u128) >> 64) as i128;
                (lo + offset) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Range arguments accepted by [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_in(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_in(*self.start(), *self.end(), true, rng)
    }
}

/// Seedable generators (only the `seed_from_u64` entry point is provided).
pub trait SeedableRng: Sized {
    /// Builds a generator whose entire stream is determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator standing in for `rand`'s
    /// `StdRng`.
    ///
    /// Statistically strong enough for the workspace's chi-square and
    /// entropy tests, but **not** cryptographically secure.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    /// Small generator alias; identical to [`StdRng`] in this stub.
    pub type SmallRng = StdRng;

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // xoshiro must not start from the all-zero state.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers ([`SliceRandom`](seq::SliceRandom)).
pub mod seq {
    use super::Rng;

    /// Random operations on slices: in-place shuffling and element choice.
    pub trait SliceRandom {
        /// Element type of the underlying slice.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly chooses one element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.random_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_sampling_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let v = rng.random_range(17u64..29);
            assert!((17..29).contains(&v));
            let w = rng.random_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn range_sampling_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[rng.random_range(0usize..8)] += 1;
        }
        for &c in &counts {
            // Expected 10_000 per bucket; 5% tolerance is generous.
            assert!((9_500..10_500).contains(&c), "skewed bucket: {c}");
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice in order");
    }

    #[test]
    fn next_u64_is_rngcore_inherent() {
        use super::RngCore;
        let mut rng = StdRng::seed_from_u64(5);
        let _ = RngCore::next_u32(&mut rng);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
