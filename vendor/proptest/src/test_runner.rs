//! Deterministic test runner behind the [`proptest!`](crate::proptest)
//! macro: per-test seeding, case iteration, and rejection accounting.

use crate::Strategy;

/// Runner configuration (`ProptestConfig` in the prelude).
#[derive(Clone, Debug)]
pub struct Config {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
    /// Maximum rejected cases (`prop_assume!` misses) before giving up.
    pub max_global_rejects: u32,
}

impl Config {
    /// Config running `cases` successful cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Config {
            cases,
            ..Config::default()
        }
    }
}

impl Default for Config {
    fn default() -> Self {
        Config {
            cases: 64,
            max_global_rejects: 4096,
        }
    }
}

/// Why a single case did not pass.
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!` and should be retried.
    Reject(&'static str),
    /// The case failed an assertion.
    Fail(String),
}

impl TestCaseError {
    /// Failed-assertion constructor used by the `prop_assert*` macros.
    pub fn fail(message: String) -> Self {
        TestCaseError::Fail(message)
    }

    /// Rejection constructor used by `prop_assume!`.
    pub fn reject(reason: &'static str) -> Self {
        TestCaseError::Reject(reason)
    }
}

/// Deterministic generator handed to strategies (xoshiro256**, seeded from
/// the test name so every run explores the same cases).
#[derive(Clone, Debug)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    fn from_seed(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            *slot = z ^ (z >> 31);
        }
        if s == [0; 4] {
            s[0] = 1;
        }
        TestRng { s }
    }

    /// Next 64 uniformly random bits.
    #[allow(clippy::should_implement_trait)] // xoshiro step, not an Iterator
    pub fn next(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform draw from `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next() as u128 * bound as u128) >> 64) as u64
    }
}

/// Drives one `proptest!` test item: generates inputs, runs the body,
/// panics with a reproducible report on the first failing case.
pub struct TestRunner {
    name: &'static str,
    config: Config,
    seed: u64,
}

impl TestRunner {
    /// Creates a runner for the test `name` (the seed derives from it).
    pub fn new(name: &'static str, config: Config) -> Self {
        // FNV-1a over the test name: stable across runs and platforms.
        let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in name.bytes() {
            seed ^= byte as u64;
            seed = seed.wrapping_mul(0x100_0000_01b3);
        }
        TestRunner { name, config, seed }
    }

    /// Runs `body` against `config.cases` generated inputs.
    pub fn run<S, F>(&self, strategy: &S, mut body: F)
    where
        S: Strategy,
        F: FnMut(S::Value) -> Result<(), TestCaseError>,
    {
        let mut passed = 0u32;
        let mut rejected = 0u32;
        let mut case = 0u64;
        while passed < self.config.cases {
            // One RNG stream per case keeps cases independent and lets a
            // failure be replayed from (test name, case index) alone.
            let mut rng = TestRng::from_seed(self.seed ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let value = strategy.new_value(&mut rng);
            match body(value) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(reason)) => {
                    rejected += 1;
                    if rejected > self.config.max_global_rejects {
                        panic!(
                            "{}: too many prop_assume! rejections ({rejected}), last: {reason}",
                            self.name
                        );
                    }
                }
                Err(TestCaseError::Fail(message)) => {
                    panic!(
                        "{}: property failed at case {case} (deterministic; rerun reproduces it)\n{message}",
                        self.name
                    );
                }
            }
            case += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runner_passes_trivial_property() {
        let runner = TestRunner::new("trivial", Config::with_cases(16));
        let mut seen = 0;
        runner.run(&(0u64..100), |v| {
            assert!(v < 100);
            seen += 1;
            Ok(())
        });
        assert_eq!(seen, 16);
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn runner_reports_failures() {
        let runner = TestRunner::new("failing", Config::default());
        runner.run(&(0u64..100), |v| {
            if v >= 50 {
                Err(TestCaseError::fail(format!("{v} too big")))
            } else {
                Ok(())
            }
        });
    }

    #[test]
    fn rejections_are_retried() {
        let runner = TestRunner::new("rejecting", Config::with_cases(8));
        let mut passed = 0;
        runner.run(&(0u64..100), |v| {
            if v % 2 == 0 {
                Err(TestCaseError::reject("odd only"))
            } else {
                passed += 1;
                Ok(())
            }
        });
        assert_eq!(passed, 8);
    }

    #[test]
    fn generation_is_deterministic() {
        let a: Vec<u64> = {
            let mut out = vec![];
            TestRunner::new("det", Config::with_cases(10)).run(&(0u64..1 << 40), |v| {
                out.push(v);
                Ok(())
            });
            out
        };
        let b: Vec<u64> = {
            let mut out = vec![];
            TestRunner::new("det", Config::with_cases(10)).run(&(0u64..1 << 40), |v| {
                out.push(v);
                Ok(())
            });
            out
        };
        assert_eq!(a, b);
    }
}
