//! Offline, API-compatible subset of the
//! [`proptest`](https://docs.rs/proptest/1) crate, vendored so the Zerber
//! workspace's property tests run without network access.
//!
//! Differences from the real crate, by design:
//!
//! * **No shrinking.** A failing case reports the test name, case number
//!   and deterministic seed instead of a minimized input.
//! * **Deterministic generation.** Inputs derive from a hash of the test
//!   name, so every run explores the same cases (stable CI, reproducible
//!   failures).
//! * Only the combinators the workspace uses are implemented: range and
//!   [`any`] strategies, tuples, [`Strategy::prop_map`],
//!   [`Strategy::prop_flat_map`], [`collection::vec`],
//!   [`collection::btree_map`], [`prop_oneof!`], [`Just`], and the
//!   `prop_assert*` / [`prop_assume!`] macros.
//!
//! ```
//! use proptest::prelude::*;
//!
//! proptest! {
//!     #[test]
//!     fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
//!         prop_assert_eq!(a + b, b + a);
//!     }
//! }
//! ```

#![allow(clippy::test_attr_in_doctest)] // the doctest shows proptest! usage

use std::fmt;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

pub mod test_runner;

pub use test_runner::{Config as ProptestConfig, TestCaseError, TestRng, TestRunner};

/// A source of values for property tests.
///
/// The object-safe core is [`new_value`](Strategy::new_value); the
/// combinators require `Self: Sized` so boxed strategies remain usable.
pub trait Strategy {
    /// Type of values this strategy generates.
    type Value;

    /// Draws one value from the strategy.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { base: self, f }
    }

    /// Builds a second strategy from each generated value and samples it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { base: self, f }
    }

    /// Discards generated values failing `predicate` (retried by the
    /// runner as a rejection).
    fn prop_filter<F>(self, reason: &'static str, predicate: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            base: self,
            reason,
            predicate,
        }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        (**self).new_value(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn new_value(&self, rng: &mut TestRng) -> S::Value {
        (**self).new_value(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn new_value(&self, rng: &mut TestRng) -> U {
        (self.f)(self.base.new_value(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S, F, T> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;

    fn new_value(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.base.new_value(rng)).new_value(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    base: S,
    reason: &'static str,
    predicate: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn new_value(&self, rng: &mut TestRng) -> S::Value {
        // Bounded retry; matches real proptest's local-reject behaviour
        // closely enough for the workspace's filters.
        for _ in 0..64 {
            let candidate = self.base.new_value(rng);
            if (self.predicate)(&candidate) {
                return candidate;
            }
        }
        panic!(
            "prop_filter({:?}) rejected 64 candidates in a row",
            self.reason
        );
    }
}

/// Uniform choice among boxed alternatives; built by [`prop_oneof!`].
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union over `options` (must be non-empty).
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].new_value(rng)
    }
}

/// Types with a canonical "arbitrary" strategy, used by [`any`].
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary_value(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_value(rng: &mut TestRng) -> Self {
                rng.next() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut TestRng) -> Self {
        rng.next() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary_value(rng: &mut TestRng) -> Self {
        (rng.next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary_value(rng)
    }
}

/// The canonical strategy for `T` (full value range).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = ((rng.next() as u128 * span) >> 64) as i128;
                (self.start as i128 + offset) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as i128 - *self.start() as i128 + 1) as u128;
                let offset = ((rng.next() as u128 * span) >> 64) as i128;
                (*self.start() as i128 + offset) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn new_value(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let unit = (rng.next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn new_value(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start() <= self.end(), "empty range strategy");
        // 2^53 + 1 equally spaced points including both endpoints.
        let unit = (rng.next() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        self.start() + unit * (self.end() - self.start())
    }
}

impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        self.iter().map(|s| s.new_value(rng)).collect()
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

/// Collection strategies (`prop::collection` in real proptest).
pub mod collection {
    use std::collections::BTreeMap;
    use std::ops::{Range, RangeInclusive};

    use super::{Strategy, TestRng};

    /// Length specification accepted by [`fn@vec`] and [`btree_map`].
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            let span = (self.hi_exclusive - self.lo).max(1) as u64;
            self.lo + rng.below(span) as usize
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_exclusive: *r.end() + 1,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`fn@vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }

    /// Strategy for `BTreeMap<K::Value, V::Value>`; duplicate keys collapse,
    /// so the final length may be below the drawn size (as in real proptest).
    pub fn btree_map<K: Strategy, V: Strategy>(
        key: K,
        value: V,
        size: impl Into<SizeRange>,
    ) -> BTreeMapStrategy<K, V> {
        BTreeMapStrategy {
            key,
            value,
            size: size.into(),
        }
    }

    /// See [`btree_map`].
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: SizeRange,
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        type Value = BTreeMap<K::Value, V::Value>;

        fn new_value(&self, rng: &mut TestRng) -> BTreeMap<K::Value, V::Value> {
            let len = self.size.pick(rng);
            (0..len)
                .map(|_| (self.key.new_value(rng), self.value.new_value(rng)))
                .collect()
        }
    }
}

impl fmt::Debug for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Reject(reason) => write!(f, "rejected: {reason}"),
            TestCaseError::Fail(message) => write!(f, "failed: {message}"),
        }
    }
}

/// Everything a property-test file needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };

    /// Namespace mirror of the real crate's `prop` module
    /// (`prop::collection::vec`, …).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Asserts a condition inside a `proptest!` body, failing the current case
/// (not the whole process) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Equality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(left == right, $($fmt)*);
    }};
}

/// Inequality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{} != {}` (both: `{:?}`)",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

/// Rejects the current case (retried with fresh inputs, up to the rejection
/// cap) when the precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Declares property tests. Supports an optional leading
/// `#![proptest_config(...)]` and any number of
/// `#[test] fn name(pat in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat_param in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $config;
            let strategy = ($($strategy,)+);
            let runner = $crate::TestRunner::new(stringify!($name), config);
            runner.run(&strategy, |($($arg,)+)| {
                $body
                ::core::result::Result::Ok(())
            });
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}
