//! Offline, API-compatible subset of
//! [`parking_lot`](https://docs.rs/parking_lot/0.12), vendored so the
//! Zerber workspace builds without network access.
//!
//! [`Mutex`] and [`RwLock`] wrap their [`std::sync`] counterparts and
//! expose parking_lot's poison-free API: `lock()` / `read()` / `write()`
//! return guards directly rather than `Result`s. A poisoned std lock
//! (a panic while holding the guard) is transparently recovered, matching
//! parking_lot's behaviour of not poisoning at all.
//!
//! ```
//! let counter = parking_lot::Mutex::new(0u32);
//! *counter.lock() += 1;
//! assert_eq!(*counter.lock(), 1);
//! ```

use std::sync;

/// Re-export of std's guard type; parking_lot's guard API surface used by
/// this workspace (Deref/DerefMut) is identical.
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
/// Shared-read guard, see [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard, see [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// Poison-free mutual exclusion lock with parking_lot's API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates an unlocked mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Returns a mutable reference to the data without locking
    /// (safe: `&mut self` proves unique access).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// Poison-free reader-writer lock with parking_lot's API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates an unlocked lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access. Never poisons.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires exclusive write access. Never poisons.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Returns a mutable reference to the data without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::{Mutex, RwLock};

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2, 3]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 6);
        }
        l.write().push(4);
        assert_eq!(l.read().len(), 4);
    }

    #[test]
    fn poisoned_lock_recovers() {
        use std::sync::Arc;
        let m = Arc::new(Mutex::new(7));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison the std lock underneath");
        })
        .join();
        assert_eq!(*m.lock(), 7, "lock() must recover, not panic");
    }
}
