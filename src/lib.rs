//! Workspace root crate for the Zerber reproduction.
//!
//! This crate only re-exports the workspace members so that the runnable
//! examples in `examples/` and the cross-crate integration tests in
//! `tests/` have a single dependency surface. The actual implementation
//! lives in the `crates/` subdirectories; start with [`zerber`] for the
//! system facade and [`zerber_core`] for the paper's primary
//! contribution (r-confidential term merging).
//!
//! ```
//! // Every workspace member is reachable through this facade.
//! use zerber_repro::zerber::ZerberConfig;
//! use zerber_repro::zerber_field::Fp;
//!
//! let _ = ZerberConfig::default();
//! assert_eq!(Fp::new(3) + Fp::new(4), Fp::new(7));
//! ```

#![deny(missing_docs)]

pub use zerber;
pub use zerber_attacks;
pub use zerber_client;
pub use zerber_core;
pub use zerber_corpus;
pub use zerber_dht;
pub use zerber_field;
pub use zerber_index;
pub use zerber_net;
pub use zerber_postings;
pub use zerber_segment;
pub use zerber_server;
pub use zerber_shamir;
