//! The confidentiality / query-cost trade-off (paper Section 6 and
//! Figures 8–10): sweep the number of merged posting lists M for all
//! three heuristics on an ODP-like corpus and print achieved r next to
//! workload-cost inflation.
//!
//! Run with: `cargo run --release --example merging_tradeoffs`

use rand::rngs::StdRng;
use rand::SeedableRng;

use zerber_core::analysis;
use zerber_core::merge::{MergeConfig, MergeHeuristic, MergePlan};
use zerber_corpus::{OdpConfig, OdpCorpus, QueryLog, QueryLogConfig};

fn main() {
    // A laptop-scale ODP-like corpus (same Zipfian shape as the
    // paper's 237k-document crawl).
    let corpus = OdpCorpus::generate(&OdpConfig {
        num_docs: 5_000,
        vocabulary_size: 50_000,
        ..OdpConfig::default()
    });
    let stats = corpus.statistics();
    let dfs = corpus.document_frequencies();
    println!(
        "corpus: {} docs, Zipf exponent estimate {:.2}",
        corpus.documents.len(),
        stats.zipf_exponent_estimate().unwrap_or(f64::NAN)
    );

    // A Zipfian query log correlated with document frequency.
    let log = QueryLog::generate(
        &QueryLogConfig {
            num_queries: 50_000,
            distinct_terms: 10_000,
            ..QueryLogConfig::default()
        },
        &stats,
    );
    let workload = log.workload();
    println!(
        "query log: {} queries, {:.2} terms/query, {} distinct terms\n",
        log.len(),
        log.mean_terms_per_query(),
        log.distinct_terms()
    );

    println!(
        "{:>8} {:>6} | {:>12} {:>12} | {:>10}",
        "M", "heur", "1/r", "r", "Q-inflation"
    );
    println!("{}", "-".repeat(60));
    let mut rng = StdRng::seed_from_u64(1);
    for m in [64u32, 256, 1024, 4096] {
        for heuristic in MergeHeuristic::ALL {
            let config = match heuristic {
                MergeHeuristic::DepthFirst => MergeConfig::dfm(m),
                MergeHeuristic::BreadthFirst => MergeConfig::bfm_lists(m),
                MergeHeuristic::Uniform => MergeConfig::udm(m),
            };
            let plan = MergePlan::build(config, &stats, &mut rng).expect("merge");
            let r = plan.achieved_r();
            let inflation = analysis::cost_inflation(&plan, &dfs, &workload);
            println!(
                "{:>8} {:>6} | {:>12.3e} {:>12.1} | {:>10.2}x",
                m,
                heuristic.name(),
                1.0 / r,
                r,
                inflation
            );
        }
        println!();
    }

    println!("Reading: bigger M -> weaker confidentiality (larger r) but");
    println!("cheaper queries; BFM/DFM track each other; UDM trades worse r");
    println!("and slower rare-term queries for hiding even head terms —");
    println!("exactly the Figure 8-10 shape.");
}
