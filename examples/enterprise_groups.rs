//! Enterprise collaboration scenario: a Stud-IP-like learning
//! management deployment (paper Section 7.4.1) with hundreds of
//! courses, churn in membership, and bandwidth accounting.
//!
//! Run with: `cargo run --release --example enterprise_groups`

use zerber::{ZerberConfig, ZerberSystem};
use zerber_core::merge::MergeConfig;
use zerber_corpus::{StudipConfig, StudipData};
use zerber_index::{TermId, UserId};
use zerber_net::{LinkSpec, NodeId};

fn main() {
    // A scaled-down university: 80 courses, 400 users, 1,500 docs.
    let config = StudipConfig {
        num_courses: 80,
        num_users: 400,
        num_docs: 1_500,
        vocabulary_size: 20_000,
        avg_doc_length: 120,
        ..StudipConfig::default()
    };
    let data = StudipData::generate(&config);
    println!("== Stud-IP-like deployment ==");
    println!(
        "{} documents across {} courses, {} users",
        data.documents.len(),
        data.num_courses,
        config.num_users
    );
    let docs_per_group = data.documents_per_group();
    println!(
        "docs/course: max {}, median {}",
        docs_per_group[0],
        docs_per_group[docs_per_group.len() / 2]
    );
    let accessible = data.documents_accessible_per_user();
    println!(
        "docs accessible/user: max {}, median {} (paper: most users < 200)",
        accessible[0],
        accessible[accessible.len() / 2]
    );

    // Bootstrap Zerber with BFM at a confidentiality target.
    let stats = data.statistics();
    let zerber_config =
        ZerberConfig::default().with_merge(MergeConfig::bfm_lists(512).with_rare_term_cutoff(1e-5));
    let mut system = ZerberSystem::bootstrap(zerber_config, &stats).expect("bootstrap");
    println!(
        "\nZerber: {} lists, achieved r = {:.1}, public table entries = {}",
        system.plan().list_count(),
        system.plan().achieved_r(),
        system.table().explicit_len(),
    );

    // Enroll users per the generated memberships.
    for user in data.memberships.users() {
        for group in data.memberships.groups_of(user) {
            system.add_membership(user, group);
        }
    }

    // Index the semester's material.
    let elements = system.index_corpus(&data.documents).expect("indexing");
    println!("indexed {elements} posting elements per server");

    // Every enrolled user fires a couple of queries.
    let mut total_hits = 0usize;
    let mut total_elements = 0usize;
    let mut queries = 0usize;
    for user in 0..40u32 {
        for term in [0u32, 10, 100, 1_000] {
            let outcome = system
                .query(UserId(user), &[TermId(term)], 10)
                .expect("query");
            total_hits += outcome.ranked.len();
            total_elements += outcome.elements_received;
            queries += 1;
        }
    }
    println!(
        "\nran {queries} queries: {:.1} hits and {:.0} transported elements on average",
        total_hits as f64 / queries as f64,
        total_elements as f64 / queries as f64
    );

    // Membership churn: drop a user from a course mid-semester.
    let victim = UserId(0);
    let course = data
        .memberships
        .groups_of(victim)
        .next()
        .expect("user 0 has courses");
    let before = system
        .query(victim, &[TermId(0)], usize::MAX)
        .unwrap()
        .ranked
        .len();
    system.remove_membership(victim, course);
    let after = system
        .query(victim, &[TermId(0)], usize::MAX)
        .unwrap()
        .ranked
        .len();
    println!(
        "\nrevoked {victim} from {course}: \"t0\" hits {before} -> {after} (instant, no re-keying)"
    );

    // Bandwidth accounting (Section 7.3 style).
    let meter = system.traffic();
    let uploads = meter.total_matching(|from, to| {
        matches!(from, NodeId::Owner(_)) && matches!(to, NodeId::IndexServer(_))
    });
    let responses = meter.total_matching(|from, to| {
        matches!(from, NodeId::IndexServer(_)) && matches!(to, NodeId::User(_))
    });
    println!("\n== bandwidth ==");
    println!("owner -> servers (indexing):  {:>12} bytes", uploads);
    println!("servers -> users (responses): {:>12} bytes", responses);
    println!(
        "mean response transfer on the paper's 55 Mb/s WLAN: {:.2} ms/query",
        LinkSpec::WLAN_55.transfer_ms((responses / queries as u64) as usize)
    );
}
