//! Playing the adversary (paper Sections 4 and 7.1): compromise one
//! index server of a live deployment and try all three attack goals —
//! document-frequency reconstruction, share decryption below the
//! threshold, and update correlation — under different defenses.
//!
//! Run with: `cargo run --release --example attack_simulation`

use rand::rngs::StdRng;
use rand::SeedableRng;

use zerber::{ZerberConfig, ZerberSystem};
use zerber_attacks::{
    correlation_attack_precision, share_distribution_test, verify_plan_r_bound,
    DfReconstructionAttack,
};
use zerber_core::merge::MergeConfig;
use zerber_core::PlId;
use zerber_corpus::{CorpusConfig, SyntheticCorpus};
use zerber_field::Fp;
use zerber_index::{Document, GroupId, UserId};

fn main() {
    let corpus = SyntheticCorpus::generate(&CorpusConfig {
        num_docs: 800,
        vocabulary_size: 8_000,
        num_groups: 4,
        seed: 11,
        ..CorpusConfig::default()
    });
    let stats = corpus.statistics();
    let dfs = corpus.document_frequencies();

    // Alice's background knowledge comes from *similar* corpora, not
    // this one: a second sample of the same distribution. On an
    // unmerged index the list lengths hand her the exact DFs anyway;
    // merging forces her back onto these imperfect priors.
    let background_corpus = SyntheticCorpus::generate(&CorpusConfig {
        num_docs: 800,
        vocabulary_size: 8_000,
        num_groups: 4,
        seed: 12,
        ..CorpusConfig::default()
    });
    let background = background_corpus.statistics();

    println!("== Attack 1: document-frequency reconstruction ==");
    println!("Alice owns one index server and knows the language statistics.");
    println!(
        "{:>8} | {:>10} {:>12} {:>12}",
        "M", "exact %", "mean |err|", "achieved r"
    );
    for m in [1u32, 16, 256, 4096] {
        let config = ZerberConfig::default().with_merge(MergeConfig::dfm(m));
        let mut system = ZerberSystem::bootstrap(config, &stats).expect("bootstrap");
        system.add_membership(UserId(1), GroupId(0));
        system.index_corpus(&corpus.documents).expect("index");

        let view = system.servers()[0].adversary_view();
        let observed: Vec<u64> = (0..system.plan().list_count() as u32)
            .map(|pl| view.list_len(PlId(pl)) as u64)
            .collect();
        let report = DfReconstructionAttack {
            background: &background,
            plan: system.plan(),
        }
        .run(&observed, &dfs);
        let bound = verify_plan_r_bound(system.plan(), &stats);
        assert!(bound.holds());
        println!(
            "{:>8} | {:>9.1}% {:>12.2} {:>12.1}",
            m,
            report.exact_fraction * 100.0,
            report.mean_absolute_error,
            bound.claimed_r
        );
    }
    println!("(fewer lists => the adversary's exact-DF recovery collapses)\n");

    println!("== Attack 2: decrypting with fewer than k shares ==");
    let mut rng = StdRng::seed_from_u64(3);
    let scheme = zerber_shamir::SharingScheme::random(2, 3, &mut rng).unwrap();
    let report = share_distribution_test(
        &scheme,
        Fp::new(7),             // "layoff" encoded
        Fp::new((1 << 60) - 1), // a completely different element
        50_000,
        16,
        &mut rng,
    );
    println!(
        "chi-square of single-share distributions: A = {:.1}, B = {:.1}, between = {:.1}",
        report.chi_square_a, report.chi_square_b, report.chi_square_between
    );
    println!(
        "=> indistinguishable from uniform (df = 15): {}\n",
        if report.plausible(4.0) { "YES" } else { "NO" }
    );

    println!("== Attack 3: correlating updates to recover co-occurrence ==");
    let doc_sizes: Vec<usize> = corpus
        .documents
        .iter()
        .map(Document::distinct_terms)
        .collect();
    println!("{:>14} | {:>10}", "docs/batch", "precision");
    for batch in [1usize, 2, 5, 10, 50] {
        let report = correlation_attack_precision(&doc_sizes, batch, &mut rng);
        println!("{:>14} | {:>9.1}%", batch, report.precision * 100.0);
    }
    println!("(batching across documents dissolves the co-occurrence signal,");
    println!(" reproducing the Section 5.4.1 defense)");
}
