//! Quickstart: share a handful of sensitive documents inside two
//! project groups, search them through the r-confidential index, and
//! fetch snippets — the whole Zerber workflow in ~100 lines.
//!
//! Run with: `cargo run --example quickstart`

use zerber::{ZerberConfig, ZerberSystem};
use zerber_client::{OwnerSnippetService, SnippetProvider};
use zerber_core::merge::MergeConfig;
use zerber_index::{DocId, GroupId, RawDocument, TermDict, Tokenizer, UserId};

fn main() {
    // --- 1. The sensitive documents of two collaboration groups. ----
    let texts = [
        (
            1u32,
            0u32,
            "Martha spoke with the ImClone board about the layoff plan.",
        ),
        (
            2,
            0,
            "The layoff schedule for Q3 is attached; do not forward.",
        ),
        (
            3,
            1,
            "Hesselhofer is a finalist for the CEO position at HP.",
        ),
        (
            4,
            1,
            "Board meeting notes: CEO succession and the buyout offer.",
        ),
    ];
    let tokenizer = Tokenizer::new();
    let mut dict = TermDict::new();
    let raw_docs: Vec<RawDocument> = texts
        .iter()
        .map(|&(id, group, text)| RawDocument {
            id: DocId::from_parts(group as u16, id),
            group: GroupId(group),
            text: text.to_owned(),
        })
        .collect();
    let documents: Vec<_> = raw_docs
        .iter()
        .map(|raw| raw.process(&tokenizer, &mut dict))
        .collect();

    // --- 2. Bootstrap Zerber: 2-out-of-3 sharing, 8 merged lists. ---
    // Merging is learned from corpus statistics (here: the corpus
    // itself; production learns from a prefix).
    let mut index = zerber_index::InvertedIndex::new();
    for doc in &documents {
        index.insert(doc);
    }
    let stats = index.statistics();
    let config = ZerberConfig::default().with_merge(MergeConfig::dfm(8));
    let mut system = ZerberSystem::bootstrap(config, &stats).expect("bootstrap");
    println!(
        "deployed {} index servers, k = {}, {} merged posting lists, achieved r = {:.2}",
        system.servers().len(),
        system.scheme().threshold(),
        system.plan().list_count(),
        system.plan().achieved_r(),
    );

    // --- 3. Group membership: alice in group 0, bob in both. --------
    let alice = UserId(1);
    let bob = UserId(2);
    system.add_membership(alice, GroupId(0));
    system.add_membership(bob, GroupId(0));
    system.add_membership(bob, GroupId(1));

    // --- 4. Owners index their documents (encrypt + distribute). ----
    let snippets = OwnerSnippetService::new(120);
    for (raw, doc) in raw_docs.iter().zip(&documents) {
        system.index_document(doc).expect("index");
        snippets.store(doc.id, raw.text.clone());
    }
    println!(
        "indexed {} documents / {} posting elements per server",
        documents.len(),
        system.elements_per_server()
    );

    // --- 5. Search. --------------------------------------------------
    for (user, name) in [(alice, "alice"), (bob, "bob")] {
        for word in ["layoff", "ceo"] {
            let Some(term) = dict.get(word) else { continue };
            let outcome = system.query(user, &[term], 10).expect("query");
            println!(
                "\n{name} searches \"{word}\": {} hit(s)",
                outcome.ranked.len()
            );
            for hit in &outcome.ranked {
                let snippet = snippets
                    .snippet(hit.doc, word)
                    .unwrap_or_else(|| "<no snippet>".to_owned());
                println!("  {} (score {:.3}) {}", hit.doc, hit.score, snippet);
            }
        }
    }

    // --- 6. Revocation is instant: no re-encryption, no re-keying. --
    system.remove_membership(alice, GroupId(0));
    let term = dict.get("layoff").unwrap();
    let after = system.query(alice, &[term], 10).expect("query");
    println!(
        "\nafter revoking alice from group 0: \"layoff\" returns {} hits for alice",
        after.ranked.len()
    );

    // --- 7. Everything above was metered. ----------------------------
    println!(
        "total simulated network traffic: {} bytes",
        system.traffic().total()
    );
}
