//! Multi-process socket cluster: four shard peers, each its own OS
//! process serving replica shards over length-framed TCP, a client
//! speaking [`SocketTransport`] — and one peer killed with SIGKILL
//! mid-session to show the hedged gather absorbing the loss.
//!
//! Run with: `cargo run --example socket_cluster`
//!
//! The example re-executes itself as the peers: when
//! `ZERBER_SOCKET_PEER` is set, the process is a shard peer — it
//! rebuilds the (deterministic) corpus, serves its shards on an
//! ephemeral loopback port, prints `READY <addr>`, and holds until its
//! stdin closes. The parent spawns the children, collects their
//! addresses, and drives queries over real TCP.
//!
//! The whole session is observed: every query runs under a trace id
//! that crosses the process boundary in the request frames, the client
//! assembles the full span tree (fan-out → per-replica RPC → decode →
//! gather), and the run ends with the deployment's metrics in
//! Prometheus exposition format plus the slowest recorded trace.

use std::io::BufRead as _;
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};

use zerber::runtime::socket::{serve_peer, SocketTransport};
use zerber::runtime::{
    build_shard_store, gather_topk, local_topk, traced_topk_fanout, HedgePolicy, RuntimeObs,
    ShardService, TermStats,
};
use zerber::ZerberConfig;
use zerber_dht::ShardMap;
use zerber_index::{DocId, Document, GroupId, RankedDoc, SegmentPolicy, TermId};
use zerber_net::{AuthToken, Message, NodeId, TrafficMeter};
use zerber_obs::{QueryTrace, SpanRecord};
use zerber_segment::SegmentStore;

const PEERS: u32 = 4;
const REPLICATION: u32 = 2;
const K: usize = 5;

/// The shared corpus — a pure function of nothing, so parent and
/// children agree on every document without any IPC.
fn corpus() -> Vec<Document> {
    (0..400u32)
        .map(|d| {
            Document::from_term_counts(
                DocId(d),
                GroupId(0),
                (0..4)
                    .map(|i| (TermId((d * 3 + i * 7) % 50), 1 + (d + i) % 5))
                    .collect(),
            )
        })
        .collect()
}

/// Child role: serve one peer's replica shards until stdin closes.
fn run_peer(peer: u32) {
    let docs = corpus();
    let map = ShardMap::new(PEERS);
    let shards = map.partition(&docs, |doc| doc.id);
    let hosted = map.hosted_shards(peer, REPLICATION);
    let backend = ZerberConfig::default().postings;
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let server = serve_peer(
        listener,
        NodeId::IndexServer(peer),
        move || {
            ShardService::hosting(
                hosted
                    .into_iter()
                    .map(|shard| (shard, build_shard_store(&backend, &shards[shard as usize]))),
            )
        },
        Arc::new(TrafficMeter::new()),
    )
    .expect("serve on loopback");
    println!("READY {}", server.addr());
    use std::io::Read as _;
    let mut hold = String::new();
    std::io::stdin().read_to_string(&mut hold).ok();
}

/// One hedged query over the socket transport — the same client path
/// as `ShardedSearch::query`, across process boundaries, traced end to
/// end. The trace id rides the request frames, the peers report their
/// decode accounting in the responses, and the client assembles the
/// span tree and files it in `obs`'s forensics sinks.
fn query(
    obs: &RuntimeObs,
    transport: &SocketTransport,
    map: &ShardMap,
    stats: &TermStats,
    terms: &[TermId],
) -> Option<(Vec<RankedDoc>, usize, Vec<NodeId>)> {
    let policy = HedgePolicy {
        hedge_after: Duration::from_millis(25),
        deadline: Duration::from_secs(2),
    };
    let weights = stats.weights(terms);
    let shards: Vec<(u32, Vec<NodeId>, Arc<[u8]>)> = (0..map.peer_count())
        .map(|shard| {
            let request = Message::TopKQuery {
                shard,
                terms: weights.clone(),
                k: K as u32,
            };
            let replicas = map
                .replica_peers(shard, REPLICATION)
                .into_iter()
                .map(|peer| NodeId::IndexServer(peer.0))
                .collect();
            (shard, replicas, Arc::from(request.encode().as_ref()))
        })
        .collect();
    let started = Instant::now();
    let trace_id = obs.next_trace_id();
    let (fetches, fanout_span) = traced_topk_fanout(
        obs,
        transport,
        NodeId::User(0),
        AuthToken(0),
        trace_id,
        &shards,
        &policy,
    );
    let mut per_shard = Vec::new();
    let mut hedges = 0;
    let mut failed = Vec::new();
    for fetch in fetches {
        let fetch = fetch.ok()?;
        hedges += fetch.hedges();
        failed.extend(fetch.failed().map(|(node, _)| node));
        match fetch.response {
            Message::TopKResponse { candidates, .. } => per_shard.push(
                candidates
                    .into_iter()
                    .map(|(doc, score)| RankedDoc { doc, score })
                    .collect(),
            ),
            _ => return None,
        }
    }
    let gather_started = Instant::now();
    let gathered = gather_topk(&per_shard, K);
    let gather_span = SpanRecord::new(
        "gather",
        gather_started.duration_since(started),
        gather_started.elapsed(),
    )
    .with_counter("candidates_received", gathered.candidates_received as u64);
    let total = started.elapsed();
    let registry = obs.registry();
    registry
        .histogram("zerber_query_latency_ns")
        .record(total.as_nanos() as u64);
    registry.counter("zerber_query_total").inc();
    let root = SpanRecord::new("query", Duration::ZERO, total)
        .with_counter("k", K as u64)
        .with_child(fanout_span)
        .with_child(gather_span);
    obs.record_trace(Arc::new(QueryTrace {
        id: trace_id,
        label: format!("terms={terms:?} k={K}"),
        total,
        root,
    }));
    Some((gathered.ranked, hedges, failed))
}

/// A durable shard on the side, opened *observed* into the same
/// registry: seed, flush, delete, and compact a [`SegmentStore`] so
/// the WAL-fsync, flush, and compaction histograms show up in the
/// final metrics dump next to the query-path families.
fn durable_store_demo(obs: &RuntimeObs, docs: &[Document]) {
    let dir = std::env::temp_dir().join(format!("zerber-socket-cluster-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let policy = SegmentPolicy {
        flush_postings: 64,
        max_segments: 2,
        sync_wal: true,
        background: false,
    };
    let store = SegmentStore::open_observed(&dir, policy, obs.registry()).expect("open observed");
    for batch in docs.chunks(40) {
        store.insert(batch).expect("seed batch");
    }
    store.delete(docs[0].id).expect("delete one");
    store.flush().expect("flush");
    store.compact().expect("compact");
    println!(
        "\ndurable side-store: {} segment(s) after compaction, {} bytes on disk",
        store.segment_count(),
        store.disk_bytes()
    );
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);
}

fn main() {
    if let Ok(peer) = std::env::var("ZERBER_SOCKET_PEER") {
        run_peer(peer.parse().expect("peer index"));
        return;
    }

    // --- 1. Spawn one child process per shard peer. -----------------
    let exe = std::env::current_exe().expect("own path");
    let docs = corpus();
    let stats = TermStats::from_documents(&docs);
    let map = ShardMap::new(PEERS);
    let obs = RuntimeObs::new();
    let meter = Arc::new(TrafficMeter::new());
    let transport = SocketTransport::new(Arc::clone(&meter)).observed(obs.registry());
    let mut children: Vec<Child> = Vec::new();
    for peer in 0..PEERS {
        let mut child = Command::new(&exe)
            .env("ZERBER_SOCKET_PEER", peer.to_string())
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .spawn()
            .expect("spawn peer process");
        let stdout = child.stdout.take().expect("piped stdout");
        let mut ready = String::new();
        std::io::BufReader::new(stdout)
            .read_line(&mut ready)
            .expect("child handshake");
        let addr = ready
            .trim()
            .strip_prefix("READY ")
            .expect("READY line")
            .parse()
            .expect("socket address");
        transport.register(NodeId::IndexServer(peer), addr);
        println!("peer {peer} (pid {}) listening on {addr}", child.id());
        children.push(child);
    }

    // --- 2. Query the healthy cluster over TCP. ---------------------
    let terms = [TermId(9), TermId(21)];
    let expected = local_topk(&ZerberConfig::default(), &docs, &terms, K);
    let (ranked, hedges, _) =
        query(&obs, &transport, &map, &stats, &terms).expect("cluster healthy");
    assert_eq!(ranked, expected, "socket top-k must match single-node");
    println!("\nhealthy: top-{K} over TCP identical to single-node evaluation ({hedges} hedges)");
    for r in &ranked {
        println!("  doc {:>3}  score {:.4}", r.doc.0, r.score);
    }

    // --- 3. SIGKILL one peer; the hedged gather absorbs it. ---------
    let victim = 1usize;
    children[victim].kill().expect("kill peer process");
    children[victim].wait().ok();
    println!("\nkilled peer {victim} (SIGKILL)");
    let (ranked, hedges, failed) =
        query(&obs, &transport, &map, &stats, &terms).expect("replicas cover every shard");
    assert_eq!(ranked, expected, "failover must not change results");
    println!(
        "after kill: results still identical; {hedges} hedge(s), dead peers reported: {failed:?}"
    );

    // --- 4. Durable storage under the same registry. ----------------
    durable_store_demo(&obs, &docs);

    // --- 5. Shut the cluster down. ----------------------------------
    for child in &mut children {
        child.kill().ok();
        child.wait().ok();
    }
    println!("\ncluster stopped; all {PEERS} peers reaped");

    // --- 6. Observability readout. ----------------------------------
    println!("\n=== metrics (Prometheus exposition) ===");
    print!("{}", obs.snapshot_with_traffic(&meter).to_prometheus());

    let slowest = obs.slow_queries().slowest().expect("queries were traced");
    println!("\n=== slowest recorded query trace ===");
    print!("{}", slowest.render());
}
