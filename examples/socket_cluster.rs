//! Multi-process socket cluster: four shard peers, each its own OS
//! process serving replica shards over length-framed TCP, a client
//! speaking [`SocketTransport`] — and one peer killed with SIGKILL
//! mid-session to show the hedged gather absorbing the loss.
//!
//! Run with: `cargo run --example socket_cluster`
//!
//! The example re-executes itself as the peers: when
//! `ZERBER_SOCKET_PEER` is set, the process is a shard peer — it
//! rebuilds the (deterministic) corpus, serves its shards on an
//! ephemeral loopback port, prints `READY <addr>`, and holds until its
//! stdin closes. The parent spawns the children, collects their
//! addresses, and drives queries over real TCP.

use std::io::BufRead as _;
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::Duration;

use zerber::runtime::socket::{serve_peer, SocketTransport};
use zerber::runtime::{
    build_shard_store, gather_topk, hedged_fan_out, local_topk, HedgePolicy, ShardService,
    TermStats,
};
use zerber::ZerberConfig;
use zerber_dht::ShardMap;
use zerber_index::{DocId, Document, GroupId, RankedDoc, TermId};
use zerber_net::{AuthToken, Message, NodeId, TrafficMeter};

const PEERS: u32 = 4;
const REPLICATION: u32 = 2;
const K: usize = 5;

/// The shared corpus — a pure function of nothing, so parent and
/// children agree on every document without any IPC.
fn corpus() -> Vec<Document> {
    (0..400u32)
        .map(|d| {
            Document::from_term_counts(
                DocId(d),
                GroupId(0),
                (0..4)
                    .map(|i| (TermId((d * 3 + i * 7) % 50), 1 + (d + i) % 5))
                    .collect(),
            )
        })
        .collect()
}

/// Child role: serve one peer's replica shards until stdin closes.
fn run_peer(peer: u32) {
    let docs = corpus();
    let map = ShardMap::new(PEERS);
    let shards = map.partition(&docs, |doc| doc.id);
    let hosted = map.hosted_shards(peer, REPLICATION);
    let backend = ZerberConfig::default().postings;
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let server = serve_peer(
        listener,
        NodeId::IndexServer(peer),
        move || {
            ShardService::hosting(
                hosted
                    .into_iter()
                    .map(|shard| (shard, build_shard_store(&backend, &shards[shard as usize]))),
            )
        },
        Arc::new(TrafficMeter::new()),
    )
    .expect("serve on loopback");
    println!("READY {}", server.addr());
    use std::io::Read as _;
    let mut hold = String::new();
    std::io::stdin().read_to_string(&mut hold).ok();
}

/// One hedged query over the socket transport — the same client path
/// as `ShardedSearch::query`, across process boundaries.
fn query(
    transport: &SocketTransport,
    map: &ShardMap,
    stats: &TermStats,
    terms: &[TermId],
) -> Option<(Vec<RankedDoc>, usize, Vec<NodeId>)> {
    let policy = HedgePolicy {
        hedge_after: Duration::from_millis(25),
        deadline: Duration::from_secs(2),
    };
    let weights = stats.weights(terms);
    let shards: Vec<(u32, Vec<NodeId>, Arc<[u8]>)> = (0..map.peer_count())
        .map(|shard| {
            let request = Message::TopKQuery {
                shard,
                terms: weights.clone(),
                k: K as u32,
            };
            let replicas = map
                .replica_peers(shard, REPLICATION)
                .into_iter()
                .map(|peer| NodeId::IndexServer(peer.0))
                .collect();
            (shard, replicas, Arc::from(request.encode().as_ref()))
        })
        .collect();
    let mut per_shard = Vec::new();
    let mut hedges = 0;
    let mut failed = Vec::new();
    for fetch in hedged_fan_out(transport, NodeId::User(0), AuthToken(0), &shards, &policy) {
        let fetch = fetch.ok()?;
        hedges += fetch.hedges;
        failed.extend(fetch.failed.iter().map(|&(node, _)| node));
        match fetch.response {
            Message::TopKResponse { candidates } => per_shard.push(
                candidates
                    .into_iter()
                    .map(|(doc, score)| RankedDoc { doc, score })
                    .collect(),
            ),
            _ => return None,
        }
    }
    Some((gather_topk(&per_shard, K).ranked, hedges, failed))
}

fn main() {
    if let Ok(peer) = std::env::var("ZERBER_SOCKET_PEER") {
        run_peer(peer.parse().expect("peer index"));
        return;
    }

    // --- 1. Spawn one child process per shard peer. -----------------
    let exe = std::env::current_exe().expect("own path");
    let docs = corpus();
    let stats = TermStats::from_documents(&docs);
    let map = ShardMap::new(PEERS);
    let transport = SocketTransport::new(Arc::new(TrafficMeter::new()));
    let mut children: Vec<Child> = Vec::new();
    for peer in 0..PEERS {
        let mut child = Command::new(&exe)
            .env("ZERBER_SOCKET_PEER", peer.to_string())
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .spawn()
            .expect("spawn peer process");
        let stdout = child.stdout.take().expect("piped stdout");
        let mut ready = String::new();
        std::io::BufReader::new(stdout)
            .read_line(&mut ready)
            .expect("child handshake");
        let addr = ready
            .trim()
            .strip_prefix("READY ")
            .expect("READY line")
            .parse()
            .expect("socket address");
        transport.register(NodeId::IndexServer(peer), addr);
        println!("peer {peer} (pid {}) listening on {addr}", child.id());
        children.push(child);
    }

    // --- 2. Query the healthy cluster over TCP. ---------------------
    let terms = [TermId(9), TermId(21)];
    let expected = local_topk(&ZerberConfig::default(), &docs, &terms, K);
    let (ranked, hedges, _) = query(&transport, &map, &stats, &terms).expect("cluster healthy");
    assert_eq!(ranked, expected, "socket top-k must match single-node");
    println!("\nhealthy: top-{K} over TCP identical to single-node evaluation ({hedges} hedges)");
    for r in &ranked {
        println!("  doc {:>3}  score {:.4}", r.doc.0, r.score);
    }

    // --- 3. SIGKILL one peer; the hedged gather absorbs it. ---------
    let victim = 1usize;
    children[victim].kill().expect("kill peer process");
    children[victim].wait().ok();
    println!("\nkilled peer {victim} (SIGKILL)");
    let (ranked, hedges, failed) =
        query(&transport, &map, &stats, &terms).expect("replicas cover every shard");
    assert_eq!(ranked, expected, "failover must not change results");
    println!(
        "after kill: results still identical; {hedges} hedge(s), dead peers reported: {failed:?}"
    );

    // --- 4. Shut the cluster down. ----------------------------------
    for child in &mut children {
        child.kill().ok();
        child.wait().ok();
    }
    println!("\ncluster stopped; all {PEERS} peers reaped");
}
